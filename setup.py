"""Setuptools entry point.

The editable install path of modern pip (PEP 660) requires the ``wheel``
package, which is not available in fully offline environments; this classic
``setup.py`` keeps ``python setup.py develop`` / legacy editable installs
working there.  Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
