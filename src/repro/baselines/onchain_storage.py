"""HDG-style store-the-data-on-chain baseline.

Healthcare Data Gateways [22] put medical data itself on the blockchain so it
cannot be modified; the paper's critique (§V) is that every node then carries
the full data, so storage pressure grows with the data.  This baseline stores
each record (or each update) as a transaction payload on a simulated chain,
so the per-node chain size can be compared with the paper's metadata-only
approach (benchmark E6).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import LedgerConfig
from repro.crypto.keys import generate_keypair
from repro.ledger.chain import Blockchain
from repro.ledger.clock import SimClock
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner
from repro.ledger.transaction import Transaction


class OnChainStorageBaseline:
    """Stores raw medical records as on-chain transaction payloads."""

    def __init__(self, config: Optional[LedgerConfig] = None, key_seed: int = 99):
        self.config = config or LedgerConfig()
        self.clock = SimClock()
        self.chain = Blockchain(self.config)
        self.mempool = Mempool()
        self.keypair = generate_keypair(seed=key_seed)
        self.miner = Miner(self.chain, self.mempool, self.clock,
                           proposer=self.keypair.address,
                           enforce_serialization=False)
        self._nonce = 0
        self._records_stored = 0

    # ------------------------------------------------------------------ writes

    def store_record(self, record: Mapping[str, object]) -> str:
        """Put one full medical record on-chain; returns the transaction hash."""
        tx = Transaction(
            sender=self.keypair.address,
            kind="transfer",
            nonce=self._nonce,
            payload={"record": dict(record)},
            timestamp=self.clock.now(),
        ).signed_by(self.keypair)
        self._nonce += 1
        self.mempool.submit(tx)
        self._records_stored += 1
        return tx.tx_hash

    def store_records(self, records: Sequence[Mapping[str, object]],
                      mine_every: int = 32) -> int:
        """Store many records, mining a block every ``mine_every`` submissions."""
        for index, record in enumerate(records, start=1):
            self.store_record(record)
            if index % mine_every == 0:
                self.miner.mine_until_empty()
        self.miner.mine_until_empty()
        return len(records)

    def store_update(self, record_key: object, changes: Mapping[str, object]) -> str:
        """Record an update to an existing record as another on-chain payload."""
        tx = Transaction(
            sender=self.keypair.address,
            kind="transfer",
            nonce=self._nonce,
            payload={"update": {"key": record_key, "changes": dict(changes)}},
            timestamp=self.clock.now(),
        ).signed_by(self.keypair)
        self._nonce += 1
        self.mempool.submit(tx)
        return tx.tx_hash

    def finalize(self) -> None:
        """Mine whatever is still pending."""
        self.miner.mine_until_empty()

    # ----------------------------------------------------------------- metrics

    @property
    def records_stored(self) -> int:
        return self._records_stored

    def per_node_storage_bytes(self) -> int:
        """Chain size every node must replicate (the §V storage-pressure claim)."""
        return self.chain.storage_bytes()

    def block_count(self) -> int:
        return len(self.chain) - 1
