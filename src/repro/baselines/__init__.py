"""Baseline systems the paper compares against qualitatively (§V).

To make the §V claims measurable, three comparators are implemented:

* :mod:`repro.baselines.full_record` — MedRec-style sharing [4]: the whole
  record is shared with each authorised peer (access control on the full
  record, no fine-grained views).  Used by the exposure benchmark (E7).
* :mod:`repro.baselines.onchain_storage` — HDG-style storage [22]: the raw
  medical data itself is stored on-chain, so every node replicates it.  Used
  by the storage-pressure benchmark (E6).
* :mod:`repro.baselines.centralized` — a trusted central server holding all
  shared data with centralized access control; the single point of failure
  the introduction argues against.  Used for latency/availability comparisons.
"""

from repro.baselines.full_record import FullRecordSharingBaseline
from repro.baselines.onchain_storage import OnChainStorageBaseline
from repro.baselines.centralized import CentralizedSharingBaseline

__all__ = [
    "FullRecordSharingBaseline",
    "OnChainStorageBaseline",
    "CentralizedSharingBaseline",
]
