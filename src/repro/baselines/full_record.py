"""MedRec-style full-record sharing baseline.

MedRec [4] keeps raw data in provider databases and grants *whole-record*
access through blockchain permissions; it explicitly does not manage
fine-grained slices of a record.  This baseline models that: when a provider
shares with a peer, the peer receives every attribute of the provider's
records.  The exposure benchmark (E7) compares the number of attributes each
role can see — and the number of attributes exposed to parties with no need
for them — against the paper's fine-grained views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.relational.table import Table


@dataclass
class _Grant:
    provider: str
    consumer: str
    table_name: str
    columns: Tuple[str, ...]


class FullRecordSharingBaseline:
    """Shares complete records (every attribute) with each authorised peer."""

    def __init__(self) -> None:
        self._tables: Dict[Tuple[str, str], Table] = {}
        self._grants: List[_Grant] = []

    # ----------------------------------------------------------------- set-up

    def register_provider_table(self, provider: str, table: Table) -> None:
        """Register a provider's base table (e.g. the doctor's D3)."""
        self._tables[(provider, table.name)] = table

    def grant_access(self, provider: str, consumer: str, table_name: str) -> None:
        """Authorise ``consumer`` to download the provider's whole table."""
        key = (provider, table_name)
        if key not in self._tables:
            raise KeyError(f"provider {provider!r} has no table {table_name!r}")
        table = self._tables[key]
        self._grants.append(
            _Grant(provider=provider, consumer=consumer, table_name=table_name,
                   columns=table.schema.column_names)
        )

    # ----------------------------------------------------------------- queries

    def download(self, provider: str, consumer: str, table_name: str) -> Table:
        """The consumer downloads the full table it was granted."""
        for grant in self._grants:
            if (grant.provider, grant.consumer, grant.table_name) == (provider, consumer,
                                                                      table_name):
                return self._tables[(provider, table_name)].snapshot()
        raise PermissionError(
            f"{consumer!r} has not been granted access to {provider!r}.{table_name!r}"
        )

    def columns_exposed_to(self, consumer: str) -> Tuple[str, ...]:
        """Every attribute the consumer can see across all grants."""
        seen: List[str] = []
        for grant in self._grants:
            if grant.consumer != consumer:
                continue
            for column in grant.columns:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def exposure_matrix(self) -> Dict[str, Tuple[str, ...]]:
        """consumer → attributes visible under full-record sharing."""
        consumers = {grant.consumer for grant in self._grants}
        return {consumer: self.columns_exposed_to(consumer) for consumer in sorted(consumers)}

    def unnecessary_exposure(self, needed: Mapping[str, Sequence[str]]) -> Dict[str, Tuple[str, ...]]:
        """Attributes each consumer can see but does not need.

        ``needed`` maps consumer → the attributes that consumer actually cares
        about (the paper's fine-grained views).  The result quantifies the
        "additional but unnecessary information" of the introduction.
        """
        result: Dict[str, Tuple[str, ...]] = {}
        for consumer, visible in self.exposure_matrix().items():
            required = set(needed.get(consumer, ()))
            result[consumer] = tuple(column for column in visible if column not in required)
        return result
