"""A centralized trusted-server sharing baseline.

The introduction argues that a trusted cloud server with centralized access
control is a single point of failure and a sharing bottleneck.  This baseline
implements that design — one server holds every shared table and mediates
every read and update — so availability and update-latency comparisons can be
made against the decentralized architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import UpdateRejected
from repro.ledger.clock import SimClock
from repro.relational.table import Table


@dataclass
class _AccessRule:
    table_name: str
    user: str
    can_read: bool
    writable_columns: Tuple[str, ...]


class CentralizedSharingBaseline:
    """One server stores all shared tables and checks permissions itself."""

    def __init__(self, clock: Optional[SimClock] = None, request_latency: float = 0.05):
        self.clock = clock or SimClock()
        self.request_latency = request_latency
        self.available = True
        self._tables: Dict[str, Table] = {}
        self._rules: List[_AccessRule] = []
        self._operations = 0

    # ------------------------------------------------------------------ set-up

    def host_table(self, table: Table) -> None:
        """Upload a shared table to the central server."""
        self._tables[table.name] = table.snapshot()

    def grant(self, table_name: str, user: str, can_read: bool = True,
              writable_columns: Sequence[str] = ()) -> None:
        if table_name not in self._tables:
            raise KeyError(f"server does not host table {table_name!r}")
        self._rules.append(_AccessRule(table_name=table_name, user=user, can_read=can_read,
                                       writable_columns=tuple(writable_columns)))

    def set_available(self, available: bool) -> None:
        """Simulate a server outage (the single-point-of-failure argument)."""
        self.available = available

    # ----------------------------------------------------------------- helpers

    def _rule_for(self, table_name: str, user: str) -> Optional[_AccessRule]:
        for rule in self._rules:
            if rule.table_name == table_name and rule.user == user:
                return rule
        return None

    def _touch(self) -> None:
        if not self.available:
            raise ConnectionError("the central sharing server is unavailable")
        self.clock.advance(self.request_latency)
        self._operations += 1

    # -------------------------------------------------------------- operations

    def read(self, user: str, table_name: str) -> Table:
        self._touch()
        rule = self._rule_for(table_name, user)
        if rule is None or not rule.can_read:
            raise UpdateRejected(f"user {user!r} may not read {table_name!r}")
        return self._tables[table_name].snapshot()

    def update(self, user: str, table_name: str, key: Sequence[object],
               updates: Mapping[str, object]) -> None:
        self._touch()
        rule = self._rule_for(table_name, user)
        if rule is None:
            raise UpdateRejected(f"user {user!r} has no access to {table_name!r}")
        illegal = [column for column in updates if column not in rule.writable_columns]
        if illegal:
            raise UpdateRejected(
                f"user {user!r} may not write columns {illegal} of {table_name!r}"
            )
        self._tables[table_name].update_by_key(key, updates)

    # ------------------------------------------------------------------ metrics

    @property
    def operations_served(self) -> int:
        return self._operations

    def storage_bytes(self) -> int:
        from repro.crypto.hashing import canonical_json

        return sum(len(canonical_json(t.to_dict()).encode("utf-8"))
                   for t in self._tables.values())
