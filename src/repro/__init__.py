"""repro — reproduction of "Blockchain-based Bidirectional Updates on
Fine-grained Medical Data" (Li, Cao, Hu, Yoshikawa; ICDE 2019).

The package is organised as the paper's architecture (Fig. 2):

* :mod:`repro.relational` — each peer's local relational database.
* :mod:`repro.bx` — bidirectional transformations (asymmetric lenses).
* :mod:`repro.crypto`, :mod:`repro.ledger`, :mod:`repro.contracts`,
  :mod:`repro.network` — the simulated blockchain substrate.
* :mod:`repro.core` — the paper's contribution: fine-grained sharing with
  bidirectional update propagation and on-chain permission control.
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.metrics` — the
  comparators and harness used to reproduce every figure and claim.

Quick start::

    from repro import build_paper_scenario

    system = build_paper_scenario()
    trace = system.coordinator.update_shared_entry(
        "researcher", "D23&D32", ("Ibuprofen",),
        {"mechanism_of_action": "MeA1-revised"},
    )
    print(trace.pretty())
"""

from repro.config import ConsensusConfig, LedgerConfig, NetworkConfig, SystemConfig
from repro.core import (
    MedicalDataSharingSystem,
    Peer,
    SharingAgreement,
    build_paper_scenario,
    build_scaled_scenario,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ConsensusConfig",
    "LedgerConfig",
    "NetworkConfig",
    "SystemConfig",
    "MedicalDataSharingSystem",
    "Peer",
    "SharingAgreement",
    "build_paper_scenario",
    "build_scaled_scenario",
    "ReproError",
    "__version__",
]
