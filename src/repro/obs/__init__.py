"""Observability for the sharing pipeline: tracing, metrics, export, analysis.

* :mod:`repro.obs.tracer` — deterministic span tracer over the sim clock;
* :mod:`repro.obs.registry` — unified counters/gauges/histograms;
* :mod:`repro.obs.export` — trace JSONL in the WAL envelope encoding;
* :mod:`repro.obs.analysis` — per-stage self-time and critical paths.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_key,
)
from repro.obs.export import (
    TRACE_OPERATION,
    TRACE_TABLE,
    read_trace_jsonl,
    trace_entries,
    write_trace_jsonl,
)
from repro.obs.analysis import PIPELINE_STAGES, TraceAnalyzer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_key",
    "TRACE_OPERATION",
    "TRACE_TABLE",
    "read_trace_jsonl",
    "trace_entries",
    "write_trace_jsonl",
    "PIPELINE_STAGES",
    "TraceAnalyzer",
]
