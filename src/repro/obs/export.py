"""Trace export/import as JSONL in the WAL envelope encoding.

Each exported line is a :class:`~repro.relational.wal.WalEntry` rendered
exactly as :class:`~repro.relational.durability.JsonlWalBackend` would write
it — ``{"sequence":N,"operation":"span","table":"trace","payload":{...}}`` —
so the same tooling (and the same corruption checks) read traces and WALs
alike.  Payloads are sorted-key, compact JSON over the deterministic span
fields only; two identically-seeded runs therefore export byte-identical
files.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.errors import WalCorruptionError
from repro.relational.wal import WalEntry

TRACE_OPERATION = "span"
TRACE_TABLE = "trace"

_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True, default=str)


def _span_payload(span: Any, include_wall: bool) -> Dict[str, Any]:
    if hasattr(span, "to_dict"):
        return span.to_dict(include_wall=include_wall)
    return dict(span)


def trace_entries(spans: Iterable[Any],
                  include_wall: bool = False) -> Iterator[WalEntry]:
    """Spans as :class:`WalEntry` objects, ordered by span id."""
    payloads = [_span_payload(span, include_wall) for span in spans]
    payloads.sort(key=lambda payload: payload["span_id"])
    for sequence, payload in enumerate(payloads, start=1):
        yield WalEntry(sequence=sequence, operation=TRACE_OPERATION,
                       table=TRACE_TABLE, payload=payload)


def write_trace_jsonl(spans: Iterable[Any],
                      path: Union[str, pathlib.Path],
                      include_wall: bool = False) -> int:
    """Write spans to ``path`` as WAL-envelope JSONL; returns the line count.

    With ``include_wall`` false (the default) only deterministic fields are
    exported, so the file is byte-identical across identically-seeded runs.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entry in trace_entries(spans, include_wall=include_wall):
            handle.write('{"sequence":%d,"operation":"%s","table":"%s",'
                         '"payload":%s}\n'
                         % (entry.sequence, TRACE_OPERATION, TRACE_TABLE,
                            _ENCODER.encode(entry.payload)))
            count += 1
    return count


def read_trace_jsonl(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Read span payloads back from a trace file, validating the envelope.

    Raises :class:`~repro.errors.WalCorruptionError` on malformed JSON, a
    wrong operation/table, or a sequence gap — the same failure modes the
    WAL reader guards against.
    """
    path = pathlib.Path(path)
    payloads: List[Dict[str, Any]] = []
    expected = 1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WalCorruptionError(
                    f"{path}:{line_number}: malformed trace line: {exc}") from exc
            if record.get("operation") != TRACE_OPERATION \
                    or record.get("table") != TRACE_TABLE:
                raise WalCorruptionError(
                    f"{path}:{line_number}: not a trace entry "
                    f"(operation={record.get('operation')!r}, "
                    f"table={record.get('table')!r})")
            if record.get("sequence") != expected:
                raise WalCorruptionError(
                    f"{path}:{line_number}: sequence gap — expected "
                    f"{expected}, found {record.get('sequence')!r}")
            expected += 1
            payloads.append(record["payload"])
    return payloads
