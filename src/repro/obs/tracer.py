"""A deterministic span tracer for the sharing-gateway pipeline.

Spans carry **two** timelines:

* *simulated* start/end read from the ledger's
  :class:`~repro.ledger.clock.SimClock` — deterministic for a given seed and
  topology, so exported traces are byte-identical across runs;
* *wall-clock* elapsed/self time from :func:`time.perf_counter` — the
  host-dependent cost of each stage, excluded from deterministic exports.

Parent/child links come from a per-thread span stack: entering a span pushes
it, so any span opened on the same thread while it is active becomes its
child and inherits its ``trace_id``.  Cross-thread work (the async transport
runs commits in an executor) therefore starts a fresh root on the worker
thread — the gateway stitches causality back together by stamping the batch
``trace_id`` and member request ids onto the commit span explicitly.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span`` returns
a shared no-op context manager: instrumentation costs one attribute load and
one call when tracing is off.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One timed, attributed operation; acts as its own context manager."""

    __slots__ = ("_tracer", "span_id", "trace_id", "parent_id", "name", "attrs",
                 "sim_start", "sim_end", "wall_start", "wall_elapsed",
                 "children_wall", "children_sim")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 trace_id: Optional[str], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id: Optional[int] = None
        self.name = name
        self.attrs = attrs
        self.sim_start = 0.0
        self.sim_end = 0.0
        self.wall_start = 0.0
        self.wall_elapsed = 0.0
        self.children_wall = 0.0
        self.children_sim = 0.0

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            if self.trace_id is None:
                self.trace_id = parent.trace_id
        stack.append(self)
        self.sim_start = self._tracer._now()
        self.wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_elapsed = time.perf_counter() - self.wall_start
        self.sim_end = self._tracer._now()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unwound out of order
            stack.remove(self)
        if stack:
            parent = stack[-1]
            parent.children_wall += self.wall_elapsed
            parent.children_sim += self.sim_end - self.sim_start
        self._tracer._finish(self)

    # -- mutation --------------------------------------------------------

    def annotate(self, **attrs: Any) -> "Span":
        """Merge extra attributes into the span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def set_trace_id(self, trace_id: str) -> None:
        self.trace_id = trace_id

    # -- derived timings -------------------------------------------------

    @property
    def sim_elapsed(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def sim_self(self) -> float:
        """Simulated time spent in this span minus its direct children."""
        return self.sim_elapsed - self.children_sim

    @property
    def wall_self(self) -> float:
        """Wall-clock time spent in this span minus its direct children."""
        return self.wall_elapsed - self.children_wall

    def to_dict(self, include_wall: bool = False) -> Dict[str, Any]:
        """The span as a plain dict.

        Without ``include_wall`` only deterministic fields appear, so two
        identically-seeded runs export byte-identical span trees.
        """
        payload: Dict[str, Any] = {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_self": self.sim_self,
        }
        if include_wall:
            payload["wall_elapsed"] = self.wall_elapsed
            payload["wall_self"] = self.wall_self
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(id={self.span_id}, name={self.name!r}, "
                f"trace={self.trace_id!r}, parent={self.parent_id})")


class _NullSpan:
    """Shared no-op span: every tracer call site works unconditionally."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def set_trace_id(self, trace_id: str) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: ``span()`` hands back one shared no-op span."""

    enabled = False

    def span(self, name: str, trace_id: Optional[str] = None,
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> Tuple[Span, ...]:
        return ()

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records :class:`Span` trees against a simulated clock.

    Parameters
    ----------
    clock:
        Anything with a ``now()`` method — in practice the system's
        :class:`~repro.ledger.clock.SimClock`.  ``None`` stamps simulated
        times as ``0.0`` (useful in unit tests that only check structure).
    max_spans:
        Optional retention cap; once reached further spans are counted in
        ``spans_dropped`` instead of stored, bounding memory on long runs.
    """

    enabled = True

    def __init__(self, clock: Optional[Any] = None,
                 max_spans: Optional[int] = None) -> None:
        self._clock = clock
        self._max_spans = max_spans
        self._ids = itertools.count(1)
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans_dropped = 0

    # -- internals used by Span -----------------------------------------

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            if self._max_spans is not None and len(self._spans) >= self._max_spans:
                self.spans_dropped += 1
            else:
                self._spans.append(span)

    # -- public API ------------------------------------------------------

    def span(self, name: str, trace_id: Optional[str] = None,
             **attrs: Any) -> Span:
        """A new span; use as ``with tracer.span("stage", key=value) as s:``.

        ``trace_id`` defaults to the enclosing span's trace id (if any);
        roots without one stay ``None`` until :meth:`Span.set_trace_id`.
        """
        return Span(self, next(self._ids), name, trace_id, attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def spans(self) -> Tuple[Span, ...]:
        """All finished spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Drop recorded spans (open spans keep their ids and still record)."""
        with self._lock:
            self._spans.clear()
            self.spans_dropped = 0

    def statistics(self) -> Dict[str, Any]:
        with self._lock:
            recorded = len(self._spans)
            names: Dict[str, int] = {}
            for span in self._spans:
                names[span.name] = names.get(span.name, 0) + 1
        return {
            "spans_recorded": recorded,
            "spans_dropped": self.spans_dropped,
            "spans_by_name": dict(sorted(names.items())),
        }
