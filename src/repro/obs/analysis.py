"""Aggregation over recorded spans: per-stage self-time and critical paths.

:data:`PIPELINE_STAGES` maps the five gateway pipeline stages to the span
names each one emits, so ``TraceAnalyzer.pipeline_stages()`` answers the
question the scattered ``metrics()`` dicts never could: *where does a
committed write actually spend its (simulated) time?*
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

# The five pipeline stages and the span names that belong to each.
PIPELINE_STAGES: Dict[str, tuple] = {
    "admission": ("gateway.admit", "gateway.read"),
    "seal_commit": ("gateway.commit", "scheduler.plan"),
    "consensus": ("consensus.round", "lane.mine"),
    "delta": ("delta.leg", "cascade.leg"),
    "wal": ("wal.append", "wal.fsync"),
}


def _as_payload(span: Any) -> Dict[str, Any]:
    if hasattr(span, "to_dict"):
        return span.to_dict(include_wall=True)
    payload = dict(span)
    payload.setdefault("wall_elapsed", 0.0)
    payload.setdefault("wall_self", 0.0)
    return payload


class TraceAnalyzer:
    """Aggregates a set of spans (live ``Span`` objects or exported dicts)."""

    def __init__(self, spans: Sequence[Union[Mapping[str, Any], Any]]) -> None:
        self.spans: List[Dict[str, Any]] = sorted(
            (_as_payload(span) for span in spans),
            key=lambda payload: payload["span_id"])
        self._by_id = {span["span_id"]: span for span in self.spans}
        self._children: Dict[Optional[int], List[Dict[str, Any]]] = {}
        for span in self.spans:
            self._children.setdefault(span["parent_id"], []).append(span)

    @classmethod
    def from_tracer(cls, tracer: Any) -> "TraceAnalyzer":
        return cls(tracer.spans())

    @classmethod
    def from_jsonl(cls, path: Any) -> "TraceAnalyzer":
        from repro.obs.export import read_trace_jsonl
        return cls(read_trace_jsonl(path))

    # -- aggregation -----------------------------------------------------

    @staticmethod
    def _sim_elapsed(span: Mapping[str, Any]) -> float:
        return span["sim_end"] - span["sim_start"]

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per span-name totals: count, simulated total/self, wall self."""
        summary: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            bucket = summary.setdefault(span["name"], {
                "count": 0, "sim_total": 0.0, "sim_self": 0.0,
                "wall_self": 0.0})
            bucket["count"] += 1
            bucket["sim_total"] += self._sim_elapsed(span)
            bucket["sim_self"] += span["sim_self"]
            bucket["wall_self"] += span.get("wall_self", 0.0)
        return dict(sorted(summary.items()))

    def pipeline_stages(self) -> Dict[str, Dict[str, Any]]:
        """Self-time per pipeline stage, with per-name (and per-lane)
        breakdowns.  Stages with no recorded spans still appear with zero
        counts, so callers can tell "not instrumented" from "not exercised".
        """
        by_name = self.stage_summary()
        stages: Dict[str, Dict[str, Any]] = {}
        for stage, names in PIPELINE_STAGES.items():
            breakdown = {name: by_name[name] for name in names if name in by_name}
            stages[stage] = {
                "count": int(sum(b["count"] for b in breakdown.values())),
                "sim_self": sum(b["sim_self"] for b in breakdown.values()),
                "wall_self": sum(b["wall_self"] for b in breakdown.values()),
                "spans": breakdown,
            }
        lanes: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span["name"] != "lane.mine":
                continue
            shard = str(span["attrs"].get("shard", "?"))
            lane = lanes.setdefault(shard, {"count": 0, "sim_self": 0.0})
            lane["count"] += 1
            lane["sim_self"] += span["sim_self"]
        stages["consensus"]["lanes"] = dict(sorted(lanes.items()))
        return stages

    def critical_path(self) -> List[Dict[str, Any]]:
        """The longest (by simulated elapsed) root-to-leaf chain of spans.

        Ties break toward the lowest span id, keeping the result
        deterministic.
        """
        roots = self._children.get(None, [])
        if not roots:
            return []

        def pick(candidates: List[Dict[str, Any]]) -> Dict[str, Any]:
            return max(candidates,
                       key=lambda s: (self._sim_elapsed(s), -s["span_id"]))

        path = [pick(roots)]
        while True:
            children = self._children.get(path[-1]["span_id"])
            if not children:
                return path
            path.append(pick(children))

    def request_tree(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every span belonging to ``trace_id``, plus the full subtrees of
        batch spans whose ``requests`` attribute names it (a committed
        write's consensus/delta/WAL work happens under the batch trace)."""
        matched: Dict[int, Dict[str, Any]] = {}

        def add_subtree(span: Dict[str, Any]) -> None:
            if span["span_id"] in matched:
                return
            matched[span["span_id"]] = span
            for child in self._children.get(span["span_id"], []):
                add_subtree(child)

        for span in self.spans:
            if span["trace_id"] == trace_id:
                matched.setdefault(span["span_id"], span)
            elif trace_id in span["attrs"].get("requests", ()):
                add_subtree(span)
        return [matched[span_id] for span_id in sorted(matched)]

    def trace_ids(self) -> List[str]:
        seen = []
        for span in self.spans:
            tid = span["trace_id"]
            if tid is not None and tid not in seen:
                seen.append(tid)
        return seen

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": len(self.spans),
            "stages": self.pipeline_stages(),
            "critical_path": [
                {"span_id": s["span_id"], "name": s["name"],
                 "trace_id": s["trace_id"],
                 "sim_elapsed": self._sim_elapsed(s)}
                for s in self.critical_path()
            ],
        }
