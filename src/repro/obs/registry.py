"""A unified metrics registry: named counters, gauges and histograms.

Subsystems register instruments under a name plus optional labels
(``registry.counter("gateway_writes_committed")``,
``registry.histogram("gateway_request_latency", tenant="doctor")``); one
:meth:`MetricsRegistry.snapshot` then renders every instrument in a single
deterministic tree.  Existing collectors plug in rather than being replaced:
a :class:`Histogram` wraps the familiar
:class:`~repro.metrics.collectors.LatencyCollector`, and a :class:`Gauge`
can read its value from a callback (e.g. ``lambda: queue_depth``), so the
hand-assembled ``metrics()`` trees keep working as compatibility views over
the same state.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def render_key(name: str, labels: LabelKey) -> str:
    """A stable, prometheus-style key: ``name{label="value",...}``."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing, thread-safe count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: either set directly or read from a callback."""

    __slots__ = ("_fn", "_value", "_lock")

    def __init__(self, fn: Optional[Callable[[], Any]] = None) -> None:
        self._fn = fn
        self._value: Any = 0
        self._lock = threading.Lock()

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise ValueError("cannot set a callback-backed gauge")
        with self._lock:
            self._value = value

    @property
    def value(self) -> Any:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """A latency distribution backed by a ``LatencyCollector``.

    An existing collector may be passed in so code that already records into
    one (the gateway's per-tenant latencies) shows up in the registry without
    double-recording.
    """

    __slots__ = ("collector",)

    def __init__(self, collector: Optional[Any] = None) -> None:
        if collector is None:
            # Imported lazily: collectors.py imports core.system, which pulls
            # in the ledger (and thus this package) during package init.
            from repro.metrics.collectors import LatencyCollector
            collector = LatencyCollector()
        self.collector = collector

    def observe(self, value: float) -> None:
        self.collector.record_value(value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.collector.summary(),
            "buckets": self.collector.histogram_buckets(),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instruments keyed by ``(name, labels)``.

    Re-registering the same name+labels returns the existing instrument;
    asking for the same key as a different kind raises ``ValueError`` so two
    subsystems cannot silently shadow each other.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Tuple[str, Any]] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _label_key(labels: Mapping[str, Any]) -> LabelKey:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(self, kind: str, name: str, labels: Mapping[str, Any],
                       factory: Callable[[], Any]) -> Any:
        key = (name, self._label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                existing_kind, instrument = existing
                if existing_kind != kind:
                    raise ValueError(
                        f"{render_key(*key)} already registered as "
                        f"{existing_kind}, not {kind}")
                return instrument
            instrument = factory()
            self._instruments[key] = (kind, instrument)
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, fn: Optional[Callable[[], Any]] = None,
              **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels, lambda: Gauge(fn))

    def histogram(self, name: str, collector: Optional[Any] = None,
                  **labels: Any) -> Histogram:
        return self._get_or_create("histogram", name, labels,
                                   lambda: Histogram(collector))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every instrument's current value, deterministically ordered."""
        with self._lock:
            items = sorted(self._instruments.items())
        snapshot: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for (name, labels), (kind, instrument) in items:
            key = render_key(name, labels)
            if kind == "counter":
                snapshot["counters"][key] = instrument.value
            elif kind == "gauge":
                snapshot["gauges"][key] = instrument.value
            else:
                snapshot["histograms"][key] = instrument.to_dict()
        return snapshot
