"""The gateway's typed request/response model.

Clients talk to the gateway in terms of small serialisable request objects —
read a shared view, edit an entry, insert or delete one, query the audit
trail — and receive :class:`GatewayResponse` objects carrying the outcome,
the payload and the simulated queueing/service timestamps.  Serialisation is
load-bearing: requests travel between tenant processes and the gateway, and
responses embed :class:`~repro.core.workflow.WorkflowTrace` dictionaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple


class GatewayRequest:
    """Base class of gateway requests.  Subclasses set ``kind``."""

    kind: str = "abstract"

    #: Set by the gateway at admission (the response's ``request_id``); links
    #: every span the request produces into one trace.
    trace_id: Optional[str] = None

    #: Kinds that mutate shared data (scheduled and batched); the rest are
    #: served synchronously from the read path.
    WRITE_KINDS = ("update-entry", "insert-entry", "delete-entry")

    @property
    def is_write(self) -> bool:
        return self.kind in self.WRITE_KINDS

    def assign_trace_id(self, trace_id: str) -> None:
        # Subclasses are frozen dataclasses; the trace id is gateway-internal
        # bookkeeping, not part of the request's identity.
        object.__setattr__(self, "trace_id", trace_id)

    def _with_trace(self, payload: dict) -> dict:
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "GatewayRequest":
        kind = payload["kind"]
        builders = {
            "read-view": lambda p: ReadViewRequest(metadata_id=p["metadata_id"]),
            "update-entry": lambda p: UpdateEntryRequest(
                metadata_id=p["metadata_id"], key=tuple(p["key"]),
                updates=dict(p["updates"])),
            "insert-entry": lambda p: InsertEntryRequest(
                metadata_id=p["metadata_id"], values=dict(p["values"])),
            "delete-entry": lambda p: DeleteEntryRequest(
                metadata_id=p["metadata_id"], key=tuple(p["key"])),
            "audit-query": lambda p: AuditQueryRequest(
                metadata_id=p.get("metadata_id")),
        }
        if kind not in builders:
            raise ValueError(f"unknown gateway request kind {kind!r}")
        request = builders[kind](payload)
        if payload.get("trace_id") is not None:
            request.assign_trace_id(payload["trace_id"])
        return request


@dataclass(frozen=True)
class ReadViewRequest(GatewayRequest):
    """Read the materialised shared view of one agreement."""

    metadata_id: str
    kind = "read-view"

    def to_dict(self) -> dict:
        return self._with_trace({"kind": self.kind,
                                 "metadata_id": self.metadata_id})


@dataclass(frozen=True)
class UpdateEntryRequest(GatewayRequest):
    """Update one keyed entry of a shared table."""

    metadata_id: str
    key: Tuple[Any, ...]
    updates: Dict[str, Any]
    kind = "update-entry"

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", tuple(self.key))
        object.__setattr__(self, "updates", dict(self.updates))

    def to_dict(self) -> dict:
        return self._with_trace({"kind": self.kind,
                                 "metadata_id": self.metadata_id,
                                 "key": list(self.key),
                                 "updates": dict(self.updates)})


@dataclass(frozen=True)
class InsertEntryRequest(GatewayRequest):
    """Insert a new entry into a shared table."""

    metadata_id: str
    values: Dict[str, Any]
    kind = "insert-entry"

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def to_dict(self) -> dict:
        return self._with_trace({"kind": self.kind,
                                 "metadata_id": self.metadata_id,
                                 "values": dict(self.values)})


@dataclass(frozen=True)
class DeleteEntryRequest(GatewayRequest):
    """Delete one keyed entry from a shared table."""

    metadata_id: str
    key: Tuple[Any, ...]
    kind = "delete-entry"

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", tuple(self.key))

    def to_dict(self) -> dict:
        return self._with_trace({"kind": self.kind,
                                 "metadata_id": self.metadata_id,
                                 "key": list(self.key)})


@dataclass(frozen=True)
class AuditQueryRequest(GatewayRequest):
    """Query the on-chain audit trail (optionally for one shared table)."""

    metadata_id: Optional[str] = None
    kind = "audit-query"

    def to_dict(self) -> dict:
        return self._with_trace({"kind": self.kind,
                                 "metadata_id": self.metadata_id})


#: Terminal response statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"       # the contract or local validation refused
STATUS_THROTTLED = "throttled"     # per-tenant rate limit hit (backpressure)
STATUS_QUEUED = "queued"           # write accepted into the scheduler queue
STATUS_ERROR = "error"             # unexpected failure mid-protocol
STATUS_SHED = "shed"               # gateway-wide load shedding (queue full)

#: Statuses a response can end in; ``queued`` is the only transient one.
TERMINAL_STATUSES = (STATUS_OK, STATUS_REJECTED, STATUS_THROTTLED,
                     STATUS_ERROR, STATUS_SHED)


@dataclass
class GatewayResponse:
    """The gateway's answer to one request."""

    request_id: str
    tenant: str
    kind: str
    status: str
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    enqueued_at: float = 0.0
    completed_at: float = 0.0
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def terminal(self) -> bool:
        """True once the response reached a final status (not ``queued``)."""
        return self.status in TERMINAL_STATUSES

    @property
    def shed(self) -> bool:
        """True when the gateway shed this request under overload."""
        return self.status == STATUS_SHED

    @property
    def latency(self) -> float:
        """Queueing + service latency in simulated seconds."""
        return max(0.0, self.completed_at - self.enqueued_at)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "status": self.status,
            "payload": dict(self.payload),
            "error": self.error,
            "enqueued_at": self.enqueued_at,
            "completed_at": self.completed_at,
            "latency": self.latency,
            "trace_id": self.trace_id,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "GatewayResponse":
        return GatewayResponse(
            request_id=payload["request_id"],
            tenant=payload["tenant"],
            kind=payload["kind"],
            status=payload["status"],
            payload=dict(payload.get("payload", {})),
            error=payload.get("error"),
            enqueued_at=float(payload.get("enqueued_at", 0.0)),
            completed_at=float(payload.get("completed_at", 0.0)),
            trace_id=payload.get("trace_id"),
        )

    def canonical(self) -> str:
        """A canonical JSON form of the response, for equality across a
        serialisation boundary.

        A response recovered from the durable journal went through JSON,
        which turns payload tuples into lists; comparing ``canonical()``
        strings asks "are these the same response?" without tripping over
        that representational difference.  Used by the crash-recovery parity
        oracle.
        """
        return json.dumps(self.to_dict(), sort_keys=True, default=str)
