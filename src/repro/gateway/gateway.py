"""The gateway facade: sessions in front, batched ledger commits behind.

:class:`SharingGateway` is the serving layer of the reproduction.  Tenants
open sessions, submit typed requests and get typed responses; behind the
facade the gateway

* serves reads through the invalidation-correct :class:`ViewCache`;
* queues writes into the :class:`WriteScheduler`, which folds compatible
  updates into :class:`~repro.core.workflow.BatchGroup`'s;
* commits each planned batch through
  :meth:`~repro.core.workflow.UpdateCoordinator.commit_entry_batch`, i.e. one
  consensus round for all requests and one for all acknowledgements;
* sheds writes with a typed ``shed`` response when the queue is at capacity
  (``max_queue_depth``), when the commit-latency target is blown (windowed
  p99 or predicted queueing delay — :class:`LatencyShedder`), when a tenant
  exceeds its fair share of a bounded queue, or when a circuit breaker on
  the commit path / tenant / consensus lane is open (:class:`BreakerBoard`);
* optionally serves ``read_view`` requests *degraded* — straight from the
  cache with an explicit bounded-staleness marker — while the commit path
  is unhealthy (``resilience.degraded_reads``);
* journals terminal responses to an on-disk WAL when ``state_dir`` is set
  (before terminal listeners fire), so a restarted gateway answers old
  ``get_response`` lookups and the in-memory response store can be capped
  (``max_responses``) with journaled entries evicted, not lost;
* tracks serving metrics: queue depth, batch sizes, cache hit rate,
  interleaving (requests admitted while a commit round was in flight) and
  per-tenant latency percentiles.

All methods are thread-safe.  Two locks split the serving path so admission
can overlap a commit round:

* ``_lock`` guards admission state (sessions, responses, counters, the write
  queue) and is only held for quick bookkeeping;
* ``_commit_lock`` serialises batch commits and read-through view loads; it
  is held across the consensus rounds, during which ``_lock`` is *released*
  — so new arrivals are admitted (and reads served from cache) while a batch
  is mining.

Lock order is always ``_commit_lock`` → ``_lock`` (or either alone); the
cache lock is never held while acquiring either (see
:meth:`ViewCache.get`'s generation guard).  The worker pool in
:mod:`repro.gateway.worker` and the asyncio transport in
:mod:`repro.gateway.aio` both drain the same queue through
:meth:`commit_once`.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.chaos import NULL_INJECTOR, STATE_CLOSED, BreakerBoard, Retrier
from repro.core.system import MedicalDataSharingSystem
from repro.core.workflow import BatchCommitResult
from repro.errors import (
    GatewayError,
    ReproError,
    SessionError,
    SharingError,
    WalCorruptionError,
)
from repro.gateway.admission import LatencyShedder, fair_share_exceeded
from repro.gateway.cache import ViewCache
from repro.gateway.requests import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_THROTTLED,
    AuditQueryRequest,
    GatewayRequest,
    GatewayResponse,
    ReadViewRequest,
)
from repro.gateway.scheduler import BatchPlan, PendingWrite, WriteScheduler
from repro.gateway.session import GatewaySession
from repro.metrics.collectors import LatencyCollector, PeakGauge
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.relational.durability import JsonlWalBackend, checkpoint_database
from repro.relational.replication import (
    ReadReplica,
    ReplicaRouter,
    SegmentShipper,
)
from repro.relational.wal import WalEntry


class ResponseJournal:
    """A durable journal of terminal gateway responses.

    One JSONL WAL (see :class:`~repro.relational.durability.JsonlWalBackend`)
    holding every response that reached a terminal status, so a restarted
    gateway can answer ``get_response(request_id)`` for requests that were
    terminal before the crash — and so in-memory responses can be evicted
    under a retention cap without losing answerability.

    Appends are ordered under one lock (the backend refuses out-of-order
    sequences on read), so concurrent finalisations from the event loop and
    executor threads interleave safely.
    """

    TABLE = "responses"

    def __init__(self, directory: Union[str, pathlib.Path],
                 fsync_policy: str = "batch", segment_max_bytes: int = 1_000_000):
        self.backend = JsonlWalBackend(directory, fsync_policy=fsync_policy,
                                       segment_max_bytes=segment_max_bytes)
        self._lock = threading.Lock()
        #: request_id → (segment_path, offset, length) of its latest
        #: journaled response — lookups seek straight to the line instead of
        #: rescanning the whole journal (which only ever grows).  ~100 bytes
        #: per id, vs. keeping whole responses in memory.
        self._locations: Dict[str, Tuple[pathlib.Path, int, int]] = {}
        started = time.perf_counter()
        highest_request = 0
        last_sequence = 0
        # One pass over the segment bytes builds the location index and
        # finds the tail sequence (torn tails were amputated when the
        # backend opened, so every remaining line must decode).
        segments = self.backend.segment_paths()
        for segment_index, segment in enumerate(segments):
            lines = segment.read_bytes().split(b"\n")
            offset = 0
            for line_index, raw in enumerate(lines):
                if not raw:
                    offset += 1
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                    response_payload = record["payload"]
                    last_sequence = max(last_sequence, int(record["sequence"]))
                except (ValueError, KeyError, UnicodeDecodeError) as exc:
                    if (segment_index == len(segments) - 1
                            and line_index == len(lines) - 1):
                        break  # a concurrent writer's torn flush; ignore
                    raise WalCorruptionError(
                        f"undecodable response-journal entry at "
                        f"{segment.name}:{line_index + 1}") from exc
                request_id = response_payload.get("request_id", "")
                self._locations[request_id] = (segment, offset, len(raw))
                highest_request = max(highest_request, _request_number(request_id))
                offset += len(raw) + 1
        self.recovered_responses = len(self._locations)
        self.highest_request_number = highest_request
        self._next_sequence = last_sequence + 1
        self.recovery_seconds = time.perf_counter() - started

    def record(self, response: GatewayResponse) -> None:
        """Append one terminal response (ordered, crash-safe, indexed)."""
        with self._lock:
            entry = WalEntry(self._next_sequence, "response", self.TABLE,
                             response.to_dict())
            self._next_sequence += 1
            self._locations[response.request_id] = self.backend.append(entry)

    def sync(self) -> None:
        self.backend.sync()

    def close(self) -> None:
        self.backend.close()

    def compact(self, keep: Optional[int] = None) -> Dict[str, int]:
        """Fold the journal down to the latest response per request id.

        The journal only ever appends, so torn lines, superseded rewrites
        and — under a retention cap — responses older than the newest
        ``keep`` ids accumulate as dead weight that every restart re-scans.
        Compaction rewrites the kept responses (chronological order,
        sequences continuing past the current tail) into one fresh segment
        and drops everything else; the location index is rebuilt so lookups
        keep seeking.  Crash-safe via the backend's atomic segment swap.
        """
        with self._lock:
            self.backend.flush()
            bytes_before = self.backend.wal_bytes()
            segment_order = {path: index for index, path
                             in enumerate(self.backend.segment_paths())}
            ordered = sorted(
                self._locations.items(),
                key=lambda item: (segment_order.get(item[1][0], -1), item[1][1]))
            if keep is not None:
                ordered = ordered[-keep:]
            payloads = []
            for request_id, (path, offset, length) in ordered:
                try:
                    with open(path, "rb") as handle:
                        handle.seek(offset)
                        record = json.loads(handle.read(length).decode("utf-8"))
                    payloads.append((request_id, record["payload"]))
                except (OSError, ValueError, KeyError):
                    continue  # segment vanished or line torn; drop the id
            first_sequence = self._next_sequence
            lines = []
            for index, (_request_id, payload) in enumerate(payloads):
                lines.append(json.dumps(
                    {"sequence": first_sequence + index, "operation": "response",
                     "table": self.TABLE, "payload": payload},
                    separators=(",", ":"), default=str).encode("utf-8") + b"\n")
            self._next_sequence = first_sequence + len(payloads)
            target = self.backend.replace_segments(lines, first_sequence)
            self._locations = {}
            offset = 0
            for (request_id, _payload), line in zip(payloads, lines):
                self._locations[request_id] = (target, offset, len(line) - 1)
                offset += len(line)
            return {
                "responses_kept": len(payloads),
                "bytes_reclaimed": max(0, bytes_before - self.backend.wal_bytes()),
            }

    def lookup(self, request_id: str) -> Optional[GatewayResponse]:
        """The journaled terminal response for ``request_id``, by seek."""
        location = self._locations.get(request_id)
        if location is None:
            return None
        path, offset, length = location
        self.backend.flush()  # a batched append may still be buffered
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                record = json.loads(handle.read(length).decode("utf-8"))
        except (OSError, ValueError):
            return None  # segment vanished or tail lost to a crash
        return GatewayResponse.from_dict(record["payload"])

    def statistics(self) -> Dict[str, object]:
        stats = self.backend.statistics()
        stats["recovered_responses"] = self.recovered_responses
        stats["recovery_seconds"] = self.recovery_seconds
        return stats


def _request_number(request_id: str) -> int:
    """The numeric part of a ``req-N`` id (0 when unparseable)."""
    try:
        return int(request_id.rsplit("-", 1)[-1])
    except (ValueError, IndexError):
        return 0


class SharingGateway:
    """Concurrent multi-tenant request-serving layer over one sharing system."""

    def __init__(self, system: MedicalDataSharingSystem,
                 max_batch_size: int = 16, max_edits_per_group: int = 8,
                 cache_enabled: bool = True,
                 default_rate: float = 0.0, default_burst: float = 8.0,
                 fold_cross_peer: bool = True,
                 max_queue_depth: Optional[int] = None,
                 state_dir: Optional[Union[str, pathlib.Path]] = None,
                 fsync_policy: Optional[str] = None,
                 max_responses: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 latency_target: Optional[float] = None,
                 degraded_reads: Optional[bool] = None):
        self.system = system
        # Tracing defaults to the shared no-op tracer; passing a real one
        # also attaches it downstream (coordinator, miners, peer WALs) so a
        # request's spans link across the whole pipeline.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            system.attach_tracer(tracer)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.scheduler = WriteScheduler(max_batch_size=max_batch_size,
                                        max_edits_per_group=max_edits_per_group,
                                        fold_cross_peer=fold_cross_peer,
                                        max_queue_depth=max_queue_depth)
        self.cache = ViewCache(enabled=cache_enabled)
        self.cache.tracer = self.tracer
        #: Diff-driven cache pre-warming: when a commit's TableDiff names a
        #: view no reader has pulled yet, materialise and install it at the
        #: commit boundary instead of waiting for the next read-through miss.
        self.prewarm_cache = system.config.replication.prewarm_cache
        # The diff-aware hook patches cached views row by row when the
        # coordinator hands over the change's TableDiff (and pre-warms the
        # untouched ones), dropping views only when it cannot patch them
        # (half-installed failures).
        system.coordinator.subscribe_shared_diff(self._on_shared_diff)
        # Resilience: commit-latency-driven admission shedding, per-tenant /
        # per-lane / commit-path circuit breakers, fair queueing and (opt-in)
        # bounded-staleness degraded reads.  Defaults come from
        # ``SystemConfig.resilience``; ``latency_target`` / ``degraded_reads``
        # are per-gateway overrides.
        resilience = system.config.resilience
        self.resilience = resilience
        clock = system.simulator.clock
        if clock is None:
            # The degraded-read path's bounded-staleness guarantee measures
            # entry ages on the simulated clock; without one, every age is
            # unknown and degraded reads would always refuse.  Fail loudly
            # at construction instead of silently never serving degraded.
            raise GatewayError(
                "the system's simulator carries no clock; the gateway's "
                "cache cannot measure view staleness without one")
        self.cache.clock = clock
        self.latency_target = (resilience.latency_target_p99
                               if latency_target is None else latency_target)
        self.shedder = LatencyShedder(clock, self.latency_target,
                                      window=resilience.latency_window,
                                      min_samples=resilience.latency_min_samples)
        self.breakers = BreakerBoard(
            clock, failure_threshold=resilience.breaker_failure_threshold,
            reset_timeout=resilience.breaker_reset_timeout,
            tracer=self.tracer, registry=self.registry)
        self.fair_queueing = resilience.fair_queueing
        self.degraded_reads = (resilience.degraded_reads
                               if degraded_reads is None else degraded_reads)
        self.max_staleness = resilience.max_staleness
        self.default_rate = default_rate
        self.default_burst = default_burst
        self._sessions: Dict[str, GatewaySession] = {}
        self._responses: Dict[str, GatewayResponse] = {}
        self._latency_by_tenant: Dict[str, LatencyCollector] = {}
        self._status_counts: Dict[str, int] = {}
        self._kind_counts: Dict[str, int] = {}
        self._request_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._outstanding = PeakGauge()
        self.batch_sizes: List[int] = []
        # Serving counters live in the unified registry; the attributes the
        # rest of the codebase reads (``gateway.writes_committed``, ...) are
        # read-only properties over these instruments.
        self._batch_blocks = self.registry.counter("gateway_batch_blocks")
        self._batch_consensus_rounds = self.registry.counter(
            "gateway_batch_consensus_rounds")
        self._writes_committed = self.registry.counter("gateway_writes_committed")
        self._writes_rejected = self.registry.counter("gateway_writes_rejected")
        self._shed_requests = self.registry.counter("gateway_shed_requests")
        #: Shed decisions by cause, so overload diagnoses name the mechanism
        #: (queue capacity vs. latency target vs. fairness vs. open breaker).
        self._shed_by_reason = {
            reason: self.registry.counter("gateway_shed_by_reason",
                                          reason=reason)
            for reason in ("capacity", "latency", "fair_share", "breaker")}
        self._degraded_reads_served = self.registry.counter(
            "gateway_degraded_reads")
        #: Requests (reads and writes) admitted while a batch commit's
        #: consensus rounds were in flight — the open-loop interleaving the
        #: async transport exists to produce.
        self._admitted_during_commit = self.registry.counter(
            "gateway_admitted_during_commit")
        self._commits_in_flight = PeakGauge()
        #: Callbacks fired when a response reaches a terminal status, and
        #: when a write is enqueued.  Listeners run under the admission lock:
        #: they must be cheap, thread-safe and must not call back into the
        #: gateway (the async transport resolves futures, the worker pool
        #: wakes idle workers).
        self._terminal_listeners: List[Callable[[GatewayResponse], None]] = []
        self._enqueue_listeners: List[Callable[[int], None]] = []
        self._lock = threading.RLock()
        self._commit_lock = threading.RLock()
        #: Per-lane commit-pump stats, keyed by lane ("all" for unfiltered
        #: commits, "0"/"1"/... for lane-pure pumps).  Updated under
        #: ``_lock`` inside commit_once; surfaced in
        #: ``metrics()["transport"]["pumps"]``.
        self._pump_stats: Dict[str, Dict[str, Any]] = {}
        # Durability: terminal responses are journaled to an on-disk WAL
        # (before terminal listeners fire), so a restarted gateway answers
        # old request-id lookups and in-memory responses can be evicted
        # under the retention cap without losing answerability.
        durability = system.config.durability
        if state_dir is None:
            state_dir = durability.state_dir
        self.state_dir = pathlib.Path(state_dir) if state_dir is not None else None
        self.fsync_policy = fsync_policy or durability.fsync_policy
        self.max_responses = (durability.response_retention
                              if max_responses is None else max_responses)
        if self.max_responses is not None and self.max_responses < 1:
            raise ValueError("max_responses must be at least 1 (or None)")
        self._responses_evicted = self.registry.counter("gateway_responses_evicted")
        self._responses_journaled = self.registry.counter(
            "gateway_responses_journaled")
        self._journaled_ids: set = set()
        self.journal: Optional[ResponseJournal] = None
        if self.state_dir is not None:
            self.journal = ResponseJournal(
                self.state_dir / "responses", fsync_policy=self.fsync_policy,
                segment_max_bytes=durability.segment_max_bytes)
            self.journal.backend.tracer = self.tracer
            # Continue request ids past the recovered journal so a restarted
            # gateway never reissues an id that is already answerable.
            self._request_ids = itertools.count(
                self.journal.highest_request_number + 1)
            self._wire_journal_chaos()
        #: Background durability maintenance (run inline at commit
        #: boundaries — deterministic, no real background threads): WAL-size
        #: and sim-time triggered peer-database checkpoints, and response-
        #: journal compaction past a byte threshold.
        self.checkpoint_wal_bytes = durability.checkpoint_wal_bytes
        self.checkpoint_interval = durability.checkpoint_interval
        self.journal_compact_bytes = durability.journal_compact_bytes
        self._checkpoints = self.registry.counter("gateway_checkpoints")
        self._checkpoint_segments_removed = self.registry.counter(
            "gateway_checkpoint_segments_removed")
        self._journal_compactions = self.registry.counter(
            "gateway_journal_compactions")
        self._journal_bytes_reclaimed = self.registry.counter(
            "gateway_journal_bytes_reclaimed")
        self._last_checkpoint_at: Dict[str, float] = {}
        #: WAL-shipping read replicas: N followers replaying the durable
        #: peers' WALs continuously, a router fanning ``ReadViewRequest``s
        #: across them at bounded measured staleness, writes staying on the
        #: primary.  ``replication.replicas == 0`` (the default) keeps the
        #: single-writer behaviour byte-identical.
        replication = system.config.replication
        self.shipper: Optional[SegmentShipper] = None
        self.replica_router: Optional[ReplicaRouter] = None
        self._replica_reads_served = self.registry.counter("gateway_replica_reads")
        if replication.replicas > 0:
            if system.config.durability.state_dir is None:
                raise GatewayError(
                    "read replicas require durable peers: set "
                    "durability.state_dir (replicas bootstrap from the "
                    "checkpoint manifest and replay shipped WAL segments)")
            self.shipper = SegmentShipper(
                system, clock, ship_interval=replication.ship_interval,
                tracer=self.tracer, registry=self.registry)
            system.coordinator.subscribe_shared_diff(self.shipper.on_shared_diff)

            def _view_name_for(peer: str, metadata_id: str) -> str:
                return system.peer(peer).agreement(metadata_id).view_name_for(peer)

            for index in range(replication.replicas):
                replica_cache = ViewCache(enabled=cache_enabled)
                replica_cache.tracer = self.tracer
                self.shipper.attach(ReadReplica(
                    f"replica-{index}", clock, _view_name_for,
                    read_service_time=replication.read_service_time,
                    tracer=self.tracer,
                    cache=replica_cache if replication.prewarm_cache else None))
            self.replica_router = ReplicaRouter(
                self.shipper, clock, max_lag=replication.max_lag,
                registry=self.registry)
        self._register_gauges()

    def _wire_journal_chaos(self) -> None:
        """Give the response journal the system's fault injector and retry
        policy (no-op unless chaos was attached before the gateway was
        built), so ``wal.append``/``wal.fsync`` faults reach the journal's
        WAL exactly like the peer WALs — and are survived the same way."""
        injector = self.system.injector
        if injector is NULL_INJECTOR:
            return
        backend = self.journal.backend
        backend.injector = injector
        backend.fault_target = "journal"
        if self.system.retry_policy is not None:
            backend.retrier = Retrier(
                self.system.retry_policy, self.system.simulator.clock,
                seed=injector.seed + 307, name="wal:journal",
                tracer=self.tracer, registry=self.registry)

    def _register_gauges(self) -> None:
        """Expose live serving state through the unified registry."""
        reg = self.registry
        reg.gauge("gateway_queue_depth", fn=lambda: self.scheduler.queue_depth)
        reg.gauge("gateway_enqueued_total",
                  fn=lambda: self.scheduler.enqueued_total)
        reg.gauge("gateway_outstanding_writes",
                  fn=lambda: self._outstanding.value)
        reg.gauge("gateway_outstanding_writes_peak",
                  fn=lambda: self._outstanding.peak)
        reg.gauge("gateway_commits_in_flight",
                  fn=lambda: self._commits_in_flight.value)
        reg.gauge("gateway_commits_in_flight_peak",
                  fn=lambda: self._commits_in_flight.peak)
        reg.gauge("gateway_sessions_open", fn=lambda: len(self._sessions))
        reg.gauge("gateway_batches_committed", fn=lambda: len(self.batch_sizes))
        reg.gauge("gateway_folded_writes",
                  fn=lambda: self.scheduler.folded_writes_total)
        reg.gauge("gateway_fold_rounds_saved",
                  fn=lambda: self.scheduler.fold_rounds_saved)
        self.cache.register_metrics(reg)
        if self.journal is not None:
            backend = self.journal.backend
            reg.gauge("journal_wal_bytes", fn=backend.wal_bytes)
            reg.gauge("journal_appends", fn=lambda: backend.appends)
            reg.gauge("journal_syncs", fn=lambda: backend.syncs)

    # Compatibility views over the registry counters: external readers (and
    # the metrics() tree) keep their familiar integer attributes.

    @property
    def batch_blocks(self) -> int:
        return self._batch_blocks.value

    @property
    def batch_consensus_rounds(self) -> int:
        return self._batch_consensus_rounds.value

    @property
    def writes_committed(self) -> int:
        return self._writes_committed.value

    @property
    def writes_rejected(self) -> int:
        return self._writes_rejected.value

    @property
    def shed_requests(self) -> int:
        return self._shed_requests.value

    @property
    def admitted_during_commit(self) -> int:
        return self._admitted_during_commit.value

    @property
    def degraded_reads_served(self) -> int:
        return self._degraded_reads_served.value

    @property
    def responses_evicted(self) -> int:
        return self._responses_evicted.value

    @property
    def responses_journaled(self) -> int:
        return self._responses_journaled.value

    # ---------------------------------------------------------------- sessions

    def open_session(self, peer_name: str, rate: Optional[float] = None,
                     burst: Optional[float] = None) -> GatewaySession:
        """Authenticate ``peer_name`` and open a rate-limited session."""
        with self._lock:
            session = GatewaySession(
                self.system, peer_name,
                rate=self.default_rate if rate is None else rate,
                burst=self.default_burst if burst is None else burst,
            )
            self._sessions[session.session_id] = session
            return session

    def close_session(self, session: GatewaySession) -> None:
        with self._lock:
            session.close()
            self._sessions.pop(session.session_id, None)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # --------------------------------------------------------------- listeners

    def subscribe_terminal(self, listener: Callable[[GatewayResponse], None]) -> None:
        """Register a callback fired whenever a response turns terminal.

        Listeners may run under the admission lock and on whichever thread
        finalised the response (an executor thread for batch commits): they
        must be cheap, thread-safe, and must not call back into the gateway.
        The async transport resolves its response futures through this hook;
        the worker pool's ``join_idle`` waits on it instead of sleeping.
        """
        with self._lock:
            self._terminal_listeners.append(listener)

    def subscribe_enqueue(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the queue depth after every write
        is enqueued (same constraints as :meth:`subscribe_terminal`).  Used
        to wake idle drainers without sleep-polling."""
        with self._lock:
            self._enqueue_listeners.append(listener)

    # ------------------------------------------------------------------ submit

    def _new_response(self, session: GatewaySession, request: GatewayRequest,
                      status: str, **fields) -> GatewayResponse:
        now = self.system.simulator.clock.now()
        response = GatewayResponse(
            request_id=f"req-{next(self._request_ids)}",
            tenant=session.peer_name,
            kind=request.kind,
            status=status,
            enqueued_at=now,
            completed_at=now,
            **fields,
        )
        self._responses[response.request_id] = response
        self._kind_counts[request.kind] = self._kind_counts.get(request.kind, 0) + 1
        if (self.max_responses is not None
                and len(self._responses) > self.max_responses):
            self._evict_responses_locked()
        return response

    def _evict_responses_locked(self) -> None:
        """Drop the oldest evictable responses until the cap is respected.

        Only *terminal* responses are evictable (queued ones are still owned
        by the scheduler), and with a journal attached only ones already
        journaled — an evicted id then stays answerable via
        :meth:`get_response`'s WAL fallback.  Without a journal the cap is a
        plain memory bound: evicted ids return None.
        """
        excess = len(self._responses) - self.max_responses
        if excess <= 0:
            return
        evicted = []
        for request_id, response in self._responses.items():
            if len(evicted) >= excess:
                break
            if not response.terminal:
                continue
            if self.journal is not None and request_id not in self._journaled_ids:
                continue
            evicted.append(request_id)
        for request_id in evicted:
            del self._responses[request_id]
            self._journaled_ids.discard(request_id)
        if evicted:
            self._responses_evicted.inc(len(evicted))

    def _finalize(self, response: GatewayResponse, session: Optional[GatewaySession],
                  status: str) -> GatewayResponse:
        with self._lock:
            response.status = status
            response.completed_at = self.system.simulator.clock.now()
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            if session is not None:
                session.count(status)
            if status in (STATUS_OK, STATUS_REJECTED, STATUS_ERROR):
                collector = self._latency_by_tenant.get(response.tenant)
                if collector is None:
                    collector = LatencyCollector()
                    self._latency_by_tenant[response.tenant] = collector
                    self.registry.histogram("gateway_request_latency",
                                            collector=collector,
                                            tenant=response.tenant)
                collector.record_value(response.latency)
            listeners = tuple(self._terminal_listeners)
        # Journal happens-before the terminal listeners (matching the lock
        # order of the async transport): by the time anything a listener
        # wakes runs, the response is appended to the WAL — durable
        # immediately under the ``always`` policy, at the next commit
        # boundary (``journal.sync()`` in commit_once / flush_journal) under
        # ``batch``.  The append is outside the admission lock so an
        # fsync-per-append policy never stalls admission.
        if self.journal is not None:
            self.journal.record(response)
            self._responses_journaled.inc()
            with self._lock:
                self._journaled_ids.add(response.request_id)
        for listener in listeners:
            listener(response)
        return response

    def submit(self, session: GatewaySession, request: GatewayRequest) -> GatewayResponse:
        """Serve a read immediately; queue a write for the next batch.

        The returned response object is *live*: for queued writes its status
        flips to a terminal one when the batch containing the write commits.
        """
        response, read_pending = self._admit(session, request)
        if read_pending:
            return self._serve_read(session, request, response)
        return response

    def _admit(self, session: GatewaySession,
               request: GatewayRequest) -> "tuple[GatewayResponse, bool]":
        """Admission control under the state lock only (never blocks on an
        in-flight commit): rate limit, authorisation, load shedding, then
        either enqueue the write or hand the read back for serving.

        Returns ``(response, read_pending)``; when ``read_pending`` is true
        the caller must still run :meth:`_serve_read` (outside the lock).
        The async transport calls this directly so admission never blocks
        the event loop behind a mining commit.
        """
        # Admission-time terminal statuses are finalized *after* the lock
        # block: _finalize journals to the durable WAL (an fsync under the
        # 'always' policy), which must never run inside the admission
        # critical section — _lock is re-entrant, so calling _finalize here
        # would hold it across the disk write.
        terminal_status = None
        with self.tracer.span("gateway.admit", kind=request.kind,
                              tenant=session.peer_name) as span:
            with self._lock:
                response = self._new_response(session, request, STATUS_QUEUED)
                # The response's request id doubles as the trace id linking
                # every span this request produces across the pipeline.
                request.assign_trace_id(response.request_id)
                response.trace_id = response.request_id
                span.set_trace_id(response.request_id)
                span.annotate(request_id=response.request_id)
                if self._commits_in_flight.value > 0:
                    self._admitted_during_commit.inc()
                if not session.try_admit():
                    response.error = (
                        f"tenant {session.peer_name!r} exceeded its request rate; retry later"
                    )
                    terminal_status = STATUS_THROTTLED
                else:
                    try:
                        session.authorize(request)
                    except SessionError as exc:
                        response.error = str(exc)
                        terminal_status = STATUS_REJECTED
                if terminal_status is None:
                    if not request.is_write:
                        return response, True
                    shed = self._shed_reason_locked(session.peer_name, request)
                    if shed is not None:
                        reason, detail = shed
                        self._shed_requests.inc()
                        self._shed_by_reason[reason].inc()
                        span.annotate(shed_reason=reason)
                        response.error = f"{detail}; request shed — retry later"
                        terminal_status = STATUS_SHED
                    else:
                        self.scheduler.enqueue(PendingWrite(
                            request_id=response.request_id,
                            tenant=session.peer_name,
                            peer=session.peer_name,
                            request=request,
                            enqueued_at=response.enqueued_at,
                            session=session,
                        ))
                        self._outstanding.increment()
                        session.count(STATUS_QUEUED)
                        depth = self.scheduler.queue_depth
                        listeners = tuple(self._enqueue_listeners)
            if terminal_status is not None:
                span.annotate(status=terminal_status)
                self._finalize(response, session, terminal_status)
                return response, False
        for listener in listeners:
            listener(depth)
        return response, False

    def _shed_reason_locked(self, tenant: str,
                            request: GatewayRequest) -> Optional[Tuple[str, str]]:
        """Why this write must be shed, as ``(reason, detail)`` — or None to
        admit.  Checked under the admission lock, cheapest-first:

        1. an open circuit breaker on the commit path, this tenant, or the
           write's consensus lane (a half-open breaker admits its probes);
        2. queue capacity (the PR 4 depth bound);
        3. the commit-latency target — windowed p99 over target, or the
           predicted queueing delay at the current depth over target;
        4. fair queueing — this tenant already holds its fair share of a
           bounded queue.
        """
        lane = self.system.simulator.router.shard_of(request.metadata_id)
        for name in ("commit", f"tenant:{tenant}", f"lane:{lane}"):
            # peek, not get: breakers materialise on first outcome record,
            # and a breaker that never saw traffic cannot reject anything.
            breaker = self.breakers.peek(name)
            if breaker is not None and not breaker.allow():
                return ("breaker",
                        f"circuit breaker {name!r} is {breaker.state} after "
                        f"repeated commit failures")
        if self.scheduler.at_capacity:
            return ("capacity", f"gateway write queue is at capacity "
                    f"({self.scheduler.queue_capacity})")
        decision = self.shedder.decision(self.scheduler.queue_depth)
        if decision is not None:
            return ("latency", decision)
        if self.fair_queueing:
            fair = fair_share_exceeded(self.scheduler, tenant)
            if fair is not None:
                return ("fair_share", fair)
        return None

    def _load_view(self, peer_name: str, metadata_id: str):
        """Materialise a shared view for the cache, serialised with commits.

        A read-through load must not observe a half-installed batch, so it
        waits for any in-flight commit; cache *hits* stay lock-free against
        commits (the diff hook patches entries atomically under the cache
        lock).
        """
        with self._commit_lock:
            return self.system.coordinator.read_shared_data(peer_name, metadata_id)

    def _on_shared_diff(self, metadata_id: str, operation: str,
                        peers: Tuple[str, ...], diff=None) -> None:
        """The coordinator's diff listener: patch cached views in place,
        then pre-warm the views the commit touched but no reader has pulled
        yet, so a fresh commit is immediately servable without a
        read-through miss.

        Fires from inside the commit (possibly on a cascade executor thread
        under parallel cascades), so the pre-warm load reads the
        just-committed table directly — it must NOT take ``_commit_lock``,
        which the committing thread already holds.  A failed commit carries
        no diff; nothing half-installed is ever pre-warmed.
        """
        self.cache.on_shared_diff(metadata_id, operation, peers, diff)
        if (not self.prewarm_cache or not self.cache.enabled
                or diff is None or diff.is_empty):
            return
        for peer in peers:
            if self.cache.peek(peer, metadata_id) is not None:
                continue  # present entries were just patched in place
            try:
                view = self.system.coordinator.read_shared_data(peer, metadata_id)
            except ReproError:
                continue
            self.cache.prewarm(peer, metadata_id, view)

    def _serve_read(self, session: GatewaySession, request: GatewayRequest,
                    response: GatewayResponse) -> GatewayResponse:
        with self.tracer.span("gateway.read", trace_id=response.trace_id,
                              kind=request.kind, tenant=session.peer_name) as span:
            try:
                if isinstance(request, ReadViewRequest):
                    # Replica fan-out first: a follower within its staleness
                    # bound serves the read without touching the primary's
                    # locks at all; writes (and replica-ineligible reads)
                    # stay on the primary.
                    if self.replica_router is not None:
                        routed = self.replica_router.route(session.peer_name,
                                                           request.metadata_id)
                        if routed is not None:
                            span.annotate(replica=routed.replica,
                                          staleness=routed.staleness)
                            self._replica_reads_served.inc()
                            response.payload = {
                                "metadata_id": request.metadata_id,
                                "rows": len(routed.view),
                                "table": routed.view.to_dict(),
                                "replica": routed.replica,
                                "staleness": routed.staleness,
                                "latency": routed.latency,
                            }
                            return self._finalize(response, session, STATUS_OK)
                    stale = self._degraded_view(session.peer_name,
                                                request.metadata_id)
                    if stale is not None:
                        view, age = stale
                        span.annotate(degraded=True, staleness=age)
                        response.payload = {
                            "metadata_id": request.metadata_id,
                            "rows": len(view), "table": view.to_dict(),
                            "degraded": True, "staleness": age,
                        }
                        self._degraded_reads_served.inc()
                        return self._finalize(response, session, STATUS_OK)
                    view = self.cache.get(
                        session.peer_name, request.metadata_id,
                        lambda: self._load_view(session.peer_name,
                                                request.metadata_id),
                    )
                    response.payload = {"metadata_id": request.metadata_id,
                                        "rows": len(view), "table": view.to_dict()}
                elif isinstance(request, AuditQueryRequest):
                    with self._commit_lock:
                        trail = self.system.audit_trail(via_peer=session.peer_name)
                        records = trail.records(request.metadata_id)
                    response.payload = {"count": len(records),
                                        "records": [record.to_dict()
                                                    for record in records]}
                else:
                    raise SharingError(f"cannot serve request kind {request.kind!r}")
            except SharingError as exc:
                response.error = str(exc)
                return self._finalize(response, session, STATUS_REJECTED)
            return self._finalize(response, session, STATUS_OK)

    def commit_path_unhealthy(self) -> bool:
        """Whether the commit path is currently degraded: the ``commit``
        breaker is not closed, or the windowed p99 is over target."""
        commit = self.breakers.peek("commit")
        if commit is not None and commit.state != STATE_CLOSED:
            return True
        return not self.shedder.healthy

    def _degraded_view(self, peer: str,
                       metadata_id: str) -> Optional[Tuple]:
        """A ``(view, age)`` pair for the degraded-read path, or None to take
        the normal read-through path.

        Degraded reads (when enabled) serve straight from the cache while
        the commit path is unhealthy — never touching the commit lock a
        failing or crawling batch may be holding — and mark the response
        with its bounded staleness.  A missing or over-age entry falls back
        to the normal path rather than failing the read.
        """
        if not self.degraded_reads or not self.commit_path_unhealthy():
            return None
        entry = self.cache.peek_entry(peer, metadata_id)
        if entry is None:
            return None
        view, age = entry
        if age is None or age > self.max_staleness:
            # An unmeasurable age (entry installed before a clock was
            # attached) is *unknown*, not zero: it must fail the bounded-
            # staleness cutoff, never pass it.
            return None
        return view, age

    def result(self, request_id: str) -> Optional[GatewayResponse]:
        """Look up the (possibly still queued) response for a request id.

        Alias of :meth:`get_response` — evicted and pre-restart ids are
        answered from the durable journal, not silently forgotten.
        """
        return self.get_response(request_id)

    def get_response(self, request_id: str) -> Optional[GatewayResponse]:
        """The response for a request id, falling back to the durable journal.

        In-memory responses (including still-queued ones) win; a miss — an
        evicted response, or a lookup on a gateway freshly recovered from
        ``state_dir`` — is answered from the on-disk WAL when one is
        attached.  Returns None only when the id was never journaled.
        """
        response = self._responses.get(request_id)
        if response is not None:
            return response
        if self.journal is not None:
            return self.journal.lookup(request_id)
        return None

    # ----------------------------------------------------------------- commits

    @property
    def queue_depth(self) -> int:
        return self.scheduler.queue_depth

    @property
    def outstanding_writes(self) -> int:
        """Writes accepted but not yet resolved by a batch commit."""
        return self._outstanding.value

    @property
    def commits_in_flight(self) -> int:
        """Batch commits currently running their consensus rounds (0 or 1)."""
        return self._commits_in_flight.value

    def commit_once(self, trigger: Optional[str] = None,
                    shard: Optional[int] = None) -> Optional[BatchCommitResult]:
        """Plan and commit one batch; None when the queue is empty.

        A failure inside the commit never strands queued responses: every
        member of the batch reaches a terminal status either way.

        The commit lock (not the admission lock) is held across the
        consensus rounds, so new requests keep being admitted — and queued
        for the *next* batch — while this one is mining.

        ``trigger`` labels the commit's trace span with what sealed the
        batch (the async pump's depth/deadline/idle/flush, or "worker").

        ``shard`` makes the commit *lane-pure*: only writes whose table
        routes to that consensus shard are planned (per-shard pumps each
        drive their own lane; writes for other lanes stay queued for their
        own pump).  Commits still serialise on the commit lock — the
        chain's block sequence is global — but each lane plans, seals and
        reports independently; ``metrics()["transport"]["pumps"]`` shows
        the per-lane pump activity.
        """
        pump_key = "all" if shard is None else str(shard)
        router = self.system.simulator.router if shard is not None else None
        with self._commit_lock:
            with self.tracer.span("gateway.commit") as span:
                if trigger is not None:
                    span.annotate(trigger=trigger)
                if shard is not None:
                    span.annotate(shard=shard)
                with self._lock:
                    with self.tracer.span("scheduler.plan") as plan_span:
                        plan = self.scheduler.plan(shard=shard, router=router)
                        plan_span.annotate(groups=len(plan.groups),
                                           size=plan.size)
                    pump = self._pump_stats.setdefault(pump_key, {
                        "commits": 0, "writes": 0, "empty_plans": 0,
                        "deferred": 0, "triggers": {}})
                    if trigger is not None:
                        pump["triggers"][trigger] = (
                            pump["triggers"].get(trigger, 0) + 1)
                    if plan.is_empty:
                        pump["empty_plans"] += 1
                        span.annotate(empty=True)
                        return None
                    pump["commits"] += 1
                    pump["writes"] += plan.size
                    pump["deferred"] += plan.deferred
                    self._commits_in_flight.increment()
                    # Batches get their own trace id; the member request ids
                    # stitch each write's admission trace to the batch's
                    # consensus/delta/WAL spans.
                    batch_id = f"batch-{next(self._batch_ids)}"
                    span.set_trace_id(batch_id)
                    span.annotate(batch=batch_id, requests=[
                        pending.request_id for members in plan.members
                        for pending in members])
                commit_started = self.system.simulator.clock.now()
                try:
                    result = self.system.coordinator.commit_entry_batch(plan.groups)
                except ReproError as exc:
                    with self._lock:
                        self._resolve_all_failed(plan, str(exc))
                    raise
                finally:
                    self._commits_in_flight.decrement()
                with self._lock:
                    # Feed the shedder's service-time estimator with this
                    # batch's simulated commit cost per write — the signal
                    # behind its predicted-queueing-delay decision.
                    self.shedder.record_service(
                        self.system.simulator.clock.now() - commit_started,
                        plan.size)
                    self.batch_sizes.append(plan.size)
                    self._batch_blocks.inc(result.blocks_created)
                    self._batch_consensus_rounds.inc(result.consensus_rounds)
                    self._resolve(plan, result)
                # The batched fsync policy's commit boundary: one sync makes
                # the whole batch's terminal responses durable.
                if self.journal is not None:
                    self.journal.sync()
                self._run_durability_maintenance()
                # Ship the batch's WAL tail to the replica fleet (throttled
                # by ship_interval — skipped shipments are what replica
                # staleness measures).  After maintenance: a checkpoint that
                # truncated segments is visible to the shipper's covering
                # check before it reads the tail.
                if self.shipper is not None:
                    self.replica_router.record_commit(
                        self.system.simulator.clock.now())
                    self.shipper.ship()
                return result

    def _run_durability_maintenance(self) -> None:
        """Checkpoint durable peer databases and compact the response journal
        when their triggers fire (see :class:`~repro.config.DurabilityConfig`).

        Runs inline at every commit boundary under the commit lock, so
        maintenance is deterministic against the simulated clock: a peer is
        checkpointed when its WAL outgrew ``checkpoint_wal_bytes`` or at the
        first boundary at least ``checkpoint_interval`` simulated seconds
        after its previous checkpoint; the journal is folded to the latest
        response per request id (the newest ``max_responses`` under a
        retention cap) when it outgrew ``journal_compact_bytes``.
        """
        durability = self.system.config.durability
        if durability.state_dir is not None and (
                self.checkpoint_wal_bytes is not None
                or self.checkpoint_interval is not None):
            now = self.system.simulator.clock.now()
            for name in self.system.peer_names:
                database = self.system.peer(name).database
                if not database.wal.durable:
                    continue
                backend = database.wal.backend
                last = self._last_checkpoint_at.setdefault(name, now)
                due_bytes = (self.checkpoint_wal_bytes is not None
                             and backend.wal_bytes() > self.checkpoint_wal_bytes)
                due_time = (self.checkpoint_interval is not None
                            and now - last >= self.checkpoint_interval)
                if not (due_bytes or due_time):
                    continue
                peer_dir = pathlib.Path(durability.state_dir) / "peers" / name
                with self.tracer.span(
                        "durability.checkpoint", peer=name,
                        trigger="wal_bytes" if due_bytes else "interval") as span:
                    result = checkpoint_database(database, peer_dir)
                    span.annotate(sequence=result.checkpoint_sequence,
                                  segments_removed=result.segments_removed)
                self._checkpoints.inc()
                self._checkpoint_segments_removed.inc(result.segments_removed)
                self._last_checkpoint_at[name] = now
        if (self.journal is not None
                and self.journal_compact_bytes is not None
                and self.journal.backend.wal_bytes() > self.journal_compact_bytes):
            with self.tracer.span("durability.compact_journal") as span:
                stats = self.journal.compact(keep=self.max_responses)
                span.annotate(**stats)
            self._journal_compactions.inc()
            self._journal_bytes_reclaimed.inc(stats["bytes_reclaimed"])

    def drain(self, max_batches: int = 1_000) -> int:
        """Commit batches until the write queue is empty; returns batch count."""
        committed = 0
        while committed < max_batches:
            if self.commit_once() is None:
                break
            committed += 1
        self.flush_journal()
        # Quiesce the fleet: an unconditional final shipment converges every
        # replica to the primary's exact state (the fingerprint oracle).
        if self.shipper is not None:
            self.shipper.ship(force=True)
        return committed

    def flush_journal(self) -> None:
        """Force journaled responses to stable storage (a commit boundary for
        terminal responses finalised outside a batch, e.g. reads and sheds)."""
        if self.journal is not None:
            self.journal.sync()

    def close(self) -> None:
        """Flush and close the durable journal (no-op without ``state_dir``)."""
        if self.journal is not None:
            self.journal.sync()
            self.journal.close()

    def _record_commit_outcome(self, plan: BatchPlan, ok: bool) -> None:
        """Feed one batch's fate to the commit-path circuit breakers.

        Contract-level rejections count as *successes* here: the
        infrastructure committed the batch and produced a verdict; only
        commit blow-ups (every member ``STATUS_ERROR``) open breakers.
        """
        router = self.system.simulator.router
        self.breakers.record("commit", ok)
        for tenant in sorted({pending.tenant for members in plan.members
                              for pending in members}):
            self.breakers.record(f"tenant:{tenant}", ok)
        for lane in sorted({router.shard_of(group.metadata_id)
                            for group in plan.groups}):
            self.breakers.record(f"lane:{lane}", ok)

    def _resolve(self, plan: BatchPlan, result: BatchCommitResult) -> None:
        self._record_commit_outcome(plan, ok=True)
        for index, (trace, members) in enumerate(zip(result.traces, plan.members)):
            group_status = STATUS_OK if trace.succeeded else STATUS_REJECTED
            edit_errors = (result.edit_errors[index]
                           if index < len(result.edit_errors) else [])
            payload = {
                "operation": trace.operation,
                "metadata_id": trace.metadata_id,
                "batched_with": len(members) - 1,
                "cascaded_metadata_ids": list(trace.cascaded_metadata_ids),
                "trace": trace.to_dict(),
            }
            for position, pending in enumerate(members):
                response = self._responses[pending.request_id]
                response.payload = payload
                edit_error = edit_errors[position] if position < len(edit_errors) else None
                if edit_error is not None:
                    # This member's edit was invalid on its own; the rest of
                    # the group committed (or failed) without it.
                    status = STATUS_REJECTED
                    response.error = edit_error
                else:
                    status = group_status
                    if trace.error:
                        response.error = trace.error
                # Gauge before listeners: anything woken by the terminal
                # hook (the async drain, join_idle) must already observe the
                # decremented outstanding count or it can re-sleep forever.
                self._outstanding.decrement()
                self._finalize(response, pending.session, status)
                if status == STATUS_OK:
                    self._writes_committed.inc()
                    self.shedder.record_latency(response.latency)
                else:
                    self._writes_rejected.inc()
        # Defensive coherence: successful groups were already patched row by
        # row through the coordinator's diff listener, so only the tables a
        # *failed* group may have half-touched are dropped wholesale.
        for trace in result.traces:
            if trace.succeeded:
                continue
            self.cache.invalidate(trace.metadata_id)
            for cascaded in trace.cascaded_metadata_ids:
                self.cache.invalidate(cascaded)

    def _resolve_all_failed(self, plan: BatchPlan, error: str) -> None:
        """Terminal-fail every member of a batch whose commit blew up."""
        self._record_commit_outcome(plan, ok=False)
        for members in plan.members:
            for pending in members:
                response = self._responses[pending.request_id]
                response.error = error
                self._outstanding.decrement()  # gauge before terminal listeners
                self._finalize(response, pending.session, STATUS_ERROR)
                self._writes_rejected.inc()
        for group in plan.groups:
            self.cache.invalidate(group.metadata_id)

    # ----------------------------------------------------------------- metrics

    def metrics(self) -> Dict[str, object]:
        """Gateway-level serving metrics (all times in simulated seconds)."""
        with self._lock:
            batches = len(self.batch_sizes)
            tenants = {
                tenant: {
                    "count": collector.count,
                    "mean": collector.mean,
                    "p95": collector.p95,
                    "p99": collector.p99,
                }
                for tenant, collector in sorted(self._latency_by_tenant.items())
            }
            return {
                "requests": {
                    "total": sum(self._kind_counts.values()),
                    "by_kind": dict(sorted(self._kind_counts.items())),
                    "by_status": dict(sorted(self._status_counts.items())),
                },
                "queue": {
                    "depth": self.scheduler.queue_depth,
                    "max_depth": self.scheduler.max_queue_depth,
                    "enqueued_total": self.scheduler.enqueued_total,
                    "outstanding_writes": self._outstanding.value,
                    "capacity": self.scheduler.queue_capacity,
                    "shed_requests": self.shed_requests,
                },
                "transport": {
                    "commits_in_flight": self._commits_in_flight.value,
                    "commits_in_flight_peak": self._commits_in_flight.peak,
                    "admitted_during_commit": self.admitted_during_commit,
                    "outstanding_writes_peak": self._outstanding.peak,
                    "pumps": {key: {**stats,
                                    "triggers": dict(sorted(
                                        stats["triggers"].items()))}
                              for key, stats in sorted(self._pump_stats.items())},
                },
                "batches": {
                    "committed": batches,
                    "writes_committed": self.writes_committed,
                    "writes_rejected": self.writes_rejected,
                    "mean_size": (sum(self.batch_sizes) / batches) if batches else 0.0,
                    "max_size": max(self.batch_sizes) if self.batch_sizes else 0,
                    "consensus_rounds": self.batch_consensus_rounds,
                    "blocks_created": self.batch_blocks,
                    "folded_writes": self.scheduler.folded_writes_total,
                    "fold_rounds_saved": self.scheduler.fold_rounds_saved,
                },
                "shards": self._shard_metrics(),
                "resilience": {
                    "latency_target": self.latency_target,
                    "shedder": self.shedder.statistics(),
                    "breakers": self.breakers.statistics(),
                    "fair_queueing": self.fair_queueing,
                    "queued_by_tenant": self.scheduler.queued_by_tenant(),
                    "shed_by_reason": {
                        reason: counter.value
                        for reason, counter in sorted(self._shed_by_reason.items())},
                    "degraded_reads_enabled": self.degraded_reads,
                    "degraded_reads_served": self.degraded_reads_served,
                    "chaos_events": len(self.system.injector.events),
                },
                "cache": self.cache.statistics(),
                "replication": self._replication_metrics(),
                "durability": self._durability_metrics(),
                "tenants": tenants,
                "sessions_open": len(self._sessions),
            }

    def _replication_metrics(self) -> Dict[str, object]:
        """Replica-fleet health: shipments, per-replica lag, routed reads."""
        if self.replica_router is None:
            return {"enabled": False,
                    "prewarm_cache": self.prewarm_cache,
                    "cache_prewarms": self.cache.prewarms}
        metrics = {"enabled": True,
                   "prewarm_cache": self.prewarm_cache,
                   "cache_prewarms": self.cache.prewarms,
                   "reads_served": self._replica_reads_served.value}
        metrics.update(self.replica_router.statistics())
        return metrics

    def _durability_metrics(self) -> Dict[str, object]:
        """Response-journal health: WAL bytes, journaled/evicted counts,
        recovery cost of the last restart."""
        metrics: Dict[str, object] = {
            "enabled": self.journal is not None,
            "responses_in_memory": len(self._responses),
            "responses_evicted": self.responses_evicted,
            "max_responses": self.max_responses,
            "checkpoints": self._checkpoints.value,
            "checkpoint_segments_removed": self._checkpoint_segments_removed.value,
            "journal_compactions": self._journal_compactions.value,
            "journal_bytes_reclaimed": self._journal_bytes_reclaimed.value,
        }
        if self.journal is not None:
            journal = self.journal.statistics()
            metrics.update({
                "state_dir": str(self.state_dir),
                "fsync_policy": self.fsync_policy,
                "responses_journaled": self.responses_journaled,
                "wal_bytes": journal["wal_bytes"],
                "wal_segments": journal["segments"],
                "journal_syncs": journal["syncs"],
                "recovered_responses": journal["recovered_responses"],
                "recovery_seconds": journal["recovery_seconds"],
            })
        return metrics

    def _shard_metrics(self) -> Dict[str, object]:
        """Per-consensus-shard serving metrics: scheduler queue depth by
        shard, the miner node's mempool shard depths and lane production
        counters (single-entry when the pipeline is unsharded)."""
        router = self.system.simulator.router
        metrics: Dict[str, object] = {
            "count": router.num_shards,
            "queue_depth": self.scheduler.queue_depth_by_shard(router),
        }
        for node in self.system.simulator.nodes:
            if node.miner is None:
                continue
            depths = getattr(node.mempool, "shard_depths", None)
            metrics["mempool_depth"] = (list(depths()) if depths is not None
                                        else [len(node.mempool)])
            lanes = node.miner.lane_statistics()
            if lanes is not None:
                metrics["lanes"] = lanes
            break
        return metrics
