"""The gateway facade: sessions in front, batched ledger commits behind.

:class:`SharingGateway` is the serving layer of the reproduction.  Tenants
open sessions, submit typed requests and get typed responses; behind the
facade the gateway

* serves reads through the invalidation-correct :class:`ViewCache`;
* queues writes into the :class:`WriteScheduler`, which folds compatible
  updates into :class:`~repro.core.workflow.BatchGroup`'s;
* commits each planned batch through
  :meth:`~repro.core.workflow.UpdateCoordinator.commit_entry_batch`, i.e. one
  consensus round for all requests and one for all acknowledgements;
* sheds writes with a typed ``shed`` response when the queue is at capacity
  (``max_queue_depth`` admission control);
* tracks serving metrics: queue depth, batch sizes, cache hit rate,
  interleaving (requests admitted while a commit round was in flight) and
  per-tenant latency percentiles.

All methods are thread-safe.  Two locks split the serving path so admission
can overlap a commit round:

* ``_lock`` guards admission state (sessions, responses, counters, the write
  queue) and is only held for quick bookkeeping;
* ``_commit_lock`` serialises batch commits and read-through view loads; it
  is held across the consensus rounds, during which ``_lock`` is *released*
  — so new arrivals are admitted (and reads served from cache) while a batch
  is mining.

Lock order is always ``_commit_lock`` → ``_lock`` (or either alone); the
cache lock is never held while acquiring either (see
:meth:`ViewCache.get`'s generation guard).  The worker pool in
:mod:`repro.gateway.worker` and the asyncio transport in
:mod:`repro.gateway.aio` both drain the same queue through
:meth:`commit_once`.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Dict, List, Optional

from repro.core.system import MedicalDataSharingSystem
from repro.core.workflow import BatchCommitResult
from repro.errors import ReproError, SessionError, SharingError
from repro.gateway.cache import ViewCache
from repro.gateway.requests import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_THROTTLED,
    AuditQueryRequest,
    GatewayRequest,
    GatewayResponse,
    ReadViewRequest,
)
from repro.gateway.scheduler import BatchPlan, PendingWrite, WriteScheduler
from repro.gateway.session import GatewaySession
from repro.metrics.collectors import LatencyCollector, PeakGauge


class SharingGateway:
    """Concurrent multi-tenant request-serving layer over one sharing system."""

    def __init__(self, system: MedicalDataSharingSystem,
                 max_batch_size: int = 16, max_edits_per_group: int = 8,
                 cache_enabled: bool = True,
                 default_rate: float = 0.0, default_burst: float = 8.0,
                 fold_cross_peer: bool = True,
                 max_queue_depth: Optional[int] = None):
        self.system = system
        self.scheduler = WriteScheduler(max_batch_size=max_batch_size,
                                        max_edits_per_group=max_edits_per_group,
                                        fold_cross_peer=fold_cross_peer,
                                        max_queue_depth=max_queue_depth)
        self.cache = ViewCache(enabled=cache_enabled)
        # The diff-aware hook patches cached views row by row when the
        # coordinator hands over the change's TableDiff, and drops them only
        # when it cannot (half-installed failures).
        system.coordinator.subscribe_shared_diff(self.cache.on_shared_diff)
        self.default_rate = default_rate
        self.default_burst = default_burst
        self._sessions: Dict[str, GatewaySession] = {}
        self._responses: Dict[str, GatewayResponse] = {}
        self._latency_by_tenant: Dict[str, LatencyCollector] = {}
        self._status_counts: Dict[str, int] = {}
        self._kind_counts: Dict[str, int] = {}
        self._request_ids = itertools.count(1)
        self._outstanding = PeakGauge()
        self.batch_sizes: List[int] = []
        self.batch_blocks = 0
        self.batch_consensus_rounds = 0
        self.writes_committed = 0
        self.writes_rejected = 0
        self.shed_requests = 0
        #: Requests (reads and writes) admitted while a batch commit's
        #: consensus rounds were in flight — the open-loop interleaving the
        #: async transport exists to produce.
        self.admitted_during_commit = 0
        self._commits_in_flight = PeakGauge()
        #: Callbacks fired when a response reaches a terminal status, and
        #: when a write is enqueued.  Listeners run under the admission lock:
        #: they must be cheap, thread-safe and must not call back into the
        #: gateway (the async transport resolves futures, the worker pool
        #: wakes idle workers).
        self._terminal_listeners: List[Callable[[GatewayResponse], None]] = []
        self._enqueue_listeners: List[Callable[[int], None]] = []
        self._lock = threading.RLock()
        self._commit_lock = threading.RLock()

    # ---------------------------------------------------------------- sessions

    def open_session(self, peer_name: str, rate: Optional[float] = None,
                     burst: Optional[float] = None) -> GatewaySession:
        """Authenticate ``peer_name`` and open a rate-limited session."""
        with self._lock:
            session = GatewaySession(
                self.system, peer_name,
                rate=self.default_rate if rate is None else rate,
                burst=self.default_burst if burst is None else burst,
            )
            self._sessions[session.session_id] = session
            return session

    def close_session(self, session: GatewaySession) -> None:
        with self._lock:
            session.close()
            self._sessions.pop(session.session_id, None)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # --------------------------------------------------------------- listeners

    def subscribe_terminal(self, listener: Callable[[GatewayResponse], None]) -> None:
        """Register a callback fired whenever a response turns terminal.

        Listeners may run under the admission lock and on whichever thread
        finalised the response (an executor thread for batch commits): they
        must be cheap, thread-safe, and must not call back into the gateway.
        The async transport resolves its response futures through this hook;
        the worker pool's ``join_idle`` waits on it instead of sleeping.
        """
        with self._lock:
            self._terminal_listeners.append(listener)

    def subscribe_enqueue(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the queue depth after every write
        is enqueued (same constraints as :meth:`subscribe_terminal`).  Used
        to wake idle drainers without sleep-polling."""
        with self._lock:
            self._enqueue_listeners.append(listener)

    # ------------------------------------------------------------------ submit

    def _new_response(self, session: GatewaySession, request: GatewayRequest,
                      status: str, **fields) -> GatewayResponse:
        now = self.system.simulator.clock.now()
        response = GatewayResponse(
            request_id=f"req-{next(self._request_ids)}",
            tenant=session.peer_name,
            kind=request.kind,
            status=status,
            enqueued_at=now,
            completed_at=now,
            **fields,
        )
        self._responses[response.request_id] = response
        self._kind_counts[request.kind] = self._kind_counts.get(request.kind, 0) + 1
        return response

    def _finalize(self, response: GatewayResponse, session: Optional[GatewaySession],
                  status: str) -> GatewayResponse:
        with self._lock:
            response.status = status
            response.completed_at = self.system.simulator.clock.now()
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            if session is not None:
                session.count(status)
            if status in (STATUS_OK, STATUS_REJECTED, STATUS_ERROR):
                self._latency_by_tenant.setdefault(
                    response.tenant, LatencyCollector()).record_value(response.latency)
            listeners = tuple(self._terminal_listeners)
        for listener in listeners:
            listener(response)
        return response

    def submit(self, session: GatewaySession, request: GatewayRequest) -> GatewayResponse:
        """Serve a read immediately; queue a write for the next batch.

        The returned response object is *live*: for queued writes its status
        flips to a terminal one when the batch containing the write commits.
        """
        response, read_pending = self._admit(session, request)
        if read_pending:
            return self._serve_read(session, request, response)
        return response

    def _admit(self, session: GatewaySession,
               request: GatewayRequest) -> "tuple[GatewayResponse, bool]":
        """Admission control under the state lock only (never blocks on an
        in-flight commit): rate limit, authorisation, load shedding, then
        either enqueue the write or hand the read back for serving.

        Returns ``(response, read_pending)``; when ``read_pending`` is true
        the caller must still run :meth:`_serve_read` (outside the lock).
        The async transport calls this directly so admission never blocks
        the event loop behind a mining commit.
        """
        with self._lock:
            response = self._new_response(session, request, STATUS_QUEUED)
            if self._commits_in_flight.value > 0:
                self.admitted_during_commit += 1
            if not session.try_admit():
                response.error = (
                    f"tenant {session.peer_name!r} exceeded its request rate; retry later"
                )
                self._finalize(response, session, STATUS_THROTTLED)
                return response, False
            try:
                session.authorize(request)
            except SessionError as exc:
                response.error = str(exc)
                self._finalize(response, session, STATUS_REJECTED)
                return response, False
            if request.is_write:
                if self.scheduler.at_capacity:
                    self.shed_requests += 1
                    response.error = (
                        f"gateway write queue is at capacity "
                        f"({self.scheduler.queue_capacity}); request shed — retry later"
                    )
                    self._finalize(response, session, STATUS_SHED)
                    return response, False
                self.scheduler.enqueue(PendingWrite(
                    request_id=response.request_id,
                    tenant=session.peer_name,
                    peer=session.peer_name,
                    request=request,
                    enqueued_at=response.enqueued_at,
                    session=session,
                ))
                self._outstanding.increment()
                session.count(STATUS_QUEUED)
                depth = self.scheduler.queue_depth
                listeners = tuple(self._enqueue_listeners)
            else:
                return response, True
        for listener in listeners:
            listener(depth)
        return response, False

    def _load_view(self, peer_name: str, metadata_id: str):
        """Materialise a shared view for the cache, serialised with commits.

        A read-through load must not observe a half-installed batch, so it
        waits for any in-flight commit; cache *hits* stay lock-free against
        commits (the diff hook patches entries atomically under the cache
        lock).
        """
        with self._commit_lock:
            return self.system.coordinator.read_shared_data(peer_name, metadata_id)

    def _serve_read(self, session: GatewaySession, request: GatewayRequest,
                    response: GatewayResponse) -> GatewayResponse:
        try:
            if isinstance(request, ReadViewRequest):
                view = self.cache.get(
                    session.peer_name, request.metadata_id,
                    lambda: self._load_view(session.peer_name, request.metadata_id),
                )
                response.payload = {"metadata_id": request.metadata_id,
                                    "rows": len(view), "table": view.to_dict()}
            elif isinstance(request, AuditQueryRequest):
                with self._commit_lock:
                    trail = self.system.audit_trail(via_peer=session.peer_name)
                    records = trail.records(request.metadata_id)
                response.payload = {"count": len(records),
                                    "records": [record.to_dict() for record in records]}
            else:
                raise SharingError(f"cannot serve request kind {request.kind!r}")
        except SharingError as exc:
            response.error = str(exc)
            return self._finalize(response, session, STATUS_REJECTED)
        return self._finalize(response, session, STATUS_OK)

    def result(self, request_id: str) -> Optional[GatewayResponse]:
        """Look up the (possibly still queued) response for a request id."""
        return self._responses.get(request_id)

    # ----------------------------------------------------------------- commits

    @property
    def queue_depth(self) -> int:
        return self.scheduler.queue_depth

    @property
    def outstanding_writes(self) -> int:
        """Writes accepted but not yet resolved by a batch commit."""
        return self._outstanding.value

    @property
    def commits_in_flight(self) -> int:
        """Batch commits currently running their consensus rounds (0 or 1)."""
        return self._commits_in_flight.value

    def commit_once(self) -> Optional[BatchCommitResult]:
        """Plan and commit one batch; None when the queue is empty.

        A failure inside the commit never strands queued responses: every
        member of the batch reaches a terminal status either way.

        The commit lock (not the admission lock) is held across the
        consensus rounds, so new requests keep being admitted — and queued
        for the *next* batch — while this one is mining.
        """
        with self._commit_lock:
            with self._lock:
                plan = self.scheduler.plan()
                if plan.is_empty:
                    return None
                self._commits_in_flight.increment()
            try:
                result = self.system.coordinator.commit_entry_batch(plan.groups)
            except ReproError as exc:
                with self._lock:
                    self._resolve_all_failed(plan, str(exc))
                raise
            finally:
                self._commits_in_flight.decrement()
            with self._lock:
                self.batch_sizes.append(plan.size)
                self.batch_blocks += result.blocks_created
                self.batch_consensus_rounds += result.consensus_rounds
                self._resolve(plan, result)
            return result

    def drain(self, max_batches: int = 1_000) -> int:
        """Commit batches until the write queue is empty; returns batch count."""
        committed = 0
        while committed < max_batches:
            if self.commit_once() is None:
                break
            committed += 1
        return committed

    def _resolve(self, plan: BatchPlan, result: BatchCommitResult) -> None:
        for index, (trace, members) in enumerate(zip(result.traces, plan.members)):
            group_status = STATUS_OK if trace.succeeded else STATUS_REJECTED
            edit_errors = (result.edit_errors[index]
                           if index < len(result.edit_errors) else [])
            payload = {
                "operation": trace.operation,
                "metadata_id": trace.metadata_id,
                "batched_with": len(members) - 1,
                "cascaded_metadata_ids": list(trace.cascaded_metadata_ids),
                "trace": trace.to_dict(),
            }
            for position, pending in enumerate(members):
                response = self._responses[pending.request_id]
                response.payload = payload
                edit_error = edit_errors[position] if position < len(edit_errors) else None
                if edit_error is not None:
                    # This member's edit was invalid on its own; the rest of
                    # the group committed (or failed) without it.
                    status = STATUS_REJECTED
                    response.error = edit_error
                else:
                    status = group_status
                    if trace.error:
                        response.error = trace.error
                # Gauge before listeners: anything woken by the terminal
                # hook (the async drain, join_idle) must already observe the
                # decremented outstanding count or it can re-sleep forever.
                self._outstanding.decrement()
                self._finalize(response, pending.session, status)
                if status == STATUS_OK:
                    self.writes_committed += 1
                else:
                    self.writes_rejected += 1
        # Defensive coherence: successful groups were already patched row by
        # row through the coordinator's diff listener, so only the tables a
        # *failed* group may have half-touched are dropped wholesale.
        for trace in result.traces:
            if trace.succeeded:
                continue
            self.cache.invalidate(trace.metadata_id)
            for cascaded in trace.cascaded_metadata_ids:
                self.cache.invalidate(cascaded)

    def _resolve_all_failed(self, plan: BatchPlan, error: str) -> None:
        """Terminal-fail every member of a batch whose commit blew up."""
        for members in plan.members:
            for pending in members:
                response = self._responses[pending.request_id]
                response.error = error
                self._outstanding.decrement()  # gauge before terminal listeners
                self._finalize(response, pending.session, STATUS_ERROR)
                self.writes_rejected += 1
        for group in plan.groups:
            self.cache.invalidate(group.metadata_id)

    # ----------------------------------------------------------------- metrics

    def metrics(self) -> Dict[str, object]:
        """Gateway-level serving metrics (all times in simulated seconds)."""
        with self._lock:
            batches = len(self.batch_sizes)
            tenants = {
                tenant: {
                    "count": collector.count,
                    "mean": collector.mean,
                    "p95": collector.p95,
                    "p99": collector.p99,
                }
                for tenant, collector in sorted(self._latency_by_tenant.items())
            }
            return {
                "requests": {
                    "total": sum(self._kind_counts.values()),
                    "by_kind": dict(sorted(self._kind_counts.items())),
                    "by_status": dict(sorted(self._status_counts.items())),
                },
                "queue": {
                    "depth": self.scheduler.queue_depth,
                    "max_depth": self.scheduler.max_queue_depth,
                    "enqueued_total": self.scheduler.enqueued_total,
                    "outstanding_writes": self._outstanding.value,
                    "capacity": self.scheduler.queue_capacity,
                    "shed_requests": self.shed_requests,
                },
                "transport": {
                    "commits_in_flight": self._commits_in_flight.value,
                    "commits_in_flight_peak": self._commits_in_flight.peak,
                    "admitted_during_commit": self.admitted_during_commit,
                    "outstanding_writes_peak": self._outstanding.peak,
                },
                "batches": {
                    "committed": batches,
                    "writes_committed": self.writes_committed,
                    "writes_rejected": self.writes_rejected,
                    "mean_size": (sum(self.batch_sizes) / batches) if batches else 0.0,
                    "max_size": max(self.batch_sizes) if self.batch_sizes else 0,
                    "consensus_rounds": self.batch_consensus_rounds,
                    "blocks_created": self.batch_blocks,
                    "folded_writes": self.scheduler.folded_writes_total,
                    "fold_rounds_saved": self.scheduler.fold_rounds_saved,
                },
                "shards": self._shard_metrics(),
                "cache": self.cache.statistics(),
                "tenants": tenants,
                "sessions_open": len(self._sessions),
            }

    def _shard_metrics(self) -> Dict[str, object]:
        """Per-consensus-shard serving metrics: scheduler queue depth by
        shard, the miner node's mempool shard depths and lane production
        counters (single-entry when the pipeline is unsharded)."""
        router = self.system.simulator.router
        metrics: Dict[str, object] = {
            "count": router.num_shards,
            "queue_depth": self.scheduler.queue_depth_by_shard(router),
        }
        for node in self.system.simulator.nodes:
            if node.miner is None:
                continue
            depths = getattr(node.mempool, "shard_depths", None)
            metrics["mempool_depth"] = (list(depths()) if depths is not None
                                        else [len(node.mempool)])
            lanes = node.miner.lane_statistics()
            if lanes is not None:
                metrics["lanes"] = lanes
            break
        return metrics
