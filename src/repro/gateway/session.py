"""Per-client gateway sessions: identity, authorisation, rate limiting.

A tenant opens one :class:`GatewaySession` per connection.  The session binds
the client to a peer identity, authorises each request against the sharing
contract (membership of the agreement, per-attribute write permission) and
applies a token-bucket rate limit over the simulated clock so a bursty tenant
is throttled instead of starving the others.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.system import MedicalDataSharingSystem
from repro.errors import AgreementError, SessionError
from repro.gateway.requests import (
    DeleteEntryRequest,
    GatewayRequest,
    InsertEntryRequest,
    UpdateEntryRequest,
)
from repro.ledger.clock import SimClock

_session_counter = itertools.count(1)


@dataclass
class TokenBucket:
    """A token bucket over simulated time.

    ``rate`` tokens per simulated second refill up to ``burst`` capacity;
    each request spends one token.  ``rate <= 0`` disables limiting.
    """

    rate: float
    burst: float
    clock: SimClock
    _tokens: float = field(init=False)
    _refilled_at: float = field(init=False)

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        self._tokens = self.burst
        self._refilled_at = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        if now > self._refilled_at:
            self._tokens = min(self.burst, self._tokens + (now - self._refilled_at) * self.rate)
            self._refilled_at = now

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False means the caller is throttled.

        The comparison tolerates float error from clock arithmetic so a
        tenant that waited exactly ``1/rate`` seconds is admitted.
        """
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens + 1e-9 < tokens:
            return False
        self._tokens = max(0.0, self._tokens - tokens)
        return True


class GatewaySession:
    """One authenticated tenant connection to the gateway."""

    def __init__(self, system: MedicalDataSharingSystem, peer_name: str,
                 rate: float = 0.0, burst: float = 8.0):
        # Opening a session authenticates the tenant: the peer must exist and
        # hold a key pair (raises SharingError otherwise).
        self.peer = system.peer(peer_name)
        self._system = system
        self._app = system.server_app(peer_name)
        self.session_id = f"sess-{next(_session_counter)}-{peer_name}"
        self.limiter = TokenBucket(rate=rate, burst=burst,
                                   clock=system.simulator.clock)
        self.opened_at = system.simulator.clock.now()
        self.closed = False
        #: Request counters by terminal status, maintained by the gateway.
        self.counters: Dict[str, int] = {}

    @property
    def peer_name(self) -> str:
        return self.peer.name

    @property
    def role(self) -> str:
        return self.peer.role

    def close(self) -> None:
        self.closed = True

    def count(self, status: str) -> None:
        self.counters[status] = self.counters.get(status, 0) + 1

    def statistics(self) -> Dict[str, object]:
        """A snapshot of this session's serving state: per-status request
        counters, the remaining rate-limit budget and lifecycle fields.
        Surfaced per tenant by load tests and the admission-control tests."""
        return {
            "session_id": self.session_id,
            "tenant": self.peer_name,
            "role": self.role,
            "opened_at": self.opened_at,
            "closed": self.closed,
            "counters": dict(self.counters),
            "rate": self.limiter.rate,
            "burst": self.limiter.burst,
            "tokens_available": self.limiter.available,
        }

    # ------------------------------------------------------------ authorisation

    def authorize(self, request: GatewayRequest) -> None:
        """Check this session may issue ``request``; raises :class:`SessionError`.

        Reads require membership of the agreement; writes additionally require
        the sharing contract to grant this peer write permission on every
        attribute the request touches (the Fig. 3 permission matrix, probed
        through the peer's own node replica).
        """
        if self.closed:
            raise SessionError(f"session {self.session_id!r} is closed")
        metadata_id = getattr(request, "metadata_id", None)
        if metadata_id is None:
            return  # audit queries are served from the public chain replica
        try:
            agreement = self.peer.agreement(metadata_id)
        except AgreementError as exc:
            raise SessionError(
                f"peer {self.peer_name!r} is not a party of agreement {metadata_id!r}"
            ) from exc
        attributes: Tuple[str, ...] = ()
        if isinstance(request, UpdateEntryRequest):
            attributes = tuple(request.updates)
        elif isinstance(request, (InsertEntryRequest, DeleteEntryRequest)):
            # Row-level create/delete touches every shared attribute.
            attributes = agreement.shared_columns
        shared = set(agreement.shared_columns)
        for attribute in attributes:
            if attribute not in shared:
                raise SessionError(
                    f"attribute {attribute!r} is not part of shared table {metadata_id!r}"
                )
            if not self._app.can_write(metadata_id, attribute):
                raise SessionError(
                    f"peer {self.peer_name!r} (role {self.role!r}) may not write "
                    f"attribute {attribute!r} of {metadata_id!r}"
                )

    def try_admit(self) -> bool:
        """Spend one rate-limit token; False means the request is throttled."""
        return self.limiter.try_acquire()
