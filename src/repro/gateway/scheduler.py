"""The write scheduler: queueing, grouping and conflict detection.

Write requests from every tenant land in one FIFO queue.  When the gateway
commits, the scheduler plans a batch:

* edits by the same peer on the same shared table are folded into one
  :class:`~repro.core.workflow.BatchGroup` (one diff, one on-chain request);
* groups on *different* shared tables ride the same two consensus rounds;
* conflicts serialise — at most one group per shared table per batch (the
  contract's pending-acknowledgement rule) and at most one edit per
  ``(metadata_id, key)`` per batch, so concurrent writes to the same shared
  key are applied in arrival order across successive batches and no update
  is lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.workflow import BatchGroup, EntryEdit
from repro.gateway.requests import (
    DeleteEntryRequest,
    GatewayRequest,
    InsertEntryRequest,
    UpdateEntryRequest,
)


@dataclass
class PendingWrite:
    """One queued write request, waiting to be planned into a batch."""

    request_id: str
    tenant: str
    peer: str
    request: GatewayRequest
    enqueued_at: float
    #: The submitting session (opaque here), so the gateway can attribute the
    #: terminal status to the right session even after it closed.
    session: Optional[object] = None

    def to_edit(self) -> EntryEdit:
        request = self.request
        if isinstance(request, UpdateEntryRequest):
            return EntryEdit(op="update", key=request.key, values=request.updates)
        if isinstance(request, InsertEntryRequest):
            return EntryEdit(op="create", values=request.values)
        if isinstance(request, DeleteEntryRequest):
            return EntryEdit(op="delete", key=request.key)
        raise ValueError(f"request kind {request.kind!r} is not a write")

    def conflict_key(self) -> Optional[Tuple[str, Tuple]]:
        """The ``(metadata_id, row key)`` this write contends on, if keyed."""
        key = getattr(self.request, "key", None)
        if key is None:
            return None
        return (self.request.metadata_id, tuple(key))


@dataclass
class BatchPlan:
    """A planned batch: the groups to commit plus their member writes."""

    groups: List[BatchGroup] = field(default_factory=list)
    #: Pending writes per group, aligned with ``groups``.
    members: List[List[PendingWrite]] = field(default_factory=list)
    #: How many queued writes were deferred to a later batch by a conflict.
    deferred: int = 0

    @property
    def size(self) -> int:
        """Total write requests folded into this batch."""
        return sum(len(member) for member in self.members)

    @property
    def is_empty(self) -> bool:
        return not self.groups


class WriteScheduler:
    """FIFO queue + batch planner for the gateway's write path."""

    def __init__(self, max_batch_size: int = 16, max_edits_per_group: int = 8):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_edits_per_group < 1:
            raise ValueError("max_edits_per_group must be at least 1")
        self.max_batch_size = max_batch_size
        self.max_edits_per_group = max_edits_per_group
        self._queue: Deque[PendingWrite] = deque()
        self.enqueued_total = 0
        self.max_queue_depth = 0

    # ---------------------------------------------------------------- queueing

    def enqueue(self, pending: PendingWrite) -> None:
        self._queue.append(pending)
        self.enqueued_total += 1
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def pending(self) -> Tuple[PendingWrite, ...]:
        return tuple(self._queue)

    # ---------------------------------------------------------------- planning

    def plan(self, limit: Optional[int] = None) -> BatchPlan:
        """Dequeue up to ``limit`` compatible writes and group them.

        The queue is scanned oldest-first; a write that conflicts with the
        batch under construction (same shared table claimed by another peer
        or another operation kind, same row key already edited, or a full
        group) stays queued for the next batch — that deferral is exactly
        what serialises same-key writes.
        """
        limit = self.max_batch_size if limit is None else min(limit, self.max_batch_size)
        plan = BatchPlan()
        group_index: Dict[Tuple[str, str, str], int] = {}
        claimed_tables: Dict[str, Tuple[str, str]] = {}
        claimed_keys = set()
        kept: List[PendingWrite] = []
        while self._queue and plan.size < limit:
            pending = self._queue.popleft()
            metadata_id = pending.request.metadata_id
            edit = pending.to_edit()
            group_key = (pending.peer, metadata_id, edit.op)
            conflict = pending.conflict_key()
            claim = claimed_tables.get(metadata_id)
            if claim is not None and claim != (pending.peer, edit.op):
                # Another peer (or another operation kind) already owns this
                # shared table in the batch: serialise to the next batch.  The
                # deferred write still claims its row key, so younger writes
                # to the same key cannot overtake it into this batch.
                plan.deferred += 1
                kept.append(pending)
                if conflict is not None:
                    claimed_keys.add(conflict)
                continue
            if conflict is not None and conflict in claimed_keys:
                # Same-key write: strictly later batch, preserving order.
                plan.deferred += 1
                kept.append(pending)
                continue
            index = group_index.get(group_key)
            if index is not None and len(plan.members[index]) >= self.max_edits_per_group:
                plan.deferred += 1
                kept.append(pending)
                if conflict is not None:
                    claimed_keys.add(conflict)
                continue
            if index is None:
                group_index[group_key] = len(plan.groups)
                plan.groups.append(BatchGroup(peer=pending.peer, metadata_id=metadata_id,
                                              edits=(edit,)))
                plan.members.append([pending])
                claimed_tables[metadata_id] = (pending.peer, edit.op)
            else:
                group = plan.groups[index]
                plan.groups[index] = BatchGroup(peer=group.peer, metadata_id=group.metadata_id,
                                                edits=group.edits + (edit,))
                plan.members[index].append(pending)
            if conflict is not None:
                claimed_keys.add(conflict)
        # Deferred writes go back to the *front*, preserving arrival order.
        for pending in reversed(kept):
            self._queue.appendleft(pending)
        return plan
