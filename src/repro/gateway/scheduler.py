"""The write scheduler: queueing, grouping, folding and conflict detection.

Write requests from every tenant land in one FIFO queue.  When the gateway
commits, the scheduler plans a batch:

* edits by the same peer on the same shared table are folded into one
  :class:`~repro.core.workflow.BatchGroup` (one diff, one on-chain request);
* groups on *different* shared tables ride the same two consensus rounds;
* **cross-peer folding**: updates by *different* peers on the same shared
  table join one group when their attribute (column) sets do not overlap and
  they touch different rows — the merged diff commits through a single
  ``request_folded_update``, so the cross-peer hot path costs one consensus
  round pair instead of one per peer (2·N → 2);
* conflicts serialise — overlapping column sets, mixed operation kinds and
  same ``(metadata_id, key)`` writes are deferred to later batches, so
  concurrent writes to the same shared key are applied in arrival order and
  no update is lost.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Tuple

from repro.core.workflow import BatchGroup, EntryEdit
from repro.gateway.requests import (
    DeleteEntryRequest,
    GatewayRequest,
    InsertEntryRequest,
    UpdateEntryRequest,
)


@dataclass
class PendingWrite:
    """One queued write request, waiting to be planned into a batch."""

    request_id: str
    tenant: str
    peer: str
    request: GatewayRequest
    enqueued_at: float
    #: The submitting session (opaque here), so the gateway can attribute the
    #: terminal status to the right session even after it closed.
    session: Optional[object] = None

    def to_edit(self) -> EntryEdit:
        request = self.request
        if isinstance(request, UpdateEntryRequest):
            return EntryEdit(op="update", key=request.key, values=request.updates)
        if isinstance(request, InsertEntryRequest):
            return EntryEdit(op="create", values=request.values)
        if isinstance(request, DeleteEntryRequest):
            return EntryEdit(op="delete", key=request.key)
        raise ValueError(f"request kind {request.kind!r} is not a write")

    def conflict_key(self) -> Optional[Tuple[str, Tuple]]:
        """The ``(metadata_id, row key)`` this write contends on, if keyed."""
        key = getattr(self.request, "key", None)
        if key is None:
            return None
        return (self.request.metadata_id, tuple(key))

    def column_set(self) -> Optional[FrozenSet[str]]:
        """The attributes this write declares, or None for "all of them".

        Updates name their columns exactly; creates and deletes touch the
        whole row, so they overlap with everything (None) and never take part
        in cross-peer folding.
        """
        request = self.request
        if isinstance(request, UpdateEntryRequest):
            return frozenset(request.updates)
        return None


@dataclass
class _GroupState:
    """Planner-internal bookkeeping for one group under construction."""

    operation: str
    #: Contributor -> union of declared column sets (None = whole row).
    columns_by_peer: Dict[str, Optional[set]] = field(default_factory=dict)


@dataclass
class BatchPlan:
    """A planned batch: the groups to commit plus their member writes."""

    groups: List[BatchGroup] = field(default_factory=list)
    #: Pending writes per group, aligned with ``groups``.
    members: List[List[PendingWrite]] = field(default_factory=list)
    #: How many queued writes were deferred to a later batch by a conflict.
    deferred: int = 0
    #: Writes that joined a group requested by a *different* peer.
    folded_writes: int = 0

    @property
    def size(self) -> int:
        """Total write requests folded into this batch."""
        return sum(len(member) for member in self.members)

    @property
    def is_empty(self) -> bool:
        return not self.groups


class WriteScheduler:
    """FIFO queue + batch planner for the gateway's write path.

    ``fold_cross_peer`` enables the cross-peer merge rule; with it off every
    shared table is owned by a single peer per batch (the pre-folding
    behaviour) and writes by a second peer always wait for the next batch.
    """

    def __init__(self, max_batch_size: int = 16, max_edits_per_group: int = 8,
                 fold_cross_peer: bool = True,
                 max_queue_depth: Optional[int] = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_edits_per_group < 1:
            raise ValueError("max_edits_per_group must be at least 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 (or None)")
        self.max_batch_size = max_batch_size
        self.max_edits_per_group = max_edits_per_group
        self.fold_cross_peer = fold_cross_peer
        #: Queue capacity for admission control: a write arriving while the
        #: queue holds this many is *shed* (typed terminal response) instead
        #: of queued.  None disables shedding (the pre-admission-control
        #: behaviour).
        self.queue_capacity = max_queue_depth
        self._queue: Deque[PendingWrite] = deque()
        #: Guards queue/tenant-count *iteration* against mutation.  Single
        #: deque operations are atomic under the GIL, but per-shard pumps
        #: read multi-item snapshots (``queue_depth_by_shard``, ``pending``,
        #: ``queued_by_tenant``) from threads that do not hold the gateway's
        #: admission lock — iterating while ``enqueue``/``plan`` mutate
        #: raises ``RuntimeError: deque mutated during iteration``.
        self._lock = threading.Lock()
        #: Live queued-write count per tenant, for fair-queueing admission.
        self._tenant_counts: Dict[str, int] = {}
        self.enqueued_total = 0
        self.max_queue_depth = 0
        #: Cross-peer folds over this scheduler's lifetime.
        self.folded_writes_total = 0
        #: Estimated consensus rounds saved by folding: every time a peer's
        #: writes join a batch group another peer requested (instead of
        #: waiting for their own batch), the two rounds that batch would have
        #: cost are saved.
        self.fold_rounds_saved = 0

    # ---------------------------------------------------------------- queueing

    def enqueue(self, pending: PendingWrite) -> None:
        with self._lock:
            self._queue.append(pending)
            self._tenant_counts[pending.tenant] = (
                self._tenant_counts.get(pending.tenant, 0) + 1)
            self.enqueued_total += 1
            self.max_queue_depth = max(self.max_queue_depth, len(self._queue))

    def _count_down(self, pending: PendingWrite) -> None:
        remaining = self._tenant_counts.get(pending.tenant, 0) - 1
        if remaining > 0:
            self._tenant_counts[pending.tenant] = remaining
        else:
            self._tenant_counts.pop(pending.tenant, None)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def queued_for(self, tenant: str) -> int:
        """Writes this tenant currently holds in the queue."""
        return self._tenant_counts.get(tenant, 0)

    @property
    def active_tenants(self) -> int:
        """Distinct tenants with at least one queued write."""
        return len(self._tenant_counts)

    def queued_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._tenant_counts.items()))

    @property
    def at_capacity(self) -> bool:
        """True when the next write should be shed instead of queued."""
        return (self.queue_capacity is not None
                and len(self._queue) >= self.queue_capacity)

    @property
    def oldest_enqueued_at(self) -> Optional[float]:
        """Simulated enqueue time of the oldest queued write (None if empty).

        The async transport's commit pump uses this for its deadline trigger:
        a batch is sealed once the head of the queue has waited ``max_delay``
        simulated seconds, even if the depth trigger has not fired.  The pump
        reads this from the event loop while a commit plans on an executor
        thread, so an emptied-underneath-us queue is answered with None, not
        an IndexError.
        """
        try:
            return self._queue[0].enqueued_at
        except IndexError:
            return None

    def pending(self) -> Tuple[PendingWrite, ...]:
        with self._lock:
            return tuple(self._queue)

    def queue_depth_by_shard(self, router) -> Dict[int, int]:
        """Queued writes per consensus shard (``router`` maps metadata ids).

        Empty shards are included so dashboards see the full lane picture.
        Safe to call from lane-pump threads: the queue is snapshotted under
        the scheduler's lock before shard routing runs on the copy.
        """
        with self._lock:
            snapshot = tuple(self._queue)
        depths = {shard: 0 for shard in range(router.num_shards)}
        for pending in snapshot:
            depths[router.shard_of(pending.request.metadata_id)] += 1
        return depths

    # ---------------------------------------------------------------- planning

    def plan(self, limit: Optional[int] = None, shard: Optional[int] = None,
             router=None) -> BatchPlan:
        """Dequeue up to ``limit`` compatible writes and group them.

        The queue is scanned oldest-first; a write that conflicts with the
        batch under construction (overlapping columns with another peer on
        the same shared table, another operation kind, same row key already
        edited, or a full group) stays queued for the next batch — that
        deferral is exactly what serialises same-key writes.

        With ``shard``/``router`` the plan is *lane-pure*: only writes whose
        table routes to that consensus shard are eligible; the rest stay
        queued, untouched, for their own lane's pump.  Lane filtering is
        order-safe because every table maps to exactly one lane and all of
        the serialisation machinery (claimed row keys, deferred peer-table
        pairs) is per-table — two writes that must stay ordered always land
        in the same lane's plans.

        The scheduler's lock is held for the whole scan (callers already
        serialise ``plan`` against ``enqueue`` through the gateway's
        admission lock; this additionally keeps depth snapshots from racing
        the popleft/appendleft churn).
        """
        with self._lock:
            return self._plan_locked(limit=limit, shard=shard, router=router)

    def _plan_locked(self, limit: Optional[int], shard: Optional[int],
                     router) -> BatchPlan:
        limit = self.max_batch_size if limit is None else min(limit, self.max_batch_size)
        if shard is not None and router is None:
            raise ValueError("lane-filtered planning needs the shard router")
        plan = BatchPlan()
        group_of_table: Dict[str, int] = {}
        states: List[_GroupState] = []
        claimed_keys = set()
        #: (peer, metadata_id) pairs with a write already deferred in this
        #: scan: later writes by that peer on that table must defer too, so a
        #: tenant's writes on one shared table commit in submission order.
        deferred_peer_tables = set()
        kept: List[PendingWrite] = []
        scanned = 0
        queue_size = len(self._queue)
        while self._queue and scanned < queue_size and plan.size < limit:
            pending = self._queue.popleft()
            scanned += 1
            self._count_down(pending)
            metadata_id = pending.request.metadata_id
            if shard is not None and router.shard_of(metadata_id) != shard:
                # Another lane's write: skip without claiming keys or
                # deferring — this scan must not affect its ordering state.
                kept.append(pending)
                continue
            edit = pending.to_edit()
            conflict = pending.conflict_key()
            columns = pending.column_set()
            if conflict is not None and conflict in claimed_keys:
                # Same-key write: strictly later batch, preserving order.
                plan.deferred += 1
                kept.append(pending)
                deferred_peer_tables.add((pending.peer, metadata_id))
                continue
            if (pending.peer, metadata_id) in deferred_peer_tables:
                # An earlier write by this peer on this table was deferred:
                # folding this one in would let it overtake on-chain.
                plan.deferred += 1
                kept.append(pending)
                if conflict is not None:
                    claimed_keys.add(conflict)
                continue
            index = group_of_table.get(metadata_id)
            if index is None:
                group_of_table[metadata_id] = len(plan.groups)
                plan.groups.append(BatchGroup(peer=pending.peer, metadata_id=metadata_id,
                                              edits=(edit,)))
                plan.members.append([pending])
                states.append(_GroupState(
                    operation=edit.op,
                    columns_by_peer={pending.peer: None if columns is None
                                     else set(columns)}))
            elif self._can_join(states[index], plan.groups[index], pending, edit, columns):
                group = plan.groups[index]
                state = states[index]
                cross_peer = pending.peer != group.peer
                plan.groups[index] = BatchGroup(
                    peer=group.peer, metadata_id=group.metadata_id,
                    edits=group.edits + (edit,),
                    edit_peers=group.edit_peers + (pending.peer,))
                plan.members[index].append(pending)
                existing = state.columns_by_peer.get(pending.peer)
                if columns is None:
                    state.columns_by_peer[pending.peer] = None
                elif existing is None and pending.peer in state.columns_by_peer:
                    pass  # already "whole row"
                else:
                    state.columns_by_peer.setdefault(pending.peer, set()).update(columns)
                if cross_peer:
                    plan.folded_writes += 1
                    self.folded_writes_total += 1
                    if pending.peer not in group.edit_peers:
                        # First write by this peer to ride another peer's
                        # group: its own batch (two rounds) is saved.
                        self.fold_rounds_saved += 2
            else:
                # Conflicting write: serialise to the next batch.  It still
                # claims its row key, so younger writes to the same key
                # cannot overtake it into this batch.
                plan.deferred += 1
                kept.append(pending)
                deferred_peer_tables.add((pending.peer, metadata_id))
                if conflict is not None:
                    claimed_keys.add(conflict)
                continue
            if conflict is not None:
                claimed_keys.add(conflict)
        # Deferred writes go back to the *front*, preserving arrival order.
        for pending in reversed(kept):
            self._queue.appendleft(pending)
            self._tenant_counts[pending.tenant] = (
                self._tenant_counts.get(pending.tenant, 0) + 1)
        return plan

    def _can_join(self, state: _GroupState, group: BatchGroup,
                  pending: PendingWrite, edit: EntryEdit,
                  columns: Optional[FrozenSet[str]]) -> bool:
        """Whether a write may join the batch group already claiming its table."""
        if len(group.edits) >= self.max_edits_per_group:
            return False
        if edit.op != state.operation:
            return False  # operations do not mix within a group
        cross_peer = pending.peer != group.peer or group.folded
        if pending.peer not in state.columns_by_peer:
            # A new contributor: only the cross-peer fold rule admits it.
            if not self.fold_cross_peer or edit.op != "update":
                return False
        if cross_peer or len(state.columns_by_peer) > 1:
            # Any group spanning peers needs pairwise-disjoint column sets:
            # creates/deletes (whole-row, columns None) never qualify.
            if columns is None:
                return False
            for peer, peer_columns in state.columns_by_peer.items():
                if peer == pending.peer:
                    continue
                if peer_columns is None or peer_columns & columns:
                    return False
        return True
