"""Latency-aware admission control for the gateway's write path.

Queue-depth shedding (the PR 4 behaviour) bounds *memory*, not *latency*: a
deep-but-under-capacity queue still drags every admitted write's commit
latency with it.  The :class:`LatencyShedder` closes that gap with two
complementary signals, both in simulated seconds over a sliding window:

* **observed p99** — committed-write latencies recorded via the same values
  the per-tenant :class:`~repro.metrics.collectors.LatencyCollector`\\ s see;
  while the windowed p99 exceeds the target, new writes are shed;
* **predicted queueing delay** — the current queue depth times the windowed
  mean per-write service time.  This is the signal that makes the bound
  *hold*: p99 alone reacts only after slow writes have already committed,
  by which time the queue may have grown unboundedly.

Both estimators are deterministic functions of (workload, seed), so shed
decisions replay bit-for-bit.  Fair queueing is a third, orthogonal check
done against the scheduler's live per-tenant counts (see
:meth:`fair_share_exceeded`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple


class LatencyShedder:
    """Sliding-window p99 + service-time-prediction admission control.

    ``target`` is the committed-write p99 bound in simulated seconds
    (``None`` disables latency shedding entirely — every decision is
    ``None``).
    """

    def __init__(self, clock, target: Optional[float],
                 window: float = 30.0, min_samples: int = 5):
        if target is not None and target <= 0:
            raise ValueError("latency target must be positive (or None)")
        if window <= 0:
            raise ValueError("window must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.clock = clock
        self.target = target
        self.window = window
        self.min_samples = min_samples
        #: (recorded_at, end-to-end latency) of each committed write.
        self._latencies: Deque[Tuple[float, float]] = deque()
        #: (recorded_at, per-write service seconds) of each batch commit.
        self._services: Deque[Tuple[float, float]] = deque()
        self._lock = threading.Lock()
        self.shed_p99 = 0
        self.shed_predicted = 0
        self.shed_cold_start = 0

    # ------------------------------------------------------------- recording

    def record_latency(self, latency: float) -> None:
        """One committed write's end-to-end latency."""
        if self.target is None:
            return
        with self._lock:
            self._latencies.append((self.clock.now(), latency))
            self._trim_locked()

    def record_service(self, seconds: float, writes: int) -> None:
        """One batch commit's duration, amortised over its writes."""
        if self.target is None or writes <= 0:
            return
        with self._lock:
            self._services.append((self.clock.now(), seconds / writes))
            self._trim_locked()

    def _trim_locked(self) -> None:
        horizon = self.clock.now() - self.window
        while self._latencies and self._latencies[0][0] < horizon:
            self._latencies.popleft()
        while self._services and self._services[0][0] < horizon:
            self._services.popleft()

    # ------------------------------------------------------------- estimates

    @property
    def p99(self) -> Optional[float]:
        """Windowed p99 of committed-write latency (None below min samples)."""
        with self._lock:
            self._trim_locked()
            values = sorted(latency for _, latency in self._latencies)
        if len(values) < self.min_samples:
            return None
        rank = 0.99 * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        return values[low] + (values[high] - values[low]) * (rank - low)

    @property
    def mean_service(self) -> Optional[float]:
        with self._lock:
            self._trim_locked()
            if not self._services:
                return None
            return (sum(seconds for _, seconds in self._services)
                    / len(self._services))

    def predicted_delay(self, queue_depth: int) -> Optional[float]:
        """Expected queueing delay of a write admitted at this depth."""
        service = self.mean_service
        if service is None:
            return None
        return queue_depth * service

    # -------------------------------------------------------------- decision

    def decision(self, queue_depth: int) -> Optional[str]:
        """The shed reason for a write arriving now, or None to admit."""
        if self.target is None:
            return None
        p99 = self.p99
        if p99 is not None and p99 > self.target:
            self.shed_p99 += 1
            return (f"commit-latency p99 {p99:.3f}s exceeds the "
                    f"{self.target:.3f}s target")
        if p99 is None:
            # Cold start: below min_samples the p99 estimate is withheld
            # (None — an empty/thin window must not read as "0.0 s, fast").
            # But unanimous early evidence still counts: if *every* latency
            # observed so far blows the target, shed now instead of waving
            # writes through until the estimator warms up.
            with self._lock:
                self._trim_locked()
                observed = [latency for _, latency in self._latencies]
            if observed and min(observed) > self.target:
                self.shed_cold_start += 1
                return (f"cold start: all {len(observed)} committed writes "
                        f"in the window exceed the {self.target:.3f}s target")
        predicted = self.predicted_delay(queue_depth)
        if predicted is not None and predicted > self.target:
            self.shed_predicted += 1
            return (f"predicted queueing delay {predicted:.3f}s at depth "
                    f"{queue_depth} exceeds the {self.target:.3f}s target")
        return None

    @property
    def healthy(self) -> bool:
        """Whether the commit path currently meets its latency target."""
        if self.target is None:
            return True
        p99 = self.p99
        return p99 is None or p99 <= self.target

    def statistics(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "window": self.window,
            "p99": self.p99,
            "mean_service": self.mean_service,
            "shed_p99": self.shed_p99,
            "shed_predicted": self.shed_predicted,
            "shed_cold_start": self.shed_cold_start,
        }


def fair_share_exceeded(scheduler, tenant: str) -> Optional[str]:
    """Max-min fair-queueing check against a bounded write queue.

    A tenant may hold up to ``ceil(capacity / active queued tenants)``
    queued writes (counting itself as active).  A lone tenant gets the whole
    queue; when the queue is contended, a hot tenant is shed at its share so
    the remaining capacity stays available to everyone else.  Returns the
    shed reason, or None to admit.  Unbounded queues never shed.
    """
    capacity = scheduler.queue_capacity
    if capacity is None:
        return None
    queued = scheduler.queued_for(tenant)
    if queued == 0:
        return None
    # queued > 0, so this tenant is already counted among the active ones.
    active = scheduler.active_tenants
    share = -(-capacity // max(1, active))  # ceil division
    if queued >= share:
        return (f"tenant {tenant!r} holds {queued} of {capacity} queued "
                f"writes (fair share {share} across {active} tenants)")
    return None
