"""A read-through cache of materialised shared views.

Read traffic dominates a serving layer, and a shared view only changes when
the Fig. 5 propagation workflow runs.  The cache therefore subscribes to the
:class:`~repro.core.workflow.UpdateCoordinator`'s shared-change hooks.  When
the coordinator can describe a change as a row-level
:class:`~repro.relational.diff.TableDiff` (the delta-propagation path), the
cached views of the affected shared table are *patched in place* — only the
touched rows are rewritten, so a single-row commit against a 10k-row view
costs O(1) cache work and the next read is still a hit.  Only when no diff is
available (a failed, half-installed commit) are the views dropped wholesale.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.obs.tracer import NULL_TRACER
from repro.relational.diff import TableDiff
from repro.relational.table import Table


class ViewCache:
    """Caches ``(peer, metadata_id) → materialised shared view`` snapshots."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.tracer = NULL_TRACER
        #: Set by the gateway so entries carry install timestamps (simulated
        #: seconds).  Without a clock, install times — and therefore entry
        #: ages — are *unknown* (``None``), never 0.0: an unknown age must
        #: fail a bounded-staleness cutoff, not trivially pass it.
        self.clock = None
        self._entries: Dict[Tuple[str, str], Table] = {}
        #: Simulated install/patch time per entry (``None`` when no clock
        #: was attached at install time), for the degraded-read path's
        #: bounded-staleness guarantee.
        self._installed_at: Dict[Tuple[str, str], Optional[float]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.patches = 0
        self.prewarms = 0
        #: Per shared table, a counter bumped by every patch/invalidation.
        #: A miss loads *outside* the cache lock (so loading never nests the
        #: cache lock inside the gateway's commit lock); the loaded view is
        #: only installed if no change landed in between — otherwise it could
        #: be stale and caching it would serve stale reads forever.
        self._generations: Dict[str, int] = {}
        self.stale_loads_discarded = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------- reads

    def get(self, peer: str, metadata_id: str,
            loader: Callable[[], Table]) -> Table:
        """Return the cached view, loading (and caching) it on a miss.

        The loader runs *without* the cache lock held: the gateway's loader
        acquires the commit lock (a read-through load must not observe a
        half-installed batch), and an in-flight commit's diff hook takes the
        cache lock — holding the cache lock across the load would deadlock.
        The load is installed only if no patch/invalidation of the same
        shared table happened meanwhile (generation guard); a superseded load
        is still returned to the caller (it is fresh — it was materialised
        after the intervening commit finished) but not cached.
        """
        if not self.enabled:
            return loader()
        key = (peer, metadata_id)
        with self.tracer.span("cache.get", peer=peer,
                              metadata_id=metadata_id) as span:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    span.annotate(hit=True)
                    return cached
                self.misses += 1
                # setdefault (not get): the table must be known to the
                # generation map while the load is in flight, so a concurrent
                # invalidate_all() bumps it and the superseded load is
                # discarded even if the table had no cached entry yet.
                generation = self._generations.setdefault(metadata_id, 0)
            span.annotate(hit=False)
            view = loader()
            with self._lock:
                if self._generations.get(metadata_id, 0) == generation:
                    self._entries[key] = view
                    self._installed_at[key] = self._now()
                else:
                    self.stale_loads_discarded += 1
                return view

    def _now(self) -> Optional[float]:
        return self.clock.now() if self.clock is not None else None

    def peek(self, peer: str, metadata_id: str) -> Optional[Table]:
        return self._entries.get((peer, metadata_id))

    def peek_entry(self, peer: str,
                   metadata_id: str) -> Optional[Tuple[Table, Optional[float]]]:
        """The cached view *and its age* in simulated seconds, without
        counting a hit or triggering a load (the degraded-read path).

        The age is ``None`` when it cannot be measured — no clock was
        attached when the entry was installed, or none is attached now.
        Callers enforcing a staleness bound must treat ``None`` as *over*
        the bound (unknown age is not fresh age).
        """
        with self._lock:
            key = (peer, metadata_id)
            view = self._entries.get(key)
            if view is None:
                return None
            now = self._now()
            installed = self._installed_at.get(key)
            if now is None or installed is None:
                return view, None
            return view, now - installed

    # ------------------------------------------------------------ invalidation

    def invalidate(self, metadata_id: str) -> int:
        """Drop every peer's cached view of ``metadata_id``; returns how many."""
        with self._lock:
            self._bump(metadata_id)
            stale = [key for key in self._entries if key[1] == metadata_id]
            for key in stale:
                del self._entries[key]
                self._installed_at.pop(key, None)
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_all(self) -> int:
        with self._lock:
            # Every *known* table, not just those with live entries: a miss
            # registers its table before loading, so in-flight loads are
            # superseded by this flush too.
            for metadata_id in list(self._generations):
                self._bump(metadata_id)
            count = len(self._entries)
            self._entries.clear()
            self._installed_at.clear()
            self.invalidations += count
            return count

    def _bump(self, metadata_id: str) -> None:
        """Advance ``metadata_id``'s generation (caller holds the lock)."""
        self._generations[metadata_id] = self._generations.get(metadata_id, 0) + 1

    # ---------------------------------------------------------------- patching

    def patch(self, metadata_id: str, diff: TableDiff) -> int:
        """Apply a row-level diff to every cached view of ``metadata_id``.

        Both peers of an agreement store the same shared-table contents, so
        one view diff patches every peer's cached copy.  An entry the diff
        does not apply to cleanly (it drifted somehow) is dropped instead, so
        a patch can never leave a cached view stale.  Returns the number of
        entries patched.

        Patching is copy-on-write: a reader that already fetched the entry
        keeps serialising a consistent pre-commit snapshot while the swapped
        copy serves later reads — commits run while reads are in flight, so
        mutating the shared ``Table`` in place would tear those reads.
        """
        with self.tracer.span("cache.patch", metadata_id=metadata_id) as span:
            with self._lock:
                self._bump(metadata_id)
                patched = 0
                for key in [key for key in self._entries
                            if key[1] == metadata_id]:
                    try:
                        patched_view = self._entries[key].snapshot()
                        patched_view.apply_diff(diff)
                    except ReproError:
                        del self._entries[key]
                        self._installed_at.pop(key, None)
                        self.invalidations += 1
                    else:
                        self._entries[key] = patched_view
                        self._installed_at[key] = self._now()
                        patched += 1
                self.patches += patched
                span.annotate(patched=patched)
                return patched

    # -------------------------------------------------------------- pre-warming

    def prewarm(self, peer: str, metadata_id: str, view: Table) -> bool:
        """Install a freshly materialised view ahead of any read.

        The diff-driven pre-warm path: at a commit boundary the gateway (or
        a replica's replayer) materialises the just-changed shared views and
        installs them here, so the next read is a hit instead of a
        read-through miss.  Bumps the table's generation — an in-flight
        read-through load of the same table raced the commit and must not
        overwrite the fresher pre-warmed copy.  Returns whether the entry
        was installed (a disabled cache ignores pre-warms).
        """
        if not self.enabled:
            return False
        with self._lock:
            self._bump(metadata_id)
            self._entries[(peer, metadata_id)] = view
            self._installed_at[(peer, metadata_id)] = self._now()
            self.prewarms += 1
            return True

    # -------------------------------------------------------------- change hook

    def on_shared_change(self, metadata_id: str, operation: str,
                         peers: Tuple[str, str]) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_change` listener
        (diff-less form): drops the affected views."""
        self.invalidate(metadata_id)

    def on_shared_diff(self, metadata_id: str, operation: str,
                       peers: Tuple[str, str],
                       diff: Optional[TableDiff] = None) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_diff` listener:
        patches the affected views row by row, dropping them only when the
        change carries no diff."""
        if diff is None:
            self.invalidate(metadata_id)
        elif not diff.is_empty:
            self.patch(metadata_id, diff)

    def register_metrics(self, registry) -> None:
        """Expose the cache's live statistics as registry gauges."""
        registry.gauge("cache_entries", fn=lambda: len(self._entries))
        registry.gauge("cache_hits", fn=lambda: self.hits)
        registry.gauge("cache_misses", fn=lambda: self.misses)
        registry.gauge("cache_hit_rate", fn=lambda: self.hit_rate)
        registry.gauge("cache_invalidations", fn=lambda: self.invalidations)
        registry.gauge("cache_patches", fn=lambda: self.patches)
        registry.gauge("cache_prewarms", fn=lambda: self.prewarms)
        registry.gauge("cache_stale_loads_discarded",
                       fn=lambda: self.stale_loads_discarded)

    def statistics(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "patches": self.patches,
            "prewarms": self.prewarms,
            "stale_loads_discarded": self.stale_loads_discarded,
        }
