"""A read-through cache of materialised shared views.

Read traffic dominates a serving layer, and a shared view only changes when
the Fig. 5 propagation workflow runs.  The cache therefore subscribes to the
:class:`~repro.core.workflow.UpdateCoordinator`'s shared-change hooks.  When
the coordinator can describe a change as a row-level
:class:`~repro.relational.diff.TableDiff` (the delta-propagation path), the
cached views of the affected shared table are *patched in place* — only the
touched rows are rewritten, so a single-row commit against a 10k-row view
costs O(1) cache work and the next read is still a hit.  Only when no diff is
available (a failed, half-installed commit) are the views dropped wholesale.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.relational.diff import TableDiff
from repro.relational.table import Table


class ViewCache:
    """Caches ``(peer, metadata_id) → materialised shared view`` snapshots."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[Tuple[str, str], Table] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.patches = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------- reads

    def get(self, peer: str, metadata_id: str,
            loader: Callable[[], Table]) -> Table:
        """Return the cached view, loading (and caching) it on a miss."""
        if not self.enabled:
            return loader()
        with self._lock:
            key = (peer, metadata_id)
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            view = loader()
            self._entries[key] = view
            return view

    def peek(self, peer: str, metadata_id: str) -> Optional[Table]:
        return self._entries.get((peer, metadata_id))

    # ------------------------------------------------------------ invalidation

    def invalidate(self, metadata_id: str) -> int:
        """Drop every peer's cached view of ``metadata_id``; returns how many."""
        with self._lock:
            stale = [key for key in self._entries if key[1] == metadata_id]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate_all(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.invalidations += count
            return count

    # ---------------------------------------------------------------- patching

    def patch(self, metadata_id: str, diff: TableDiff) -> int:
        """Apply a row-level diff to every cached view of ``metadata_id``.

        Both peers of an agreement store the same shared-table contents, so
        one view diff patches every peer's cached copy.  An entry the diff
        does not apply to cleanly (it drifted somehow) is dropped instead, so
        a patch can never leave a cached view stale.  Returns the number of
        entries patched.
        """
        with self._lock:
            patched = 0
            for key in [key for key in self._entries if key[1] == metadata_id]:
                try:
                    self._entries[key].apply_diff(diff)
                except ReproError:
                    del self._entries[key]
                    self.invalidations += 1
                else:
                    patched += 1
            self.patches += patched
            return patched

    # -------------------------------------------------------------- change hook

    def on_shared_change(self, metadata_id: str, operation: str,
                         peers: Tuple[str, str]) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_change` listener
        (diff-less form): drops the affected views."""
        self.invalidate(metadata_id)

    def on_shared_diff(self, metadata_id: str, operation: str,
                       peers: Tuple[str, str],
                       diff: Optional[TableDiff] = None) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_diff` listener:
        patches the affected views row by row, dropping them only when the
        change carries no diff."""
        if diff is None:
            self.invalidate(metadata_id)
        elif not diff.is_empty:
            self.patch(metadata_id, diff)

    def statistics(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "patches": self.patches,
        }
