"""A read-through cache of materialised shared views.

Read traffic dominates a serving layer, and a shared view only changes when
the Fig. 5 propagation workflow runs.  The cache therefore subscribes to the
:class:`~repro.core.workflow.UpdateCoordinator`'s shared-change hook: every
successful propagation — including each cascaded step-6 leg — invalidates the
cached views of the affected shared table on both peers, so readers never
observe a stale view after a commit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.relational.table import Table


class ViewCache:
    """Caches ``(peer, metadata_id) → materialised shared view`` snapshots."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[Tuple[str, str], Table] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------- reads

    def get(self, peer: str, metadata_id: str,
            loader: Callable[[], Table]) -> Table:
        """Return the cached view, loading (and caching) it on a miss."""
        if not self.enabled:
            return loader()
        key = (peer, metadata_id)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        view = loader()
        self._entries[key] = view
        return view

    def peek(self, peer: str, metadata_id: str) -> Optional[Table]:
        return self._entries.get((peer, metadata_id))

    # ------------------------------------------------------------ invalidation

    def invalidate(self, metadata_id: str) -> int:
        """Drop every peer's cached view of ``metadata_id``; returns how many."""
        stale = [key for key in self._entries if key[1] == metadata_id]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def invalidate_all(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.invalidations += count
        return count

    # -------------------------------------------------------------- change hook

    def on_shared_change(self, metadata_id: str, operation: str,
                         peers: Tuple[str, str]) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_change` listener."""
        self.invalidate(metadata_id)

    def statistics(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
        }
