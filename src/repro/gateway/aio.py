"""The asyncio gateway transport: open-loop admission over batched commits.

The synchronous :class:`~repro.gateway.gateway.SharingGateway` requires its
caller to interleave ``submit`` and ``commit_once``/``drain`` by hand, so an
open-loop driver stops admitting arrivals while a batch is mining and the
consensus lanes sit idle between batches.  :class:`AsyncSharingGateway` puts
an event loop in front of the same gateway:

* :meth:`AsyncSharingGateway.submit_nowait` admits a request and returns an
  :class:`asyncio.Future` that resolves when the response turns terminal —
  the caller keeps submitting (open loop) instead of waiting;
* a **commit pump** task seals batches when the queue is deep enough
  (``seal_depth``), when the oldest queued write has waited ``max_delay``
  simulated seconds (deadline), or when arrivals go quiet for
  ``idle_timeout`` real seconds — no explicit ``drain()`` calls;
* the batch itself runs in an executor thread while the event loop keeps
  admitting arrivals, so admission genuinely overlaps the consensus rounds
  (the gateway's commit lock, not its admission lock, covers the mining).

Both transports share one :class:`~repro.gateway.scheduler.WriteScheduler`
(the batch planner), one :class:`~repro.gateway.cache.ViewCache` and one
response store, so everything the sync path guarantees — per-tenant
same-table order, fold rules, conflict serialisation — holds unchanged
under the async transport.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Dict, List, Optional, Union

from repro.core.system import MedicalDataSharingSystem
from repro.gateway.gateway import SharingGateway
from repro.gateway.requests import (
    STATUS_QUEUED,
    GatewayRequest,
    GatewayResponse,
)
from repro.gateway.session import GatewaySession
from repro.metrics.collectors import PeakGauge

#: Why the commit pump sealed a batch.
TRIGGER_DEPTH = "depth"        # queue depth reached seal_depth
TRIGGER_DEADLINE = "deadline"  # oldest queued write waited max_delay sim-seconds
TRIGGER_IDLE = "idle"          # no arrivals for idle_timeout real seconds
TRIGGER_FLUSH = "flush"        # explicit drain()/stop() flush


class AsyncSharingGateway:
    """An asyncio front end over one :class:`SharingGateway`.

    ``seal_depth`` defaults to the scheduler's ``max_batch_size``;
    ``max_delay`` (simulated seconds, 0 disables) bounds how long a queued
    write waits for its batch to fill; ``idle_timeout`` (real seconds) seals
    pending work when the arrival stream goes quiet, so no write ever hangs
    waiting for traffic that never comes.
    """

    def __init__(self, target: Union[SharingGateway, MedicalDataSharingSystem],
                 *, seal_depth: Optional[int] = None, max_delay: float = 0.0,
                 idle_timeout: float = 0.02, per_shard: bool = False,
                 **gateway_kwargs):
        if isinstance(target, SharingGateway):
            if gateway_kwargs:
                raise ValueError("gateway keyword arguments are only accepted "
                                 "when building the gateway from a system")
            self.gateway = target
        else:
            self.gateway = SharingGateway(target, **gateway_kwargs)
        if seal_depth is not None and seal_depth < 1:
            raise ValueError("seal_depth must be at least 1 (or None)")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.seal_depth = seal_depth or self.gateway.scheduler.max_batch_size
        self.max_delay = max_delay
        self.idle_timeout = idle_timeout
        #: ``per_shard`` runs one commit-pump task per consensus lane, each
        #: sealing lane-pure batches (``commit_once(shard=i)``) so a deep
        #: backlog on one lane cannot delay sealing on another.  With a
        #: single-shard router this degenerates to the one classic pump.
        self.per_shard = per_shard
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump_tasks: List[asyncio.Task] = []
        self._wake: Optional[asyncio.Event] = None
        self._terminal_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._subscribed = False
        #: request_id → future of a queued write awaiting its batch commit.
        self._pending: Dict[str, asyncio.Future] = {}
        self._in_flight = PeakGauge()
        self._reads_in_flight = PeakGauge()
        self.commits = 0
        self.commit_errors: List[str] = []
        self.sealed_by: Dict[str, int] = {TRIGGER_DEPTH: 0, TRIGGER_DEADLINE: 0,
                                          TRIGGER_IDLE: 0, TRIGGER_FLUSH: 0}
        #: Per-lane seal counters, keyed "all" (the unfiltered pump) or the
        #: shard index as a string.  Only populated by pumps that ran.
        self.sealed_by_lane: Dict[str, Dict[str, int]] = {}

    # ----------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return any(not task.done() for task in self._pump_tasks)

    def _pump_lanes(self) -> List[Optional[int]]:
        if not self.per_shard:
            return [None]
        router = self.gateway.system.simulator.router
        if router.num_shards <= 1:
            return [None]
        return list(range(router.num_shards))

    async def start(self) -> "AsyncSharingGateway":
        if self.running:
            raise RuntimeError("async gateway is already running")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._terminal_event = asyncio.Event()
        self._stopping = False
        if not self._subscribed:
            self.gateway.subscribe_terminal(self._on_terminal)
            self._subscribed = True
        self._pump_tasks = [
            self._loop.create_task(
                self._commit_pump(lane),
                name=("gateway-commit-pump" if lane is None
                      else f"gateway-commit-pump-shard-{lane}"))
            for lane in self._pump_lanes()
        ]
        return self

    async def stop(self, flush: bool = True) -> None:
        """Stop the pump; with ``flush`` (default) first drain queued writes
        so every accepted request leaves with a terminal response.  A durable
        response journal (gateway ``state_dir``) is fsynced on the way out so
        a clean shutdown never leaves terminal responses buffered."""
        if flush:
            await self.drain()
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._pump_tasks:
            await asyncio.gather(*self._pump_tasks)
            self._pump_tasks = []
        self.gateway.flush_journal()

    async def __aenter__(self) -> "AsyncSharingGateway":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------ sessions

    def open_session(self, peer_name: str, rate: Optional[float] = None,
                     burst: Optional[float] = None) -> GatewaySession:
        return self.gateway.open_session(peer_name, rate=rate, burst=burst)

    def close_session(self, session: GatewaySession) -> None:
        self.gateway.close_session(session)

    # -------------------------------------------------------------------- submit

    def submit_nowait(self, session: GatewaySession,
                      request: GatewayRequest) -> "asyncio.Future[GatewayResponse]":
        """Admit a request now; return a future for its terminal response.

        Admission (rate limit, authorisation, load shedding, enqueue) runs
        inline on the event loop under the gateway's admission lock only, so
        it never blocks behind an in-flight commit.  Writes resolve when the
        batch containing them commits; reads are served on an executor
        thread (a cache miss waits for any in-flight commit there, not
        here); throttled/shed/rejected requests resolve immediately.
        """
        if not self.running:
            raise RuntimeError("async gateway is not running; use 'async with' "
                               "or await start() first")
        loop = self._loop
        future: "asyncio.Future[GatewayResponse]" = loop.create_future()
        response, read_pending = self.gateway._admit(session, request)
        if read_pending:
            self._reads_in_flight.increment()
            served = loop.run_in_executor(
                None, self.gateway._serve_read, session, request, response)
            served.add_done_callback(lambda task: self._read_done(task, future))
        elif response.status == STATUS_QUEUED:
            self._pending[response.request_id] = future
            self._in_flight.increment()
            self._wake.set()
        else:
            future.set_result(response)
        return future

    async def submit(self, session: GatewaySession,
                     request: GatewayRequest) -> GatewayResponse:
        """Admit a request and await its terminal response."""
        return await self.submit_nowait(session, request)

    def _read_done(self, task: "asyncio.Future", future: "asyncio.Future") -> None:
        self._reads_in_flight.decrement()
        if self._terminal_event is not None:
            self._terminal_event.set()
        if future.done():
            return
        if task.cancelled():
            future.cancel()
        elif task.exception() is not None:
            future.set_exception(task.exception())
        else:
            future.set_result(task.result())

    # The gateway calls this on whichever thread finalised the response
    # (event loop for admission-time terminals, executor for batch commits);
    # the future itself is always resolved on the event loop.
    def _on_terminal(self, response: GatewayResponse) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._resolve_future, response)

    def _resolve_future(self, response: GatewayResponse) -> None:
        if self._terminal_event is not None:
            self._terminal_event.set()
        future = self._pending.pop(response.request_id, None)
        if future is None:
            return
        self._in_flight.decrement()
        if not future.done():
            future.set_result(response)

    # --------------------------------------------------------------- commit pump

    def _lane_depth(self, lane: Optional[int]) -> int:
        if lane is None:
            return self.gateway.queue_depth
        router = self.gateway.system.simulator.router
        depths = self.gateway.scheduler.queue_depth_by_shard(router)
        return depths.get(lane, 0)

    def _seal_trigger(self, idle_expired: bool = False,
                      lane: Optional[int] = None) -> Optional[str]:
        """Which trigger (if any) says the pump should seal a batch now.

        A lane pump only looks at its own lane's depth; the deadline check
        still reads the global oldest-enqueued timestamp (a spurious deadline
        fire for another lane's write just plans an empty batch, which is a
        no-op and does not count toward the seal stats).
        """
        depth = self._lane_depth(lane)
        if depth == 0:
            return None
        if self._stopping:
            return TRIGGER_FLUSH
        if depth >= self.seal_depth:
            return TRIGGER_DEPTH
        if self.max_delay > 0:
            oldest = self.gateway.scheduler.oldest_enqueued_at
            if (oldest is not None
                    and self.gateway.system.simulator.clock.now() - oldest >= self.max_delay):
                return TRIGGER_DEADLINE
        if idle_expired:
            return TRIGGER_IDLE
        return None

    async def _commit_pump(self, lane: Optional[int] = None) -> None:
        loop = asyncio.get_running_loop()
        while True:
            trigger = self._seal_trigger(lane=lane)
            if trigger is None:
                if self._stopping and self._lane_depth(lane) == 0:
                    return
                # Clear-then-recheck so a wake between the check and the wait
                # is never lost.
                self._wake.clear()
                trigger = self._seal_trigger(lane=lane)
                if trigger is None:
                    if self._stopping and self._lane_depth(lane) == 0:
                        return
                    timeout = self.idle_timeout if self._lane_depth(lane) else None
                    try:
                        await asyncio.wait_for(self._wake.wait(), timeout)
                    except asyncio.TimeoutError:
                        trigger = self._seal_trigger(idle_expired=True, lane=lane)
                    if trigger is None:
                        continue
            await self._commit_in_executor(loop, trigger, lane=lane)

    async def _commit_in_executor(self, loop: asyncio.AbstractEventLoop,
                                  trigger: str,
                                  lane: Optional[int] = None) -> None:
        """Run one batch commit off-loop; survive (and record) its failures.

        ``sealed_by`` counts the trigger only when a batch was actually
        planned — a racing drain()/pump pair may both answer one queue
        build-up, and the loser's commit_once is a no-op that must not
        inflate the stats.  A blown-up commit still counts: it consumed (and
        terminal-failed) a planned batch.  The gateway terminal-fails every
        member before re-raising, so the pump only notes the error.
        """
        try:
            result = await loop.run_in_executor(
                None, functools.partial(self.gateway.commit_once,
                                        trigger=trigger, shard=lane))
        except Exception as exc:  # noqa: BLE001 - the pump must survive
            self.commit_errors.append(f"{type(exc).__name__}: {exc}")
            self._count_seal(trigger, lane)
            return
        if result is not None:
            self.commits += 1
            self._count_seal(trigger, lane)

    def _count_seal(self, trigger: str, lane: Optional[int]) -> None:
        self.sealed_by[trigger] += 1
        key = "all" if lane is None else str(lane)
        per_lane = self.sealed_by_lane.setdefault(
            key, {TRIGGER_DEPTH: 0, TRIGGER_DEADLINE: 0,
                  TRIGGER_IDLE: 0, TRIGGER_FLUSH: 0})
        per_lane[trigger] += 1

    async def drain(self) -> None:
        """Seal until no write is queued or awaiting its terminal response."""
        loop = asyncio.get_running_loop()
        while True:
            if self.gateway.queue_depth > 0:
                await self._commit_in_executor(loop, TRIGGER_FLUSH)
                continue
            if (self.gateway.outstanding_writes == 0
                    and self._reads_in_flight.value == 0):
                return
            self._terminal_event.clear()
            if (self.gateway.outstanding_writes == 0
                    and self._reads_in_flight.value == 0):
                return
            await self._terminal_event.wait()

    # ------------------------------------------------------------------- metrics

    def statistics(self) -> Dict[str, object]:
        """Transport-level stats: sealing triggers, pump health, in-flight."""
        stats: Dict[str, object] = {
            "transport": "async",
            "running": self.running,
            "seal_depth": self.seal_depth,
            "max_delay": self.max_delay,
            "commits": self.commits,
            "commit_errors": len(self.commit_errors),
            "sealed_by": dict(self.sealed_by),
            "pending_futures": self._in_flight.value,
            "pending_futures_peak": self._in_flight.peak,
            "reads_in_flight": self._reads_in_flight.value,
            "reads_in_flight_peak": self._reads_in_flight.peak,
            "commit_path_unhealthy": self.gateway.commit_path_unhealthy(),
            "breaker_states": self.gateway.breakers.states(),
        }
        if self.per_shard:
            stats["per_shard"] = True
            stats["sealed_by_lane"] = {
                lane: dict(counts)
                for lane, counts in sorted(self.sealed_by_lane.items())
            }
        return stats

    def metrics(self) -> Dict[str, object]:
        """The shared gateway metrics plus this transport's own section."""
        merged = self.gateway.metrics()
        merged["async_transport"] = self.statistics()
        return merged
