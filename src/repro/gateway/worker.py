"""A worker pool draining the gateway's write queue.

Workers are real threads multiplexed over the *simulated* clock: each worker
repeatedly asks the gateway to plan-and-commit one batch.  The gateway's
internal lock makes a commit atomic, so the pool models the concurrency of a
serving tier (many drainers, shared queue, safe interleaving) while the
ledger rounds themselves stay deterministic.

For fully deterministic unit tests prefer :meth:`SharingGateway.drain`; the
pool exists to serve continuous traffic and to prove the locking is sound
under genuine thread interleaving.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.gateway.gateway import SharingGateway


class GatewayWorkerPool:
    """N worker threads calling :meth:`SharingGateway.commit_once` in a loop."""

    def __init__(self, gateway: SharingGateway, workers: int = 2,
                 idle_sleep: float = 0.001):
        if workers < 1:
            raise ValueError("the pool needs at least one worker")
        self.gateway = gateway
        self.worker_count = workers
        self.idle_sleep = idle_sleep
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self.batches_committed = 0
        #: Errors raised by commits inside workers (the gateway has already
        #: terminal-failed the affected responses; recorded here so the
        #: failure is observable instead of dying with the thread).
        self.errors: List[str] = []
        self._counter_lock = threading.Lock()

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool is already running")
        self._stop.clear()
        for index in range(self.worker_count):
            thread = threading.Thread(target=self._run, name=f"gateway-worker-{index}",
                                      daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def __enter__(self) -> "GatewayWorkerPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # -------------------------------------------------------------------- work

    def _run(self) -> None:
        while True:
            try:
                result = self.gateway.commit_once()
            except Exception as exc:  # noqa: BLE001 - a worker must survive
                with self._counter_lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                result = None
            if result is not None:
                with self._counter_lock:
                    self.batches_committed += 1
                continue
            if self._stop.is_set():
                return
            time.sleep(self.idle_sleep)

    def join_idle(self, timeout: float = 10.0) -> bool:
        """Block until every accepted write has a terminal response.

        Returns False if ``timeout`` *real* seconds elapse first.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.gateway.outstanding_writes == 0:
                return True
            time.sleep(self.idle_sleep)
        return self.gateway.outstanding_writes == 0
