"""A worker pool draining the gateway's write queue.

Workers are real threads multiplexed over the *simulated* clock: each worker
repeatedly asks the gateway to plan-and-commit one batch.  The gateway's
commit lock makes a commit atomic while admission stays open, so the pool
models the concurrency of a serving tier (many drainers, shared queue, safe
interleaving) while the ledger rounds themselves stay deterministic.

Idle workers do not sleep-poll: they wait on an event the gateway's enqueue
hook sets, and :meth:`GatewayWorkerPool.join_idle` waits on the gateway's
terminal-response hook — so tests synchronise on real state transitions
rather than timing.

For fully deterministic unit tests prefer :meth:`SharingGateway.drain`; the
pool exists to serve continuous traffic and to prove the locking is sound
under genuine thread interleaving.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.gateway.gateway import SharingGateway


class GatewayWorkerPool:
    """N worker threads calling :meth:`SharingGateway.commit_once` in a loop."""

    def __init__(self, gateway: SharingGateway, workers: int = 2,
                 idle_sleep: float = 0.001, per_shard: bool = False):
        if workers < 1:
            raise ValueError("the pool needs at least one worker")
        self.gateway = gateway
        #: ``per_shard`` pins one worker to each consensus lane: worker *i*
        #: plans lane-pure batches for shard *i* (``commit_once(shard=i)``),
        #: so every lane has a dedicated pump and no lane can starve behind
        #: another's backlog.  The ``workers`` count is then derived from
        #: the router instead of the argument.
        self.per_shard = per_shard
        if per_shard:
            router = gateway.system.simulator.router
            self._lanes: List[Optional[int]] = list(range(router.num_shards))
            self.worker_count = len(self._lanes)
        else:
            self._lanes = [None] * workers
            self.worker_count = workers
        if idle_sleep <= 0:
            raise ValueError("idle_sleep must be positive")
        #: Idle workers block on the enqueue event; this only sets the
        #: fallback re-check period (defence in depth against an enqueue
        #: path that bypassed the hook), floored so tiny legacy values do
        #: not reintroduce busy polling.
        self.idle_sleep = idle_sleep
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        #: Set by the gateway's enqueue hook: work is (probably) available.
        self._work_available = threading.Event()
        #: Set by the gateway's terminal hook: a response just turned terminal.
        self._response_terminal = threading.Event()
        self._subscribed = False
        self.batches_committed = 0
        #: Errors raised by commits inside workers (the gateway has already
        #: terminal-failed the affected responses; recorded here so the
        #: failure is observable instead of dying with the thread).
        self.errors: List[str] = []
        self._counter_lock = threading.Lock()

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool is already running")
        if not self._subscribed:
            # Hooks outlive the pool; they only set events, so firing into a
            # stopped pool is harmless.
            self.gateway.subscribe_enqueue(lambda _depth: self._work_available.set())
            self.gateway.subscribe_terminal(lambda _resp: self._response_terminal.set())
            self._subscribed = True
        self._stop.clear()
        for index in range(self.worker_count):
            lane = self._lanes[index]
            suffix = f"gateway-worker-{index}" if lane is None else f"gateway-pump-shard-{lane}"
            thread = threading.Thread(target=self._run, args=(lane,), name=suffix,
                                      daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        self._work_available.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def __enter__(self) -> "GatewayWorkerPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # -------------------------------------------------------------------- work

    def _lane_depth(self, lane: Optional[int]) -> int:
        if lane is None:
            return self.gateway.queue_depth
        router = self.gateway.system.simulator.router
        depths = self.gateway.scheduler.queue_depth_by_shard(router)
        return depths.get(lane, 0)

    def _run(self, lane: Optional[int] = None) -> None:
        while True:
            try:
                result = self.gateway.commit_once(trigger="worker", shard=lane)
            except Exception as exc:  # noqa: BLE001 - a worker must survive
                with self._counter_lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                result = None
            if result is not None:
                with self._counter_lock:
                    self.batches_committed += 1
                continue
            if self._stop.is_set():
                return
            # Clear-then-check-then-wait: an enqueue between the check and
            # the wait re-sets the event, so no wakeup is ever lost.  A lane
            # worker checks only its own lane's depth — re-spinning on another
            # lane's backlog would busy-loop on empty plans.
            self._work_available.clear()
            try:
                depth = self._lane_depth(lane)
            except Exception as exc:  # noqa: BLE001 - the pump must survive
                # A failed depth probe must not kill the lane's only pump
                # (queued writes would stall forever); record it and re-check
                # through commit_once, which has its own error handling.
                with self._counter_lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                depth = 1
            if depth > 0 or self._stop.is_set():
                continue
            self._work_available.wait(timeout=max(self.idle_sleep, 0.1))

    def join_idle(self, timeout: float = 10.0) -> bool:
        """Block until every accepted write has a terminal response.

        Returns False if ``timeout`` *real* seconds elapse first.  Waits on
        the gateway's terminal-response hook, not a sleep loop.
        """
        deadline = time.monotonic() + timeout
        while True:
            self._response_terminal.clear()
            if self.gateway.outstanding_writes == 0:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self.gateway.outstanding_writes == 0
            self._response_terminal.wait(remaining)
