"""The multi-tenant request-serving layer (the gateway).

The paper's protocols run one operation at a time; this package puts a
serving tier in front of :class:`~repro.core.system.MedicalDataSharingSystem`
so many tenants can read and write shared data concurrently:

* :mod:`repro.gateway.session` — authenticated, rate-limited tenant sessions;
* :mod:`repro.gateway.requests` — the typed request/response wire model;
* :mod:`repro.gateway.scheduler` — FIFO write queue, batch planning and
  conflict serialisation;
* :mod:`repro.gateway.cache` — a read-through shared-view cache invalidated
  by the Fig. 5 propagation workflow;
* :mod:`repro.gateway.admission` — latency-aware admission control: the
  sliding-window p99 / predicted-delay :class:`LatencyShedder` and the
  per-tenant fair-queueing check;
* :mod:`repro.gateway.worker` — a thread pool draining the write queue;
* :mod:`repro.gateway.aio` — the asyncio transport: awaitable responses and
  a commit pump sealing batches on queue-depth/deadline triggers, so
  open-loop arrivals interleave with in-flight consensus rounds;
* :mod:`repro.gateway.gateway` — the facade wiring it all together.
"""

from repro.gateway.admission import LatencyShedder, fair_share_exceeded
from repro.gateway.aio import AsyncSharingGateway
from repro.gateway.cache import ViewCache
from repro.gateway.gateway import ResponseJournal, SharingGateway
from repro.gateway.requests import (
    AuditQueryRequest,
    DeleteEntryRequest,
    GatewayRequest,
    GatewayResponse,
    InsertEntryRequest,
    ReadViewRequest,
    UpdateEntryRequest,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_THROTTLED,
    TERMINAL_STATUSES,
)
from repro.gateway.scheduler import BatchPlan, PendingWrite, WriteScheduler
from repro.gateway.session import GatewaySession, TokenBucket
from repro.gateway.worker import GatewayWorkerPool

__all__ = [
    "AsyncSharingGateway",
    "AuditQueryRequest",
    "BatchPlan",
    "DeleteEntryRequest",
    "GatewayRequest",
    "GatewayResponse",
    "GatewaySession",
    "GatewayWorkerPool",
    "InsertEntryRequest",
    "LatencyShedder",
    "PendingWrite",
    "ReadViewRequest",
    "ResponseJournal",
    "SharingGateway",
    "TokenBucket",
    "UpdateEntryRequest",
    "ViewCache",
    "WriteScheduler",
    "fair_share_exceeded",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_QUEUED",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "STATUS_THROTTLED",
    "TERMINAL_STATUSES",
]
