"""Executable checking of the lens round-tripping laws.

The paper relies on well-behavedness (GetPut and PutGet) to guarantee that a
source and its views stay consistent after updates on either side.  Instead
of a proof, the reproduction *checks* the laws on concrete data: the database
manager can verify them before installing an updated source, and the property
tests verify them on randomly generated tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import BXError, LensLawViolation
from repro.bx.lens import Lens
from repro.relational.diff import diff_tables
from repro.relational.table import Table


@dataclass(frozen=True)
class LawReport:
    """Outcome of checking one or both laws on concrete data."""

    lens_name: str
    get_put_holds: Optional[bool]
    put_get_holds: Optional[bool]
    detail: str = ""

    @property
    def well_behaved(self) -> bool:
        """True when every checked law holds (unchecked laws don't count against)."""
        checked = [law for law in (self.get_put_holds, self.put_get_holds) if law is not None]
        return all(checked) if checked else False


def check_get_put(lens: Lens, source: Table) -> bool:
    """GetPut: ``put(source, get(source)) == source``.

    Intuitively: if the view was not changed, putting it back must not change
    the source.
    """
    view = lens.get(source)
    round_tripped = lens.put(source, view)
    return round_tripped == source


def check_put_get(lens: Lens, source: Table, view: Table) -> bool:
    """PutGet: ``get(put(source, view)) == view``.

    Intuitively: every update on the view must be taken into account, so the
    (possibly modified) view can be regenerated from the updated source.
    """
    new_source = lens.put(source, view)
    regenerated = lens.get(new_source)
    return regenerated == view


def check_well_behaved(lens: Lens, source: Table, view: Optional[Table] = None) -> LawReport:
    """Check both laws and return a :class:`LawReport`.

    When ``view`` is omitted, PutGet is checked against ``get(source)`` (a
    trivially consistent view), which still exercises the code path.
    """
    detail_parts = []
    try:
        get_put = check_get_put(lens, source)
        if not get_put:
            before = source
            after = lens.put(source, lens.get(source))
            detail_parts.append(
                f"GetPut violated: {len(diff_tables(before, after))} row(s) changed"
            )
    except BXError as exc:
        get_put = False
        detail_parts.append(f"GetPut raised: {exc}")

    candidate_view = view if view is not None else None
    try:
        if candidate_view is None:
            candidate_view = lens.get(source)
        put_get = check_put_get(lens, source, candidate_view)
        if not put_get:
            regenerated = lens.get(lens.put(source, candidate_view))
            detail_parts.append(
                f"PutGet violated: {len(diff_tables(candidate_view, regenerated))} row(s) differ"
            )
    except BXError as exc:
        put_get = False
        detail_parts.append(f"PutGet raised: {exc}")

    return LawReport(
        lens_name=lens.name,
        get_put_holds=get_put,
        put_get_holds=put_get,
        detail="; ".join(detail_parts),
    )


def assert_well_behaved(lens: Lens, source: Table, view: Optional[Table] = None) -> None:
    """Raise :class:`LensLawViolation` unless both laws hold on the given data."""
    report = check_well_behaved(lens, source, view)
    if not report.well_behaved:
        raise LensLawViolation(
            f"lens {report.lens_name!r} is not well-behaved on the given data: {report.detail}"
        )
