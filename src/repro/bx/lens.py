"""The lens abstraction and shared policies.

A :class:`Lens` is an asymmetric bidirectional transformation between a
source :class:`~repro.relational.table.Table` and a view table.  ``put`` is
not an inverse of ``get``: it receives both the original source and the
updated view, and produces an updated source (footnote 4 of the paper).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.relational.schema import Schema
from repro.relational.table import Table


class DeletePolicy(Enum):
    """What ``put`` does when a view row present in ``get(source)`` disappears.

    * ``DELETE`` — delete the corresponding source rows (keeps PutGet).
    * ``FORBID`` — raise :class:`~repro.errors.PutConflictError`; the paper's
      workflow uses this for views whose peers only have field-update rights.
    """

    DELETE = "delete"
    FORBID = "forbid"


class InsertPolicy(Enum):
    """What ``put`` does when the view contains a row absent from ``get(source)``.

    * ``INSERT_WITH_NULLS`` — create a source row, filling hidden attributes
      with NULLs (keeps PutGet as long as hidden attributes are nullable).
    * ``FORBID`` — raise :class:`~repro.errors.PutConflictError`.
    """

    INSERT_WITH_NULLS = "insert_with_nulls"
    FORBID = "forbid"


class Lens:
    """Base class for asymmetric lenses over tables."""

    #: Human-readable name used in logs, the BX registry and the audit trail.
    name: str = "lens"

    def get(self, source: Table) -> Table:
        """Forward transformation: derive the view from the source."""
        raise NotImplementedError

    def put(self, source: Table, view: Table) -> Table:
        """Backward transformation: embed the view back into the source.

        Returns a *new* table; the caller decides whether to install it (the
        database manager uses :meth:`Table.replace_all`).
        """
        raise NotImplementedError

    def view_schema(self, source_schema: Schema) -> Schema:
        """The schema of the view this lens produces from ``source_schema``."""
        raise NotImplementedError

    # -- incremental (delta) evaluation ---------------------------------------

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Translate a source-side diff into the view-side diff ``get`` would
        cause, without materialising either table.

        Raises :class:`~repro.errors.DeltaUnsupported` when no sound
        row-level translation exists; callers fall back to the full ``get``.
        """
        from repro.errors import DeltaUnsupported

        raise DeltaUnsupported(
            f"{type(self).__name__} has no incremental get; fall back to full get"
        )

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Translate a view-side diff into the source-side diff ``put`` would
        cause, without materialising either table.

        Raises :class:`~repro.errors.DeltaUnsupported` when no sound
        row-level translation exists; callers fall back to the full ``put``.
        """
        from repro.errors import DeltaUnsupported

        raise DeltaUnsupported(
            f"{type(self).__name__} has no incremental put; fall back to full put"
        )

    # -- composition sugar ----------------------------------------------------

    def then(self, other: "Lens") -> "Lens":
        """Sequential composition ``self ; other`` (source → mid → view)."""
        from repro.bx.compose import ComposeLens

        return ComposeLens(self, other)

    def __rshift__(self, other: "Lens") -> "Lens":
        return self.then(other)

    # -- descriptive helpers --------------------------------------------------

    def describe(self) -> dict:
        """A serialisable description of the lens (used in agreements/logs)."""
        return {"kind": type(self).__name__, "name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def named_view(view: Table, name: Optional[str]) -> Table:
    """Return ``view`` renamed to ``name`` when a name is supplied."""
    if name is None or view.name == name:
        return view
    return Table(name, view.schema, (row.to_dict() for row in view))
