"""Enriching equi-join lenses over keyed sources.

The richest views in the paper's scenarios pull *reference data* into a
shared view: a doctor's per-patient view enriched with the pharmacology
columns of a medications table, a billing view enriched with insurer
metadata.  :class:`JoinLens` models exactly that shape — an inner equi-join
of a keyed source table with a *reference* table whose primary key is
pinned down by the join columns — which is the case where a join stays
bidirectional **and** delta-translatable:

* every source row matches **at most one** reference row (reference primary
  key ⊆ join columns), so the view keeps the source's primary key and rows
  correspond one-to-one;
* unmatched source rows are hidden, selection-style, and survive ``put``
  untouched;
* the enrichment columns are read-only through the view: ``put`` rejects a
  view row whose enrichment values disagree with the reference row it
  joins.

The reference side is treated as static reference data during delta
translation (a reference-table diff is never routed through the source's
lens), matching the read-mostly terminology/medication tables the
workloads model.  Non-keyed joins keep raising
:class:`~repro.errors.DeltaUnsupported` in the query layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import DeltaUnsupported, PutConflictError, SchemaError, ViewShapeError
from repro.bx.lens import DeletePolicy, InsertPolicy, Lens, named_view
from repro.relational.schema import Schema
from repro.relational.table import Table

ResolveTable = Callable[[str], Table]


class JoinLens(Lens):
    """Inner equi-join of a keyed source with a reference table.

    Parameters
    ----------
    table:
        Name of the reference table, resolved through ``resolve_table`` at
        use time (the lens never snapshots it).
    on:
        The join columns.  Must exist on both sides and must contain the
        reference table's entire primary key — that is what makes the join
        *keyed* (≤1 match per source row) and hence delta-translatable.
    columns:
        The enrichment columns appended to the view from the matched
        reference row.  Must not collide with source columns.
    resolve_table:
        Callable mapping a table name to the live :class:`Table` (typically
        ``Database.table``).
    """

    def __init__(
        self,
        table: str,
        on: Sequence[str],
        columns: Sequence[str],
        resolve_table: Optional[ResolveTable] = None,
        view_name: Optional[str] = None,
        on_delete: DeletePolicy = DeletePolicy.DELETE,
        on_insert: InsertPolicy = InsertPolicy.INSERT_WITH_NULLS,
    ):
        if not on:
            raise SchemaError("a join lens needs at least one join column")
        if not columns:
            raise SchemaError("a join lens needs at least one enrichment column")
        overlap = set(on) & set(columns)
        if overlap:
            raise SchemaError(
                f"enrichment columns {sorted(overlap)} are join columns; "
                "join columns already live on the source side"
            )
        self.table = table
        self.on: Tuple[str, ...] = tuple(on)
        self.columns: Tuple[str, ...] = tuple(columns)
        self.resolve_table = resolve_table
        self.view_name = view_name
        self.on_delete = on_delete
        self.on_insert = on_insert
        self.name = view_name or f"join({table} on " + ",".join(self.on) + ")"

    # --------------------------------------------------------------- plumbing

    def _reference(self) -> Table:
        if self.resolve_table is None:
            raise SchemaError(
                f"join lens {self.name!r} has no resolve_table; bind it to a "
                "database before use"
            )
        reference = self.resolve_table(self.table)
        key = reference.schema.primary_key
        if not key or not all(k in self.on for k in key):
            raise SchemaError(
                f"join lens {self.name!r} requires the reference primary key "
                f"{tuple(key)!r} to be contained in the join columns {self.on!r}; "
                "otherwise one source row matches many reference rows"
            )
        for column in self.columns:
            if not reference.schema.has_column(column):
                raise SchemaError(
                    f"join lens {self.name!r}: reference table {self.table!r} "
                    f"has no column {column!r}"
                )
        return reference

    def _match(self, reference: Table, image: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """The reference row ``image`` joins, or None when it joins nothing.

        Raises ``KeyError`` when ``image`` lacks a join column (callers
        translate that into the right error for their direction).
        """
        key = tuple(image[k] for k in reference.schema.primary_key)
        if any(v is None for v in key) or not reference.contains_key(key):
            return None
        candidate = reference.get(key).to_dict()
        for column in self.on:
            if candidate.get(column, image[column]) != image[column]:
                return None
        return candidate

    def _delta_lookup(self, reference: Table):
        def lookup(image: Mapping[str, object]) -> Optional[Dict[str, object]]:
            try:
                return self._match(reference, image)
            except KeyError as exc:
                raise DeltaUnsupported(
                    f"lens {self.name!r}: change image lacks join column {exc.args[0]!r}"
                ) from None
        return lookup

    # -------------------------------------------------------------------- get

    def view_schema(self, source_schema: Schema) -> Schema:
        reference = self._reference()
        for column in self.on:
            if not source_schema.has_column(column):
                raise SchemaError(
                    f"join lens {self.name!r}: source has no join column {column!r}"
                )
        for column in self.columns:
            if source_schema.has_column(column):
                raise SchemaError(
                    f"join lens {self.name!r}: enrichment column {column!r} "
                    "collides with a source column"
                )
        columns = tuple(source_schema.columns) + tuple(
            reference.schema.column(c) for c in self.columns)
        return Schema(columns=columns, primary_key=source_schema.primary_key)

    def get(self, source: Table) -> Table:
        reference = self._reference()
        schema = self.view_schema(source.schema)
        rows = []
        for row in source:
            match = self._match(reference, row.to_dict())
            if match is None:
                continue  # the inner join hides unmatched source rows
            combined = row.to_dict()
            for column in self.columns:
                combined[column] = match[column]
            rows.append(combined)
        view = Table(self.view_name or f"{source.name}_join", schema, rows)
        return named_view(view, self.view_name)

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        from repro.bx import delta

        if not source_schema.primary_key:
            raise DeltaUnsupported(
                f"lens {self.name!r}: join delta requires a keyed source"
            )
        lookup = self._delta_lookup(self._reference())
        return delta.translate_diff(
            source_diff,
            self.view_name or f"{source_diff.table_name}_join",
            lambda change: delta.join_get_change(change, self.columns, lookup, self.name),
        )

    # -------------------------------------------------------------------- put

    def put(self, source: Table, view: Table) -> Table:
        reference = self._reference()
        self._check_view_shape(source, view)
        key = source.schema.primary_key
        if not key:
            raise SchemaError(f"join lens {self.name!r} requires a keyed source")
        source_columns = source.schema.column_names
        value_columns = [c for c in source_columns if c not in key]

        view_by_key: Dict[Tuple, Dict] = {}
        for row in view:
            marker = tuple(row[k] for k in key)
            if marker in view_by_key:
                raise ViewShapeError(
                    f"view {view.name!r} has conflicting rows for key {marker!r}"
                )
            image = row.to_dict()
            match = self._match(reference, image)
            if match is None:
                raise ViewShapeError(
                    f"view row with key {marker!r} joins no {self.table!r} row "
                    f"under lens {self.name!r}"
                )
            for column in self.columns:
                if image[column] is not None and image[column] != match[column]:
                    raise ViewShapeError(
                        f"view row with key {marker!r} rewrites read-only join "
                        f"column {column!r} of lens {self.name!r}"
                    )
            view_by_key[marker] = image

        new_rows = []
        matched_keys = set()
        for row in source:
            marker = tuple(row[k] for k in key)
            if marker in view_by_key:
                matched_keys.add(marker)
                updates = {c: view_by_key[marker][c] for c in value_columns}
                new_rows.append(row.merged(updates).to_dict())
                continue
            if self._match(reference, row.to_dict()) is None:
                # Hidden by the join — the view never saw it; keep it.
                new_rows.append(row.to_dict())
                continue
            if self.on_delete is DeletePolicy.DELETE:
                continue
            raise PutConflictError(
                f"view {view.name!r} dropped key {marker!r} but the lens forbids deletions"
            )

        for marker, image in view_by_key.items():
            if marker in matched_keys:
                continue
            if self.on_insert is InsertPolicy.FORBID:
                raise PutConflictError(
                    f"view {view.name!r} introduced key {marker!r} but the lens "
                    "forbids insertions"
                )
            new_rows.append({c: image[c] for c in source_columns})

        return Table(source.name, source.schema, new_rows)

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        from repro.bx import delta

        if not source_schema.primary_key:
            raise DeltaUnsupported(
                f"lens {self.name!r}: join delta requires a keyed source"
            )
        lookup = self._delta_lookup(self._reference())
        source_columns = source_schema.column_names
        return delta.translate_diff(
            view_diff,
            view_diff.table_name,
            lambda change: delta.join_put_change(
                change, source_columns, self.columns, lookup,
                self.on_delete, self.on_insert, self.name),
        )

    # ---------------------------------------------------------------- helpers

    def _check_view_shape(self, source: Table, view: Table) -> None:
        expected = set(source.schema.column_names) | set(self.columns)
        view_columns = set(view.schema.column_names)
        if view_columns != expected:
            raise ViewShapeError(
                f"view {view.name!r} has columns {sorted(view_columns)}, "
                f"lens expects {sorted(expected)}"
            )

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "table": self.table,
                "on": list(self.on),
                "columns": list(self.columns),
                "view_name": self.view_name,
                "on_delete": self.on_delete.value,
                "on_insert": self.on_insert.value,
            }
        )
        return description
