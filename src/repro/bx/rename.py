"""Rename lenses: bijective column renaming between peers' vocabularies.

Two hospitals rarely agree on column names; the sharing agreement can carry a
rename lens so each peer sees the shared table in its own vocabulary while
``put`` maps updates back losslessly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SchemaError, ViewShapeError
from repro.bx.lens import Lens, named_view
from repro.relational.schema import Schema
from repro.relational.table import Table


class RenameLens(Lens):
    """Rename columns according to a bijective mapping ``source → view``."""

    def __init__(self, mapping: Dict[str, str], view_name: Optional[str] = None):
        if len(set(mapping.values())) != len(mapping):
            raise SchemaError(f"rename mapping is not injective: {mapping}")
        self.mapping = dict(mapping)
        self.reverse_mapping = {v: k for k, v in mapping.items()}
        self.view_name = view_name
        self.name = view_name or "rename"

    def view_schema(self, source_schema: Schema) -> Schema:
        return source_schema.rename(self.mapping)

    def get(self, source: Table) -> Table:
        view = source.rename_columns(self.mapping, name=self.view_name or f"{source.name}_ren")
        return named_view(view, self.view_name)

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Forward translation: rename the columns of every change image."""
        from repro.bx import delta

        return delta.translate_diff(
            source_diff,
            self.view_name or f"{source_diff.table_name}_ren",
            lambda change: delta.renamed_change(change, self.mapping),
        )

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Backward translation: rename every change image back."""
        from repro.bx import delta

        return delta.translate_diff(
            view_diff,
            view_diff.table_name,
            lambda change: delta.renamed_change(change, self.reverse_mapping),
        )

    def put(self, source: Table, view: Table) -> Table:
        expected = set(self.view_schema(source.schema).column_names)
        if set(view.schema.column_names) != expected:
            raise ViewShapeError(
                f"view {view.name!r} columns {sorted(view.schema.column_names)} "
                f"do not match the renamed schema {sorted(expected)}"
            )
        restored = view.rename_columns(self.reverse_mapping, name=source.name)
        return Table(source.name, source.schema, (row.to_dict() for row in restored))

    def describe(self) -> dict:
        description = super().describe()
        description.update({"mapping": dict(self.mapping), "view_name": self.view_name})
        return description
