"""Lens composition and the identity lens.

Composition lets view definitions be layered — e.g. *select this patient's
rows, then project the dosage columns, then rename to the partner hospital's
vocabulary* — while remaining a single well-behaved lens.
"""

from __future__ import annotations

from typing import Optional

from repro.bx.lens import Lens, named_view
from repro.relational.schema import Schema
from repro.relational.table import Table


class IdentityLens(Lens):
    """The identity lens: the view *is* the source.

    Used by the full-record-sharing baseline (MedRec-style), where the whole
    record is shared rather than a fine-grained piece.
    """

    def __init__(self, view_name: Optional[str] = None):
        self.view_name = view_name
        self.name = view_name or "identity"

    def view_schema(self, source_schema: Schema) -> Schema:
        return source_schema

    def get(self, source: Table) -> Table:
        return named_view(source.snapshot(), self.view_name)

    def put(self, source: Table, view: Table) -> Table:
        return Table(source.name, source.schema, (row.to_dict() for row in view))

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        return source_diff

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        return view_diff


class ComposeLens(Lens):
    """Sequential composition of two lenses (source → mid → view).

    * ``get(s) = outer.get(inner.get(s))``
    * ``put(s, v) = inner.put(s, outer.put(inner.get(s), v))``

    Composition of well-behaved lenses is well-behaved, which the property
    tests verify on random tables.
    """

    def __init__(self, inner: Lens, outer: Lens, view_name: Optional[str] = None):
        self.inner = inner
        self.outer = outer
        self.view_name = view_name
        self.name = view_name or f"{inner.name};{outer.name}"

    def view_schema(self, source_schema: Schema) -> Schema:
        return self.outer.view_schema(self.inner.view_schema(source_schema))

    def get(self, source: Table) -> Table:
        return named_view(self.outer.get(self.inner.get(source)), self.view_name)

    def put(self, source: Table, view: Table) -> Table:
        mid = self.inner.get(source)
        new_mid = self.outer.put(mid, view)
        return self.inner.put(source, new_mid)

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Chain the forward translations through the (unmaterialised) middle.

        The middle table is never built: each stage only needs the schema the
        previous stage produces.  Raises
        :class:`~repro.errors.DeltaUnsupported` when either stage does.
        """
        from repro.relational.diff import TableDiff

        mid_schema = self.inner.view_schema(source_schema)
        mid_diff = self.inner.get_delta(source_schema, source_diff)
        view_diff = self.outer.get_delta(mid_schema, mid_diff)
        if self.view_name and view_diff.table_name != self.view_name:
            view_diff = TableDiff(table_name=self.view_name, changes=view_diff.changes)
        return view_diff

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Chain the backward translations: outer first, then inner."""
        mid_schema = self.inner.view_schema(source_schema)
        mid_diff = self.outer.put_delta(mid_schema, view_diff)
        return self.inner.put_delta(source_schema, mid_diff)

    def describe(self) -> dict:
        description = super().describe()
        description.update({"inner": self.inner.describe(), "outer": self.outer.describe()})
        return description
