"""Projection lenses: the workhorse of the paper's fine-grained views.

Two alignment modes are supported by the same class:

* **Keyed projection** — the view retains the source's primary key
  (e.g. D1 → D13 keeps ``patient_id``).  ``put`` aligns view rows to source
  rows one-to-one by key; view-side inserts and deletes map to source-side
  inserts and deletes according to the configured policies.

* **Functional projection** — the view's key is *not* the source key but a
  set of columns that functionally determine the projected values
  (e.g. D3 → D32 projects ``(medication_name, mechanism_of_action)``; the
  medication name determines the mechanism).  ``put`` updates the projected
  value columns of *every* source row matching a view key, which is exactly
  what step 5 of Fig. 5 needs ("update MeA1 to a new name" for all records of
  that medication).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PutConflictError, SchemaError, ViewShapeError
from repro.bx.lens import DeletePolicy, InsertPolicy, Lens, named_view
from repro.relational.schema import Schema
from repro.relational.table import Table


class ProjectionLens(Lens):
    """Project a source table onto a subset of its columns.

    Parameters
    ----------
    columns:
        The view's columns, in order.  Must be a subset of the source columns.
    view_key:
        The columns of the view used to align rows during ``put``.  Defaults
        to the source primary key when it survives the projection.
    view_name:
        Name given to produced view tables (e.g. ``"D13"``).
    on_delete / on_insert:
        Policies for view-side deletions and insertions (see
        :class:`~repro.bx.lens.DeletePolicy` / :class:`~repro.bx.lens.InsertPolicy`).
    """

    def __init__(
        self,
        columns: Sequence[str],
        view_key: Optional[Sequence[str]] = None,
        view_name: Optional[str] = None,
        on_delete: DeletePolicy = DeletePolicy.DELETE,
        on_insert: InsertPolicy = InsertPolicy.INSERT_WITH_NULLS,
    ):
        if not columns:
            raise SchemaError("a projection lens needs at least one column")
        self.columns: Tuple[str, ...] = tuple(columns)
        self.view_key: Optional[Tuple[str, ...]] = tuple(view_key) if view_key else None
        if self.view_key:
            missing = [c for c in self.view_key if c not in self.columns]
            if missing:
                raise SchemaError(f"view key columns {missing} are not projected columns")
        self.view_name = view_name
        self.on_delete = on_delete
        self.on_insert = on_insert
        self.name = view_name or ("project(" + ",".join(self.columns) + ")")

    # ------------------------------------------------------------------- get

    def _effective_key(self, source_schema: Schema) -> Tuple[str, ...]:
        """The alignment key actually used for a given source schema."""
        if self.view_key:
            return self.view_key
        if source_schema.primary_key and all(k in self.columns for k in source_schema.primary_key):
            return source_schema.primary_key
        raise SchemaError(
            "projection lens has no usable alignment key: supply view_key "
            f"(projected columns: {self.columns}, source key: {source_schema.primary_key})"
        )

    def view_schema(self, source_schema: Schema) -> Schema:
        key = self._effective_key(source_schema)
        return source_schema.project(self.columns, primary_key=key)

    def get(self, source: Table) -> Table:
        key = self._effective_key(source.schema)
        schema = source.schema.project(self.columns, primary_key=key)
        seen: Dict[Tuple, Dict] = {}
        for row in source:
            projected = row.project(self.columns).to_dict()
            marker = tuple(projected[k] for k in key)
            if marker in seen:
                if seen[marker] != projected:
                    raise PutConflictError(
                        f"source violates the functional dependency of view {self.name!r}: "
                        f"key {marker!r} maps to conflicting projected rows"
                    )
                continue
            seen[marker] = projected
        view = Table(self.view_name or f"{source.name}_view", schema, seen.values())
        return named_view(view, self.view_name)

    def get_delta(self, source_schema: Schema, source_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Row-by-row forward translation for *keyed* projections.

        Functional projections (alignment key ≠ source primary key) raise
        :class:`~repro.errors.DeltaUnsupported`: there a single source change
        can alter a view row's support count, which only a full ``get`` sees.
        """
        from repro.bx import delta

        key = self._effective_key(source_schema)
        delta.require_keyed_alignment(key, source_schema, self.name)
        return delta.translate_diff(
            source_diff,
            self.view_name or f"{source_diff.table_name}_view",
            lambda change: delta.projection_get_change(change, self.columns, self.name),
        )

    def put_delta(self, source_schema: Schema, view_diff: "TableDiff") -> "TableDiff":  # noqa: F821
        """Row-by-row backward translation for *keyed* projections."""
        from repro.bx import delta

        key = self._effective_key(source_schema)
        delta.require_keyed_alignment(key, source_schema, self.name)
        return delta.translate_diff(
            view_diff,
            view_diff.table_name,
            lambda change: delta.projection_put_change(
                change, source_schema, self.columns,
                self.on_delete, self.on_insert, self.name),
        )

    # ------------------------------------------------------------------- put

    def put(self, source: Table, view: Table) -> Table:
        self._check_view_shape(view)
        key = self._effective_key(source.schema)
        value_columns = [c for c in self.columns if c not in key]

        view_by_key: Dict[Tuple, Dict] = {}
        for row in view:
            marker = tuple(row[k] for k in key)
            existing = view_by_key.get(marker)
            candidate = row.project(self.columns).to_dict()
            if existing is not None and existing != candidate:
                raise ViewShapeError(
                    f"view {view.name!r} has conflicting rows for key {marker!r}"
                )
            view_by_key[marker] = candidate

        new_rows: List[Dict] = []
        matched_keys = set()
        for row in source:
            marker = tuple(row[k] for k in key)
            if marker in view_by_key:
                matched_keys.add(marker)
                updates = {c: view_by_key[marker][c] for c in value_columns}
                new_rows.append(row.merged(updates).to_dict())
            else:
                # The view no longer contains this key.
                if self.on_delete is DeletePolicy.DELETE:
                    continue
                raise PutConflictError(
                    f"view {view.name!r} dropped key {marker!r} but the lens forbids deletions"
                )

        for marker, projected in view_by_key.items():
            if marker in matched_keys:
                continue
            if self.on_insert is InsertPolicy.FORBID:
                raise PutConflictError(
                    f"view {view.name!r} introduced key {marker!r} but the lens forbids insertions"
                )
            fresh = {c.name: None for c in source.schema.columns}
            fresh.update(projected)
            new_rows.append(fresh)

        return Table(source.name, source.schema, new_rows)

    # --------------------------------------------------------------- helpers

    def _check_view_shape(self, view: Table) -> None:
        view_columns = set(view.schema.column_names)
        expected = set(self.columns)
        if view_columns != expected:
            raise ViewShapeError(
                f"view {view.name!r} has columns {sorted(view_columns)}, "
                f"lens expects {sorted(expected)}"
            )

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {
                "columns": list(self.columns),
                "view_key": list(self.view_key) if self.view_key else None,
                "view_name": self.view_name,
                "on_delete": self.on_delete.value,
                "on_insert": self.on_insert.value,
            }
        )
        return description
