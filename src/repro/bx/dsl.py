"""A declarative DSL for defining shared views and deriving their lenses.

A sharing agreement in the paper specifies "the structure of the shared
table" that the peers agreed on.  :class:`ViewSpec` is that structure as a
serialisable value: which source table, which columns, an optional row filter,
optional renaming, and the alignment key.  ``lens_from_spec`` turns a spec
into a concrete, composed lens; the same spec is stored in the smart contract
metadata so every node can reconstruct the lens identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import AgreementError
from repro.bx.compose import ComposeLens
from repro.bx.lens import DeletePolicy, InsertPolicy, Lens
from repro.bx.projection import ProjectionLens
from repro.bx.rename import RenameLens
from repro.bx.selection import SelectionLens
from repro.relational.predicates import Predicate


@dataclass(frozen=True)
class ViewSpec:
    """A declarative description of one shared view.

    Attributes
    ----------
    source_table:
        Name of the base table in the provider's local database (e.g. ``"D3"``).
    view_name:
        Name of the shared view table (e.g. ``"D31"``).
    columns:
        Projected columns, in the order the peers agreed on.
    view_key:
        Columns used to align rows in ``put``.  Defaults to the source
        primary key when omitted.
    where:
        Optional row filter (selection) applied before projection.
    rename:
        Optional column renaming applied after projection
        (source column name → shared column name).
    join_table / join_on / join_columns:
        Optional keyed equi-join with a reference table, applied between the
        selection and the projection: rows of the (filtered) source are
        enriched with ``join_columns`` of the ``join_table`` row whose
        primary key the ``join_on`` columns pin down (see
        :class:`~repro.bx.join.JoinLens`).  ``columns`` may then project
        enrichment columns alongside source columns.
    on_delete / on_insert:
        Policies for view-side deletions/insertions.
    """

    source_table: str
    view_name: str
    columns: Tuple[str, ...]
    view_key: Tuple[str, ...] = ()
    where: Optional[Predicate] = None
    rename: Dict[str, str] = field(default_factory=dict)
    join_table: Optional[str] = None
    join_on: Tuple[str, ...] = ()
    join_columns: Tuple[str, ...] = ()
    on_delete: DeletePolicy = DeletePolicy.DELETE
    on_insert: InsertPolicy = InsertPolicy.INSERT_WITH_NULLS

    def __post_init__(self) -> None:
        if not self.columns:
            raise AgreementError("a view spec needs at least one column")
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "view_key", tuple(self.view_key))
        object.__setattr__(self, "rename", dict(self.rename))
        object.__setattr__(self, "join_on", tuple(self.join_on))
        object.__setattr__(self, "join_columns", tuple(self.join_columns))
        if self.join_table is not None and (not self.join_on or not self.join_columns):
            raise AgreementError(
                "a join spec needs both join_on and join_columns"
            )

    @property
    def shared_columns(self) -> Tuple[str, ...]:
        """Column names as they appear in the shared view (after renaming)."""
        return tuple(self.rename.get(c, c) for c in self.columns)

    def to_dict(self) -> dict:
        payload = {
            "source_table": self.source_table,
            "view_name": self.view_name,
            "columns": list(self.columns),
            "view_key": list(self.view_key),
            "where": self.where.to_dict() if self.where is not None else None,
            "rename": dict(self.rename),
            "on_delete": self.on_delete.value,
            "on_insert": self.on_insert.value,
        }
        if self.join_table is not None:
            payload["join_table"] = self.join_table
            payload["join_on"] = list(self.join_on)
            payload["join_columns"] = list(self.join_columns)
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "ViewSpec":
        return ViewSpec(
            source_table=payload["source_table"],
            view_name=payload["view_name"],
            columns=tuple(payload["columns"]),
            view_key=tuple(payload.get("view_key", ())),
            where=Predicate.from_dict(payload["where"]) if payload.get("where") else None,
            rename=dict(payload.get("rename", {})),
            join_table=payload.get("join_table"),
            join_on=tuple(payload.get("join_on", ())),
            join_columns=tuple(payload.get("join_columns", ())),
            on_delete=DeletePolicy(payload.get("on_delete", "delete")),
            on_insert=InsertPolicy(payload.get("on_insert", "insert_with_nulls")),
        )


def lens_from_spec(spec: ViewSpec, resolve_table=None) -> Lens:
    """Build the concrete lens a :class:`ViewSpec` describes.

    Layering (innermost first): selection (if any) → join (if any) →
    projection → rename (if any).  The composed lens carries the spec's view
    name so produced tables are named correctly.  ``resolve_table`` (table
    name → live :class:`~repro.relational.table.Table`) is only needed for
    join specs; it binds the lens to the provider's database.
    """
    inner_name = spec.view_name if not spec.rename else None
    projection = ProjectionLens(
        columns=spec.columns,
        view_key=spec.view_key or None,
        view_name=inner_name,
        on_delete=spec.on_delete,
        on_insert=spec.on_insert,
    )
    lens: Lens = projection
    if spec.join_table is not None:
        from repro.bx.join import JoinLens

        join = JoinLens(
            table=spec.join_table,
            on=spec.join_on,
            columns=spec.join_columns,
            resolve_table=resolve_table,
            on_delete=spec.on_delete,
            on_insert=spec.on_insert,
        )
        lens = ComposeLens(join, projection, view_name=inner_name)
    if spec.where is not None:
        selection = SelectionLens(
            spec.where,
            on_delete=spec.on_delete,
            on_insert=spec.on_insert,
        )
        lens = ComposeLens(selection, lens, view_name=inner_name)
    if spec.rename:
        rename = RenameLens(spec.rename, view_name=spec.view_name)
        lens = ComposeLens(lens, rename, view_name=spec.view_name)
    lens.name = spec.view_name
    return lens
