"""A registry of named BX programs (``BX13``, ``BX23``, ``BX31``, ``BX32``...).

The paper names each bidirectional program after the source/view pair it
synchronises; a peer's database manager looks the program up by the shared
table it needs to refresh (``get``) or to reflect (``put``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import UnknownLensError
from repro.bx.dsl import ViewSpec, lens_from_spec
from repro.bx.lens import Lens
from repro.relational.table import Table


@dataclass(frozen=True)
class BXProgram:
    """A named bidirectional program tying a source table to a shared view."""

    name: str
    source_table: str
    view_name: str
    lens: Lens
    spec: Optional[ViewSpec] = None

    def get(self, source: Table) -> Table:
        """Run the forward direction (derive the shared view)."""
        return self.lens.get(source)

    def put(self, source: Table, view: Table) -> Table:
        """Run the backward direction (reflect view changes into the source)."""
        return self.lens.put(source, view)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "source_table": self.source_table,
            "view_name": self.view_name,
            "lens": self.lens.describe(),
            "spec": self.spec.to_dict() if self.spec is not None else None,
        }


class BXRegistry:
    """All BX programs known to one peer, indexed by name and by view."""

    def __init__(self) -> None:
        self._by_name: Dict[str, BXProgram] = {}
        self._by_view: Dict[str, str] = {}

    def register(self, name: str, source_table: str, view_name: str, lens: Lens,
                 spec: Optional[ViewSpec] = None) -> BXProgram:
        """Register a BX program under ``name`` (e.g. ``"BX13"``)."""
        program = BXProgram(name=name, source_table=source_table, view_name=view_name,
                            lens=lens, spec=spec)
        self._by_name[name] = program
        self._by_view[view_name] = name
        return program

    def register_spec(self, name: str, spec: ViewSpec,
                      resolve_table=None) -> BXProgram:
        """Register a BX program built from a declarative :class:`ViewSpec`.

        ``resolve_table`` binds join specs to the provider's live database
        (see :func:`~repro.bx.dsl.lens_from_spec`).
        """
        return self.register(
            name=name,
            source_table=spec.source_table,
            view_name=spec.view_name,
            lens=lens_from_spec(spec, resolve_table=resolve_table),
            spec=spec,
        )

    def get(self, name: str) -> BXProgram:
        """Look up a program by its BX name."""
        if name not in self._by_name:
            raise UnknownLensError(f"no BX program named {name!r}")
        return self._by_name[name]

    def for_view(self, view_name: str) -> BXProgram:
        """Look up the program that maintains ``view_name``."""
        if view_name not in self._by_view:
            raise UnknownLensError(f"no BX program maintains view {view_name!r}")
        return self._by_name[self._by_view[view_name]]

    def programs_for_source(self, source_table: str) -> Tuple[BXProgram, ...]:
        """All programs deriving views from ``source_table``.

        Used by step 6 of Fig. 5: after a source is updated through one view's
        ``put``, the peer must check every *other* view of the same source for
        overlapping data that needs re-sharing.
        """
        return tuple(p for p in self._by_name.values() if p.source_table == source_table)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[BXProgram]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)
