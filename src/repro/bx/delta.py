"""Incremental (delta) evaluation of lenses and queries.

The paper's update workflow (Fig. 5) transmits only row-level diffs between
peers, yet the seed reproduction re-ran every ``get``/``put`` over whole
tables at each propagation leg.  This module is the core of the delta
engine: it translates a :class:`~repro.relational.diff.TableDiff` *through*
a transformation, change by change, without materialising any table.

Every lens combinator implements

* ``get_delta(source_schema, source_diff) -> view_diff`` — the forward
  translation (what the derived view undergoes when the source changes), and
* ``put_delta(source_schema, view_diff) -> source_diff`` — the backward
  translation (what the source undergoes when the view changes),

using the helpers below.  When no sound row-level translation exists the
combinator raises :class:`~repro.errors.DeltaUnsupported` and the caller
falls back to the full ``get``/``put``.  The fallback conditions are:

* **functional projections** — the view's alignment key is not the source
  primary key, so one view row summarises many source rows and a single
  source change can flip a view row's support count;
* **selection predicates over hidden columns** — ``put_delta`` cannot check
  the predicate on a view change whose images lack a referenced column
  (projections hide columns from the images);
* **non-keyed joins** — when the join columns do not pin down the reference
  side's primary key, one input row feeds many output rows (multiplicity)
  and no row-level translation exists.  *Keyed* equi-joins (reference
  primary key ⊆ join columns) translate row by row via
  :func:`join_get_change` / :func:`join_put_change`;
* **keyless diffs** — positional diffs carry no stable row identity.

The helpers are deliberately table-free: both directions need only the
source *schema*, which lets :class:`~repro.bx.compose.ComposeLens` chain
them without materialising the intermediate table.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import DeltaUnsupported, PutConflictError, ViewShapeError
from repro.bx.lens import DeletePolicy, InsertPolicy
from repro.relational.diff import RowChange, TableDiff
from repro.relational.predicates import Predicate, columns_referenced
from repro.relational.schema import Schema

__all__ = [
    "DeltaUnsupported",
    "complete_images",
    "empty_diff",
    "get_delta",
    "join_get_change",
    "join_put_change",
    "put_delta",
    "projection_get_change",
    "projection_put_change",
    "renamed_change",
    "require_keyed_alignment",
    "selection_get_change",
    "selection_put_change",
    "translate_diff",
]


def empty_diff(table_name: str) -> TableDiff:
    """A diff with no changes."""
    return TableDiff(table_name=table_name, changes=())


def get_delta(lens, source_schema: Schema, source_diff: TableDiff) -> TableDiff:
    """Translate ``source_diff`` forward through ``lens`` (convenience form)."""
    return lens.get_delta(source_schema, source_diff)


def put_delta(lens, source_schema: Schema, view_diff: TableDiff) -> TableDiff:
    """Translate ``view_diff`` backward through ``lens`` (convenience form)."""
    return lens.put_delta(source_schema, view_diff)


def require_keyed_alignment(effective_key: Sequence[str], source_schema: Schema,
                            lens_name: str) -> None:
    """Reject delta translation unless the view aligns rows by the source key.

    When the alignment key *is* the source primary key, source rows and view
    rows correspond one-to-one and every change translates row by row.  Any
    other (functional) alignment folds several source rows into one view row,
    so support counts matter and only a full recomputation is sound.
    """
    if (not source_schema.primary_key
            or tuple(effective_key) != tuple(source_schema.primary_key)):
        raise DeltaUnsupported(
            f"lens {lens_name!r} aligns by {tuple(effective_key)!r}, not the source "
            f"primary key {tuple(source_schema.primary_key)!r}; a single source change "
            "can alter a view row's support count, so fall back to the full path"
        )


def _image(values: Optional[Mapping[str, object]], columns: Sequence[str],
           lens_name: str) -> Dict[str, object]:
    """Project a change image onto ``columns``, failing the delta when the
    image does not carry one of them."""
    if values is None:
        raise DeltaUnsupported(f"lens {lens_name!r}: change image is missing")
    try:
        return {column: values[column] for column in columns}
    except KeyError as exc:
        raise DeltaUnsupported(
            f"lens {lens_name!r}: change image lacks column {exc.args[0]!r}"
        ) from None


# --------------------------------------------------------------------- rename

def renamed_change(change: RowChange, mapping: Mapping[str, str]) -> RowChange:
    """Rename the columns of one change (key values are unaffected)."""
    def rename(values: Optional[Mapping[str, object]]) -> Optional[Dict[str, object]]:
        if values is None:
            return None
        return {mapping.get(name, name): value for name, value in values.items()}

    return RowChange(
        kind=change.kind,
        key=change.key,
        before=rename(change.before),
        after=rename(change.after),
        changed_columns=tuple(mapping.get(c, c) for c in change.changed_columns),
    )


# ------------------------------------------------------------------ selection

def selection_get_change(change: RowChange, predicate: Predicate) -> Optional[RowChange]:
    """Translate one source change through a selection's forward direction.

    A row entering the visible set becomes an insert, a row leaving it a
    delete, and an invisible change disappears entirely.
    """
    if change.kind == "insert":
        return change if predicate.evaluate(change.after or {}) else None
    if change.kind == "delete":
        return change if predicate.evaluate(change.before or {}) else None
    visible_before = predicate.evaluate(change.before or {})
    visible_after = predicate.evaluate(change.after or {})
    if visible_before and visible_after:
        return change
    if visible_before:
        return RowChange("delete", change.key, change.before, None)
    if visible_after:
        return RowChange("insert", change.key, None, change.after)
    return None


def selection_put_change(change: RowChange, predicate: Predicate,
                         on_delete: DeletePolicy, on_insert: InsertPolicy,
                         lens_name: str) -> RowChange:
    """Translate one view change through a selection's backward direction.

    Mirrors :meth:`SelectionLens.put`: view rows must satisfy the predicate,
    and the delete/insert policies are enforced per change.  Raises
    :class:`DeltaUnsupported` when the predicate references a column the
    change images do not carry (an outer projection hid it).
    """
    if change.kind == "delete":
        if on_delete is DeletePolicy.FORBID:
            raise PutConflictError(
                f"view dropped key {change.key!r} but lens {lens_name!r} forbids deletions"
            )
        return change
    if change.kind == "insert" and on_insert is InsertPolicy.FORBID:
        raise PutConflictError(
            f"view introduced key {change.key!r} but lens {lens_name!r} forbids insertions"
        )
    after = change.after or {}
    missing = [c for c in columns_referenced(predicate) if c not in after]
    if missing:
        raise DeltaUnsupported(
            f"lens {lens_name!r}: cannot check the selection predicate on a change "
            f"whose image lacks column(s) {missing}"
        )
    if not predicate.evaluate(after):
        raise ViewShapeError(
            f"view row with key {change.key!r} violates the selection predicate of "
            f"{lens_name!r}; such an update cannot be reflected without breaking PutGet"
        )
    return change


# ----------------------------------------------------------------- projection

def projection_get_change(change: RowChange, columns: Sequence[str],
                          lens_name: str) -> Optional[RowChange]:
    """Translate one source change through a keyed projection's forward
    direction; returns None when no projected column changed."""
    if change.kind == "insert":
        return RowChange("insert", change.key, None,
                         _image(change.after, columns, lens_name))
    if change.kind == "delete":
        return RowChange("delete", change.key,
                         _image(change.before, columns, lens_name), None)
    projected_changed = tuple(c for c in change.changed_columns if c in columns)
    if not projected_changed:
        return None
    before = _image(change.before, columns, lens_name)
    after = _image(change.after, columns, lens_name)
    if before == after:
        return None
    return RowChange("update", change.key, before, after, projected_changed)


def projection_put_change(change: RowChange, source_schema: Schema,
                          columns: Sequence[str],
                          on_delete: DeletePolicy, on_insert: InsertPolicy,
                          lens_name: str) -> RowChange:
    """Translate one view change through a keyed projection's backward
    direction.

    Updates carry only the projected columns (hidden source columns are
    untouched); inserts fill hidden columns with NULLs, exactly like
    :meth:`ProjectionLens.put`.
    """
    if change.kind == "delete":
        if on_delete is DeletePolicy.FORBID:
            raise PutConflictError(
                f"view dropped key {change.key!r} but lens {lens_name!r} forbids deletions"
            )
        return RowChange("delete", change.key,
                         _image(change.before, columns, lens_name), None)
    if change.kind == "insert":
        if on_insert is InsertPolicy.FORBID:
            raise PutConflictError(
                f"view introduced key {change.key!r} but lens {lens_name!r} "
                "forbids insertions"
            )
        fresh: Dict[str, object] = {c.name: None for c in source_schema.columns}
        fresh.update(_image(change.after, columns, lens_name))
        return RowChange("insert", change.key, None, fresh)
    return RowChange(
        "update", change.key,
        _image(change.before, columns, lens_name),
        _image(change.after, columns, lens_name),
        tuple(change.changed_columns),
    )


# ----------------------------------------------------------------------- join

def _join_enriched(values: Optional[Mapping[str, object]],
                   enrich_columns: Sequence[str],
                   match: Mapping[str, object],
                   lens_name: str) -> Dict[str, object]:
    """One source image plus the enrichment columns of its matched
    reference row."""
    if values is None:
        raise DeltaUnsupported(f"lens {lens_name!r}: change image is missing")
    enriched = dict(values)
    for column in enrich_columns:
        enriched[column] = match[column]
    return enriched


def join_get_change(change: RowChange, enrich_columns: Sequence[str],
                    lookup, lens_name: str) -> Optional[RowChange]:
    """Translate one keyed source change through an enriching equi-join's
    forward direction.

    ``lookup`` maps a source-row image to its matched reference row, or
    ``None`` when the join hides the row (no reference match); it raises
    :class:`DeltaUnsupported` when the image does not carry a join column.
    Because the reference side is unchanged during the translation (a
    reference-table diff is rejected upstream), the four selection-style
    cases apply: a row gaining a match becomes an insert, one losing its
    match a delete, and an unmatched change disappears.
    """
    if change.kind == "insert":
        match = lookup(_require_image(change.after, lens_name))
        if match is None:
            return None
        return RowChange("insert", change.key, None,
                         _join_enriched(change.after, enrich_columns, match, lens_name))
    if change.kind == "delete":
        match = lookup(_require_image(change.before, lens_name))
        if match is None:
            return None
        return RowChange("delete", change.key,
                         _join_enriched(change.before, enrich_columns, match, lens_name),
                         None)
    before_match = lookup(_require_image(change.before, lens_name))
    after_match = lookup(_require_image(change.after, lens_name))
    if before_match is not None and after_match is not None:
        before = _join_enriched(change.before, enrich_columns, before_match, lens_name)
        after = _join_enriched(change.after, enrich_columns, after_match, lens_name)
        if before == after:
            return None
        changed = tuple(change.changed_columns) + tuple(
            c for c in enrich_columns
            if c not in change.changed_columns and before[c] != after[c])
        return RowChange("update", change.key, before, after, changed)
    if before_match is not None:
        return RowChange(
            "delete", change.key,
            _join_enriched(change.before, enrich_columns, before_match, lens_name),
            None)
    if after_match is not None:
        return RowChange(
            "insert", change.key, None,
            _join_enriched(change.after, enrich_columns, after_match, lens_name))
    return None


def join_put_change(change: RowChange, source_columns: Sequence[str],
                    enrich_columns: Sequence[str], lookup,
                    on_delete: DeletePolicy, on_insert: InsertPolicy,
                    lens_name: str) -> Optional[RowChange]:
    """Translate one view change through an enriching equi-join's backward
    direction.

    The enrichment columns are read-only: a surviving view row must still
    join a reference row, and any enrichment value it carries must agree
    with that row (stale reference data cannot be written back through the
    view).  Deletions and insertions honour the lens policies; an update
    touching only enrichment columns translates to nothing.
    """
    source_set = set(source_columns)
    if change.kind == "delete":
        if on_delete is DeletePolicy.FORBID:
            raise PutConflictError(
                f"view dropped key {change.key!r} but lens {lens_name!r} forbids deletions"
            )
        before = _require_image(change.before, lens_name)
        return RowChange("delete", change.key,
                         {c: v for c, v in before.items() if c in source_set}, None)
    after = _require_image(change.after, lens_name)
    match = lookup(after)
    if match is None:
        raise ViewShapeError(
            f"view row with key {change.key!r} joins no reference row under lens "
            f"{lens_name!r}; such an update cannot be reflected without breaking PutGet"
        )
    for column in enrich_columns:
        if column in after and after[column] is not None and after[column] != match[column]:
            raise ViewShapeError(
                f"view row with key {change.key!r} rewrites read-only join column "
                f"{column!r} of lens {lens_name!r} (reference says {match[column]!r}, "
                f"view says {after[column]!r})"
            )
    if change.kind == "insert":
        if on_insert is InsertPolicy.FORBID:
            raise PutConflictError(
                f"view introduced key {change.key!r} but lens {lens_name!r} "
                "forbids insertions"
            )
        return RowChange("insert", change.key, None,
                         _image(after, source_columns, lens_name))
    changed = tuple(c for c in change.changed_columns if c in source_set)
    if not changed:
        return None
    before_full = _require_image(change.before, lens_name)
    before = {c: v for c, v in before_full.items() if c in source_set}
    after_source = {c: v for c, v in after.items() if c in source_set}
    if before == after_source:
        return None
    return RowChange("update", change.key, before, after_source, changed)


def _require_image(values: Optional[Mapping[str, object]],
                   lens_name: str) -> Mapping[str, object]:
    if values is None:
        raise DeltaUnsupported(f"lens {lens_name!r}: change image is missing")
    return values


# ------------------------------------------------------------------ utilities

def translate_diff(diff: TableDiff, table_name: str, translate) -> TableDiff:
    """Map ``translate`` over every change, dropping None results."""
    changes: Tuple[RowChange, ...] = tuple(
        translated
        for translated in (translate(change) for change in diff.changes)
        if translated is not None
    )
    return TableDiff(table_name=table_name, changes=changes)


def complete_images(table, diff: TableDiff) -> TableDiff:
    """Fill in the hidden-column values of a diff's update/delete images from
    the (pre-apply) ``table``, via O(1) keyed lookups.

    ``put_delta`` through a projection necessarily produces images restricted
    to the projected columns.  Completing them against the live source makes
    the diff self-contained, so dependent lenses (Fig. 5 step 6) can
    translate it forward without a fallback.
    """
    changes = []
    for change in diff.changes:
        if change.kind == "insert" or not table.contains_key(change.key):
            changes.append(change)
            continue
        current = table.get(change.key).to_dict()
        if change.kind == "delete":
            changes.append(RowChange("delete", change.key, current, None))
            continue
        after = dict(current)
        after.update({c: (change.after or {})[c] for c in change.changed_columns})
        changes.append(RowChange("update", change.key, current, after,
                                 change.changed_columns))
    return TableDiff(table_name=diff.table_name, changes=tuple(changes))
