"""Bidirectional transformations (asymmetric lenses) over relational tables.

This subpackage implements the BX machinery of §II-B of the paper: a lens
between a *source* table and a *view* table exposes

* ``get(source) -> view`` — the forward transformation, and
* ``put(source, view) -> source'`` — the backward transformation,

and is *well-behaved* when the GetPut and PutGet round-tripping laws hold:

* ``put(s, get(s)) == s``            (GetPut)
* ``get(put(s, v)) == v``            (PutGet)

The concrete lenses provided are those the paper's views need — projection
(with key-based or functional-dependency-based alignment), selection, rename,
and composition — plus executable law checking (:mod:`repro.bx.laws`), a
declarative view-definition DSL (:mod:`repro.bx.dsl`), a registry of named
BX programs such as ``BX13`` / ``BX23`` / ``BX31`` / ``BX32``
(:mod:`repro.bx.registry`), and the incremental delta engine
(:mod:`repro.bx.delta`): every lens also exposes ``get_delta``/``put_delta``
translating row-level :class:`~repro.relational.diff.TableDiff`\\ s through
the transformation in O(changed rows), raising
:class:`~repro.errors.DeltaUnsupported` where only a full recomputation is
sound.
"""

from repro.errors import DeltaUnsupported
from repro.bx.lens import Lens, DeletePolicy, InsertPolicy
from repro.bx.projection import ProjectionLens
from repro.bx.selection import SelectionLens
from repro.bx.rename import RenameLens
from repro.bx.compose import ComposeLens, IdentityLens
from repro.bx.join import JoinLens
from repro.bx.delta import get_delta, put_delta
from repro.bx.laws import LawReport, check_get_put, check_put_get, check_well_behaved
from repro.bx.dsl import ViewSpec, lens_from_spec
from repro.bx.registry import BXProgram, BXRegistry

__all__ = [
    "Lens",
    "DeletePolicy",
    "DeltaUnsupported",
    "InsertPolicy",
    "get_delta",
    "put_delta",
    "JoinLens",
    "ProjectionLens",
    "SelectionLens",
    "RenameLens",
    "ComposeLens",
    "IdentityLens",
    "LawReport",
    "check_get_put",
    "check_put_get",
    "check_well_behaved",
    "ViewSpec",
    "lens_from_spec",
    "BXProgram",
    "BXRegistry",
]
