"""Cross-peer coordination of shared-data operations (Fig. 4 and Fig. 5).

The :class:`UpdateCoordinator` drives the paper's protocols end to end:

* the **CRUD procedure** of Fig. 4 — a user executes an operation locally,
  requests permission from the smart contract, sharing peers are notified,
  fetch the newest shared data, the metadata is updated, and every sharing
  peer runs its BX program to reflect the change into its complete data;
* the **11-step update workflow** of Fig. 5 — including step 6, where the
  peer that absorbed an update checks whether *other* shared pieces derived
  from the same base table changed and, if so, propagates to those peers too
  (the Researcher → Doctor → Patient cascade).

Every run produces a :class:`WorkflowTrace` whose steps mirror the numbered
steps of the figures, with simulated timestamps and block numbers, so the
benchmarks and the examples can print the exact choreography.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.crypto.hashing import hash_payload
from repro.errors import ReproError, UpdateRejected, WorkflowError
from repro.core.sharing import SharingAgreement
from repro.chaos import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER
from repro.relational.diff import TableDiff, diff_tables
from repro.relational.table import Table

#: Callback fired after a shared table changed: ``(metadata_id, operation, peers)``.
SharedChangeListener = Callable[[str, str, Tuple[str, str]], None]

#: Callback fired with the row-level view diff of the change (None when the
#: change is not describable as a diff, e.g. a failed half-installed commit):
#: ``(metadata_id, operation, peers, view_diff)``.
SharedDiffListener = Callable[[str, str, Tuple[str, str], Optional[TableDiff]], None]


@dataclass(frozen=True)
class WorkflowStep:
    """One numbered step of a workflow run."""

    index: int
    actor: str
    action: str
    description: str
    simulated_time: float
    block_number: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "actor": self.actor,
            "action": self.action,
            "description": self.description,
            "simulated_time": self.simulated_time,
            "block_number": self.block_number,
            "data": dict(self.data),
        }

    @staticmethod
    def from_dict(payload: dict) -> "WorkflowStep":
        return WorkflowStep(
            index=int(payload["index"]),
            actor=payload["actor"],
            action=payload["action"],
            description=payload["description"],
            simulated_time=float(payload["simulated_time"]),
            block_number=payload.get("block_number"),
            data=dict(payload.get("data", {})),
        )


@dataclass
class WorkflowTrace:
    """The full record of one shared-data operation and its propagation."""

    initiator: str
    metadata_id: str
    operation: str
    steps: List[WorkflowStep] = field(default_factory=list)
    succeeded: bool = False
    error: Optional[str] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    blocks_created: int = 0
    cascaded_metadata_ids: List[str] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """End-to-end simulated latency of the operation."""
        return self.finished_at - self.started_at

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def add_step(self, actor: str, action: str, description: str, clock_now: float,
                 block_number: Optional[int] = None, **data: Any) -> WorkflowStep:
        step = WorkflowStep(
            index=len(self.steps) + 1,
            actor=actor,
            action=action,
            description=description,
            simulated_time=clock_now,
            block_number=block_number,
            data=dict(data),
        )
        self.steps.append(step)
        return step

    def to_dict(self) -> dict:
        return {
            "initiator": self.initiator,
            "metadata_id": self.metadata_id,
            "operation": self.operation,
            "steps": [step.to_dict() for step in self.steps],
            "succeeded": self.succeeded,
            "error": self.error,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "blocks_created": self.blocks_created,
            "cascaded_metadata_ids": list(self.cascaded_metadata_ids),
        }

    @staticmethod
    def from_dict(payload: dict) -> "WorkflowTrace":
        return WorkflowTrace(
            initiator=payload["initiator"],
            metadata_id=payload["metadata_id"],
            operation=payload["operation"],
            steps=[WorkflowStep.from_dict(step) for step in payload.get("steps", ())],
            succeeded=bool(payload.get("succeeded", False)),
            error=payload.get("error"),
            started_at=float(payload.get("started_at", 0.0)),
            finished_at=float(payload.get("finished_at", 0.0)),
            blocks_created=int(payload.get("blocks_created", 0)),
            cascaded_metadata_ids=list(payload.get("cascaded_metadata_ids", ())),
        )

    def pretty(self) -> str:
        """A plain-text rendering of the trace, step by step."""
        lines = [
            f"Workflow {self.operation!r} on {self.metadata_id!r} initiated by {self.initiator}",
            f"  succeeded={self.succeeded} elapsed={self.elapsed:.2f}s "
            f"blocks={self.blocks_created} steps={self.step_count}",
        ]
        for step in self.steps:
            block = f" [block #{step.block_number}]" if step.block_number is not None else ""
            lines.append(
                f"  {step.index:>2}. t={step.simulated_time:8.2f}s {step.actor:<12} "
                f"{step.action:<22} {step.description}{block}"
            )
        if self.error:
            lines.append(f"  ERROR: {self.error}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EntryEdit:
    """One entry-level edit of a shared table, batchable with others.

    ``op`` is ``"update"``, ``"create"`` or ``"delete"``.  Updates and deletes
    identify their row by primary ``key``; updates and creates carry the new
    ``values``.
    """

    op: str
    key: Tuple[Any, ...] = ()
    values: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in ("update", "create", "delete"):
            raise ValueError(f"unknown edit op {self.op!r}")
        object.__setattr__(self, "key", tuple(self.key))
        object.__setattr__(self, "values", dict(self.values))

    def to_dict(self) -> dict:
        return {"op": self.op, "key": list(self.key), "values": dict(self.values)}

    @staticmethod
    def from_dict(payload: dict) -> "EntryEdit":
        return EntryEdit(op=payload["op"], key=tuple(payload.get("key", ())),
                         values=dict(payload.get("values", {})))


@dataclass(frozen=True)
class BatchGroup:
    """A set of compatible edits on one shared table, folded into a single
    diff and a single on-chain request.

    Usually all edits come from ``peer``.  A *cross-peer folded* group also
    carries edits by the other party of the agreement on **disjoint**
    attribute sets and distinct rows — ``edit_peers`` records each edit's
    author, aligned with ``edits``; ``peer`` stays the requester who submits
    the merged diff on-chain (via ``request_folded_update``).
    """

    peer: str
    metadata_id: str
    edits: Tuple[EntryEdit, ...]
    #: Author of each edit, aligned with ``edits``; defaults to ``peer``.
    edit_peers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "edits", tuple(self.edits))
        if not self.edits:
            raise ValueError("a batch group needs at least one edit")
        edit_peers = tuple(self.edit_peers) or (self.peer,) * len(self.edits)
        if len(edit_peers) != len(self.edits):
            raise ValueError("edit_peers must align with edits")
        object.__setattr__(self, "edit_peers", edit_peers)

    @property
    def contributors(self) -> Tuple[str, ...]:
        """Distinct edit authors, requester first, in first-edit order."""
        ordered = [self.peer]
        for peer in self.edit_peers:
            if peer not in ordered:
                ordered.append(peer)
        return tuple(ordered)

    @property
    def folded(self) -> bool:
        """True when edits from more than one peer were folded together."""
        return len(self.contributors) > 1

    @property
    def operation(self) -> str:
        """The contract operation the group maps to (homogeneous op, else update)."""
        ops = {edit.op for edit in self.edits}
        return self.edits[0].op if len(ops) == 1 else "update"


@dataclass
class BatchCommitResult:
    """Outcome of committing one batch of groups through shared consensus rounds.

    ``consensus_rounds`` counts the mining rounds the batch itself required
    (one for every request transaction together, one for every acknowledgement
    together); cascaded propagations mine their own rounds and account their
    blocks on the individual traces.
    """

    traces: List[WorkflowTrace] = field(default_factory=list)
    blocks_created: int = 0
    consensus_rounds: int = 0
    #: Per group (aligned with ``traces``), one entry per edit: None when the
    #: edit was folded into the group's diff, else why it was dropped.  An
    #: invalid edit is rejected alone — it never poisons its group mates.
    edit_errors: List[List[Optional[str]]] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return sum(1 for trace in self.traces if trace.succeeded)

    @property
    def rejected(self) -> int:
        return sum(1 for trace in self.traces if not trace.succeeded)


class UpdateCoordinator:
    """Runs shared-data operations across the whole system."""

    def __init__(self, system: "MedicalDataSharingSystem"):  # noqa: F821 (forward ref)
        self.system = system
        self._change_listeners: List[SharedChangeListener] = []
        self._diff_listeners: List[SharedDiffListener] = []
        #: When true, propagation legs push row-level diffs through lenses,
        #: indexes and caches instead of recomputing whole tables.
        self.delta_enabled = bool(getattr(system.config, "delta_propagation", True))
        #: When true and the ledger has more than one consensus lane, the
        #: legs of one cascade commit through *shared* request/ack rounds and
        #: their ledger-free middles run on executor threads grouped by lane
        #: (see :meth:`_cascade_parallel`).  Single-lane systems always take
        #: the sequential path, byte-identical to the seed.
        self.parallel_enabled = bool(getattr(system.config, "parallel_cascades", True))
        #: Set by :meth:`MedicalDataSharingSystem.attach_tracer`; spans cover
        #: consensus rounds and every delta-propagation leg.
        self.tracer = NULL_TRACER
        #: Chaos hooks, set by :meth:`MedicalDataSharingSystem.attach_chaos`:
        #: the injector can fail a whole batch (``commit.fail``), one group's
        #: contract step (``contract.fail``), or a mining round
        #: (``consensus.fail`` / ``consensus.slow``); the optional retrier
        #: re-runs failed mining rounds with deterministic backoff.
        self.injector = NULL_INJECTOR
        self.retrier = None

    # ------------------------------------------------------------ change hooks

    def subscribe_shared_change(self, listener: SharedChangeListener) -> None:
        """Register a callback fired after every successful propagation of a
        shared-table change (including each cascaded Fig. 5 leg).

        The gateway's view cache uses this to invalidate materialised views.
        """
        self._change_listeners.append(listener)

    def subscribe_shared_diff(self, listener: SharedDiffListener) -> None:
        """Like :meth:`subscribe_shared_change`, but the listener also receives
        the row-level :class:`TableDiff` the shared table underwent (or None
        when the change cannot be described as a diff, e.g. a commit that
        failed after partially installing).

        The gateway's view cache uses this to *patch* cached views row by row
        instead of dropping them.
        """
        self._diff_listeners.append(listener)

    def _notify_change(self, metadata_id: str, operation: str,
                       peers: Tuple[str, str],
                       view_diff: Optional[TableDiff] = None) -> None:
        for listener in self._change_listeners:
            listener(metadata_id, operation, peers)
        for listener in self._diff_listeners:
            listener(metadata_id, operation, peers, view_diff)

    # --------------------------------------------------------------- utilities

    @property
    def _clock(self):
        return self.system.simulator.clock

    def _peer(self, name: str):
        return self.system.peer(name)

    def _app(self, name: str):
        return self.system.server_app(name)

    def _mine(self) -> int:
        """Mine pending transactions; returns how many blocks were produced.

        Fault probes run *before* the mining step, so a retried round never
        double-mines: an injected ``consensus.fail`` (a transient fault) is
        absorbed by the retrier when one is attached, and ``consensus.slow``
        stretches the round by advancing the sim clock.
        """
        def one_round() -> int:
            self.injector.maybe_fail("consensus.fail")
            slow = self.injector.delay("consensus.slow")
            if slow > 0:
                self._clock.advance(slow)
            return len(self.system.simulator.mine())

        if self.retrier is not None:
            return self.retrier.call(one_round, label="consensus.round")
        return one_round()

    def _submit_and_mine(self, peer_name: str, method: str, args: Mapping[str, Any]):
        """Submit a signed contract call from ``peer_name`` and mine it.

        Returns ``(receipt, blocks_created)`` using the submitting peer's own
        node replica for the receipt lookup.
        """
        app = self._app(peer_name)
        tx = app.build_contract_call(method, args)
        with self.tracer.span("consensus.round", phase="sequential",
                              method=method) as span:
            self.system.simulator.submit_transaction(app.node.name, tx)
            blocks = self._mine()
            span.annotate(blocks=blocks)
        receipt = app.node.chain.receipt(tx.tx_hash)
        return receipt, blocks

    @staticmethod
    def _diff_hash(diff: TableDiff) -> str:
        return hash_payload(diff.to_dict())

    @staticmethod
    def _changed_attributes(diff: TableDiff, agreement: SharingAgreement) -> Tuple[str, ...]:
        """The shared attributes an operation touches (what permission is checked on)."""
        shared = set(agreement.shared_columns)
        return tuple(column for column in diff.touched_columns if column in shared)

    def _fold_contributions(self, group: BatchGroup, diff: TableDiff,
                            agreement: SharingAgreement,
                            edit_errors: Sequence[Optional[str]],
                            diff_hash: str) -> List[dict]:
        """Per-contributor ``{"peer": address, "changed_attributes": [...]}``
        entries of a cross-peer folded group.

        Each contributor's attributes are the columns its *applied* update
        edits declared, restricted to the columns the merged diff actually
        touched (a no-op edit contributes nothing, exactly as the diff-based
        attribute computation of the unfolded path).  The scheduler's fold
        rule guarantees the declared sets are disjoint between contributors.
        Contributors other than the requester sign an attestation over their
        attributes and the merged diff hash — the contract refuses a folded
        request whose foreign contributions are unattested, so the requester
        cannot write through another peer's permissions.
        """
        from repro.contracts.sharing_contract import fold_attestation_payload
        from repro.crypto.signatures import sign

        touched = set(diff.touched_columns) & set(agreement.shared_columns)
        columns_by_peer: Dict[str, List[str]] = {}
        for index, (edit, author) in enumerate(zip(group.edits, group.edit_peers)):
            if index < len(edit_errors) and edit_errors[index] is not None:
                continue
            collected = columns_by_peer.setdefault(author, [])
            for column in edit.values:
                if column in touched and column not in collected:
                    collected.append(column)
        contributions = []
        for peer_name, columns in columns_by_peer.items():
            if not columns:
                continue
            peer = self._peer(peer_name)
            contribution = {"peer": peer.address, "changed_attributes": columns}
            if peer_name != group.peer:
                payload = fold_attestation_payload(group.metadata_id, diff_hash,
                                                   columns)
                contribution["public_key"] = hex(peer.keypair.public_key)
                contribution["attestation"] = sign(peer.keypair, payload).to_dict()
            contributions.append(contribution)
        return contributions

    # ------------------------------------------------------------ read (Fig. 4)

    def read_shared_data(self, peer_name: str, metadata_id: str) -> Table:
        """Read = query the local database directly (no blockchain involvement)."""
        return self._peer(peer_name).shared_table(metadata_id).snapshot()

    # -------------------------------------------------------- update entry-point

    def propagate_local_change(self, peer_name: str, metadata_id: str) -> WorkflowTrace:
        """Fig. 5, researcher-style: the peer already updated its *local base
        table* and now propagates the change through the shared view.

        Step 1 regenerates the shared view with ``get``; the remaining steps
        follow the contract/notification/put protocol.
        """
        trace = WorkflowTrace(initiator=peer_name, metadata_id=metadata_id, operation="update",
                              started_at=self._clock.now())
        app = self._app(peer_name)
        diff = app.manager.pending_view_diff(metadata_id)
        trace.add_step(peer_name, "bx_get",
                       f"regenerate shared view from local base table "
                       f"({len(diff)} row change(s))", self._clock.now(),
                       rows_changed=len(diff))
        if diff.is_empty:
            trace.succeeded = True
            trace.finished_at = self._clock.now()
            return trace
        self._finish(trace, peer_name, metadata_id, "update", diff,
                     install_initiator_view=True, reflect_initiator_source=False)
        return trace

    def update_shared_entry(self, peer_name: str, metadata_id: str, key: Sequence[Any],
                            updates: Mapping[str, Any]) -> WorkflowTrace:
        """Fig. 4 entry-level update: the peer edits one row of the shared table.

        The change is validated locally, authorised on-chain, installed in the
        peer's stored shared table, reflected into the peer's own base table
        with ``put``, and propagated to the sharing peer.
        """
        trace = WorkflowTrace(initiator=peer_name, metadata_id=metadata_id, operation="update",
                              started_at=self._clock.now())
        peer = self._peer(peer_name)
        stored = peer.shared_table(metadata_id)
        if self.delta_enabled:
            # O(changed rows): validate the edit and build its diff directly,
            # without snapshotting the whole shared table.
            diff = stored.diff_for_update(key, updates)
            candidate = None
        else:
            candidate = stored.snapshot()
            candidate.update_by_key(key, updates)
            diff = diff_tables(stored, candidate)
        trace.add_step(peer_name, "local_edit",
                       f"edit shared entry {tuple(key)!r}: {dict(updates)!r}",
                       self._clock.now(), rows_changed=len(diff))
        if diff.is_empty:
            trace.succeeded = True
            trace.finished_at = self._clock.now()
            return trace
        self._finish(trace, peer_name, metadata_id, "update", diff,
                     install_initiator_view=True, reflect_initiator_source=True,
                     candidate_view=candidate)
        return trace

    def create_shared_entry(self, peer_name: str, metadata_id: str,
                            values: Mapping[str, Any]) -> WorkflowTrace:
        """Fig. 4 entry-level create: add a row to the shared table."""
        trace = WorkflowTrace(initiator=peer_name, metadata_id=metadata_id, operation="create",
                              started_at=self._clock.now())
        peer = self._peer(peer_name)
        stored = peer.shared_table(metadata_id)
        if self.delta_enabled:
            diff = stored.diff_for_insert(values)
            candidate = None
        else:
            candidate = stored.snapshot()
            candidate.insert(values)
            diff = diff_tables(stored, candidate)
        trace.add_step(peer_name, "local_edit", f"create shared entry {dict(values)!r}",
                       self._clock.now(), rows_changed=len(diff))
        self._finish(trace, peer_name, metadata_id, "create", diff,
                     install_initiator_view=True, reflect_initiator_source=True,
                     candidate_view=candidate)
        return trace

    def delete_shared_entry(self, peer_name: str, metadata_id: str,
                            key: Sequence[Any]) -> WorkflowTrace:
        """Fig. 4 entry-level delete: remove a row from the shared table."""
        trace = WorkflowTrace(initiator=peer_name, metadata_id=metadata_id, operation="delete",
                              started_at=self._clock.now())
        peer = self._peer(peer_name)
        stored = peer.shared_table(metadata_id)
        if self.delta_enabled:
            diff = stored.diff_for_delete(key)
            candidate = None
        else:
            candidate = stored.snapshot()
            candidate.delete_by_key(key)
            diff = diff_tables(stored, candidate)
        trace.add_step(peer_name, "local_edit", f"delete shared entry {tuple(key)!r}",
                       self._clock.now(), rows_changed=len(diff))
        self._finish(trace, peer_name, metadata_id, "delete", diff,
                     install_initiator_view=True, reflect_initiator_source=True,
                     candidate_view=candidate)
        return trace

    # ------------------------------------------------------- batched commits

    @staticmethod
    def _apply_edit(candidate: Table, edit: EntryEdit) -> None:
        if edit.op == "update":
            candidate.update_by_key(edit.key, edit.values)
        elif edit.op == "create":
            candidate.insert(edit.values)
        else:
            candidate.delete_by_key(edit.key)

    def update_shared_entries(self, peer_name: str, metadata_id: str,
                              edits: Sequence[EntryEdit]) -> WorkflowTrace:
        """Fold several entry-level edits on one shared table into a single
        protocol run: one diff, one contract request, one acknowledgement.

        This is the single-group form of batched commits — ``k`` edits cost
        the same two consensus rounds a lone :meth:`update_shared_entry` does.
        """
        group = BatchGroup(peer=peer_name, metadata_id=metadata_id, edits=tuple(edits))
        trace = WorkflowTrace(initiator=peer_name, metadata_id=metadata_id,
                              operation=group.operation, started_at=self._clock.now())
        peer = self._peer(peer_name)
        stored = peer.shared_table(metadata_id)
        candidate = stored.snapshot()
        for edit in group.edits:
            self._apply_edit(candidate, edit)
        diff = diff_tables(stored, candidate)
        trace.add_step(peer_name, "local_edit",
                       f"batch of {len(group.edits)} edit(s) on shared table",
                       self._clock.now(), rows_changed=len(diff), edits=len(group.edits))
        if diff.is_empty:
            trace.succeeded = True
            trace.finished_at = self._clock.now()
            return trace
        # In delta mode the diff (not the materialised candidate) is installed,
        # so the remaining legs stay O(changed rows).
        self._finish(trace, peer_name, metadata_id, group.operation, diff,
                     install_initiator_view=True, reflect_initiator_source=True,
                     candidate_view=None if self.delta_enabled else candidate)
        return trace

    def commit_entry_batch(self, groups: Sequence[BatchGroup]) -> BatchCommitResult:
        """Commit many groups through *shared* consensus rounds (the gateway's
        batched ledger commit).

        All groups' request transactions are submitted together and mined in
        one round, and all acknowledgements are mined in a second round — so a
        batch of N compatible groups costs two rounds instead of 2·N.  Groups
        must target distinct shared tables (the contract serialises operations
        per metadata entry through its pending-acknowledgement rule); the
        write scheduler guarantees this.

        A rejected or failed group never aborts the batch: its trace carries
        ``succeeded=False`` and the error, mirroring what the sequential path
        raises.
        """
        self.injector.maybe_fail("commit.fail")
        seen_ids = set()
        for group in groups:
            if group.metadata_id in seen_ids:
                raise WorkflowError(
                    f"batch contains two groups on shared table {group.metadata_id!r}; "
                    "same-table groups must be committed in separate batches"
                )
            seen_ids.add(group.metadata_id)

        result = BatchCommitResult()
        method_by_op = {"update": "request_update", "create": "request_create",
                        "delete": "request_delete"}

        # Phase A: validate every group locally and submit every request
        # transaction, then mine them all in one consensus round.  Requests
        # are gossiped as one batch (a single tx-batch flood) after each has
        # been ingested at its own peer's node for nonce accounting.
        prepared = []
        request_submissions: List[Tuple[str, Any]] = []
        for group in groups:
            trace = WorkflowTrace(initiator=group.peer, metadata_id=group.metadata_id,
                                  operation=group.operation, started_at=self._clock.now())
            result.traces.append(trace)
            edit_errors: List[Optional[str]] = [None] * len(group.edits)
            result.edit_errors.append(edit_errors)
            try:
                self.injector.maybe_fail("contract.fail", group.metadata_id)
                peer = self._peer(group.peer)
                agreement = peer.agreement(group.metadata_id)
                stored = peer.shared_table(group.metadata_id)
                candidate = stored.snapshot()
            except ReproError as exc:
                trace.error = str(exc)
                trace.finished_at = self._clock.now()
                continue
            # Apply each edit on its own: an invalid one (missing key,
            # duplicate insert, constraint violation) is rejected alone and
            # the group carries on with the rest.
            applied = 0
            for index, edit in enumerate(group.edits):
                try:
                    self._apply_edit(candidate, edit)
                    applied += 1
                except ReproError as exc:
                    edit_errors[index] = str(exc)
            diff = diff_tables(stored, candidate)
            trace.add_step(group.peer, "local_edit",
                           f"batch of {len(group.edits)} edit(s) on shared table "
                           f"({applied} applied)", self._clock.now(),
                           rows_changed=len(diff), edits=len(group.edits),
                           edits_applied=applied)
            if applied == 0:
                trace.error = next(error for error in edit_errors if error)
                trace.finished_at = self._clock.now()
                continue
            if diff.is_empty:
                trace.succeeded = True
                trace.finished_at = self._clock.now()
                continue
            app = self._app(group.peer)
            if group.folded:
                diff_hash = self._diff_hash(diff)
                contributions = self._fold_contributions(group, diff, agreement,
                                                         edit_errors, diff_hash)
                tx = app.build_contract_call(
                    "request_folded_update",
                    {"metadata_id": group.metadata_id,
                     "contributions": contributions,
                     "diff_hash": diff_hash},
                )
            else:
                tx = app.build_contract_call(
                    method_by_op[group.operation],
                    {"metadata_id": group.metadata_id,
                     "changed_attributes": list(self._changed_attributes(diff, agreement)),
                     "diff_hash": self._diff_hash(diff)},
                )
            # Ingest at the submitting peer's own node right away so a peer
            # initiating several groups keeps its nonces sequential.
            if not app.node.receive_transaction(tx):
                trace.error = f"request transaction rejected by {app.node.name!r}'s mempool"
                trace.finished_at = self._clock.now()
                continue
            request_submissions.append((app.node.name, tx))
            prepared.append((group, trace, agreement, candidate, diff, tx))
        if not prepared:
            return result
        with self.tracer.span("consensus.round", phase="requests",
                              groups=len(prepared)) as span:
            self.system.simulator.submit_transaction_batch(request_submissions)
            blocks = self._mine()
            span.annotate(blocks=blocks)
        result.blocks_created += blocks
        result.consensus_rounds += 1

        # Phase B: install accepted groups on both sides and submit every
        # acknowledgement (gossiped as one batch, like the requests), then
        # mine them all in a second shared round.
        acknowledged = []
        ack_submissions: List[Tuple[str, Any]] = []
        for group, trace, agreement, candidate, diff, tx in prepared:
            app = self._app(group.peer)
            counterpart = agreement.counterparty_of(group.peer)
            installed = False
            try:
                receipt = app.node.chain.receipt(tx.tx_hash)
                trace.add_step(group.peer, "contract_request",
                               f"send {group.operation} request for attributes "
                               f"{list(self._changed_attributes(diff, agreement))} "
                               f"(batched round)",
                               self._clock.now(), block_number=receipt.block_number,
                               success=receipt.success, error=receipt.error)
                if not receipt.success:
                    trace.error = receipt.error
                    trace.finished_at = self._clock.now()
                    continue
                update_id = int(receipt.return_value["update_id"])
                counterpart_app = self._app(counterpart)
                if self.delta_enabled:
                    app.manager.apply_incoming_diff(group.metadata_id, diff)
                else:
                    app.manager.replace_shared_table(group.metadata_id, candidate)
                installed = True
                app.outgoing_diffs[group.metadata_id] = diff
                initiator_source_diff = self._reflect(app, group.metadata_id, diff)
                trace.add_step(group.peer, "bx_put",
                               f"reflect shared-table change into local base table "
                               f"({len(initiator_source_diff)} row change(s))",
                               self._clock.now(),
                               rows_changed=len(initiator_source_diff))
                notifications = counterpart_app.pop_notifications(group.metadata_id)
                if not any(n.update_id == update_id for n in notifications):
                    raise WorkflowError(
                        f"peer {counterpart!r} did not receive the contract notification "
                        f"for update {update_id} on {group.metadata_id!r}"
                    )
                trace.add_step(counterpart, "notified",
                               f"received contract notification (update #{update_id})",
                               self._clock.now(), update_id=update_id)
                counterpart_app.request_shared_data(group.metadata_id, group.peer,
                                                    since_update=update_id)
                transfer = app.serve_shared_data(group.metadata_id, counterpart, mode="diff")
                counterpart_app.receive_shared_data(group.metadata_id, transfer)
                trace.add_step(counterpart, "fetch_data",
                               f"fetched updated shared data ({transfer.kind}, "
                               f"{transfer.size_bytes} bytes)", self._clock.now(),
                               transfer_kind=transfer.kind, bytes=transfer.size_bytes)
                counterpart_diff = self._reflect(counterpart_app, group.metadata_id, diff)
                trace.add_step(counterpart, "bx_put",
                               f"reflect shared-table change into local base table "
                               f"({len(counterpart_diff)} row change(s))", self._clock.now(),
                               rows_changed=len(counterpart_diff))
                ack_tx = counterpart_app.build_contract_call(
                    "acknowledge_update",
                    {"metadata_id": group.metadata_id, "update_id": update_id},
                )
                counterpart_app.node.receive_transaction(ack_tx)
                ack_submissions.append((counterpart_app.node.name, ack_tx))
            except ReproError as exc:
                trace.error = str(exc)
                trace.finished_at = self._clock.now()
                if installed:
                    # The initiator's shared table was already replaced, so
                    # cached views of it are stale even though the protocol
                    # did not complete — listeners must still be told.  No
                    # diff is passed: a half-installed change is not safely
                    # describable as one, so caches drop the views instead.
                    self._notify_change(group.metadata_id, group.operation,
                                        (group.peer, counterpart))
                continue
            acknowledged.append((group, trace, counterpart, ack_tx, diff,
                                 initiator_source_diff, counterpart_diff))
        if not acknowledged:
            return result
        with self.tracer.span("consensus.round", phase="acks",
                              groups=len(acknowledged)) as span:
            self.system.simulator.submit_transaction_batch(ack_submissions)
            blocks = self._mine()
            span.annotate(blocks=blocks)
        result.blocks_created += blocks
        result.consensus_rounds += 1

        # Phase C: confirm acknowledgements, run the Fig. 5 step-6 cascades
        # (each cascade mines its own rounds) and fire the change listeners.
        for (group, trace, counterpart, ack_tx, diff,
             initiator_source_diff, counterpart_diff) in acknowledged:
            counterpart_app = self._app(counterpart)
            try:
                ack_receipt = counterpart_app.node.chain.receipt(ack_tx.tx_hash)
                trace.add_step(counterpart, "acknowledge",
                               "acknowledged the update on the smart contract "
                               "(batched round)",
                               self._clock.now(), block_number=ack_receipt.block_number,
                               success=ack_receipt.success)
                if not ack_receipt.success:
                    trace.error = (f"acknowledgement by {counterpart!r} failed: "
                                   f"{ack_receipt.error}")
                    trace.finished_at = self._clock.now()
                    continue
                self._cascade(counterpart, group.metadata_id, trace, depth=0,
                              source_diff=counterpart_diff)
                self._cascade(group.peer, group.metadata_id, trace, depth=0,
                              source_diff=initiator_source_diff)
                trace.succeeded = True
            except ReproError as exc:
                trace.error = str(exc)
            finally:
                trace.finished_at = self._clock.now()
                # The group's data was installed on both sides in Phase B,
                # whatever happened to its cascade: listeners always fire.
                # The diff travels along only for fully-successful groups so
                # caches can patch rather than drop.
                self._notify_change(group.metadata_id, group.operation,
                                    (group.peer, counterpart),
                                    diff if trace.succeeded else None)
        return result

    def _finish(self, trace: WorkflowTrace, peer_name: str, metadata_id: str, operation: str,
                diff: TableDiff, install_initiator_view: bool, reflect_initiator_source: bool,
                candidate_view: Optional[Table] = None) -> None:
        """Run the protocol, always stamping the trace end time; rejections carry
        the trace on the raised exception (``exc.trace``)."""
        try:
            self._run_protocol(peer_name, metadata_id, operation, diff, trace,
                               install_initiator_view=install_initiator_view,
                               reflect_initiator_source=reflect_initiator_source,
                               candidate_view=candidate_view)
        except UpdateRejected as exc:
            trace.finished_at = self._clock.now()
            exc.trace = trace  # type: ignore[attr-defined]
            raise
        trace.finished_at = self._clock.now()

    # ------------------------------------------------------- permission admin

    def change_permission(self, peer_name: str, metadata_id: str, attribute: str,
                          new_writers: Sequence[str]) -> dict:
        """Have the authority peer change the writers of one attribute."""
        receipt, _blocks = self._submit_and_mine(
            peer_name, "change_permission",
            {"metadata_id": metadata_id, "attribute": attribute,
             "new_writers": list(new_writers)},
        )
        if not receipt.success:
            raise UpdateRejected(f"permission change rejected: {receipt.error}")
        return receipt.return_value

    # -------------------------------------------------------------- the protocol

    def _run_protocol(self, initiator: str, metadata_id: str, operation: str,
                      diff: TableDiff, trace: WorkflowTrace,
                      install_initiator_view: bool, reflect_initiator_source: bool,
                      candidate_view: Optional[Table] = None, depth: int = 0) -> None:
        """Steps 2..11 of Fig. 5 (recursing into step 6's cascade)."""
        if depth > 8:
            raise WorkflowError("propagation cascade exceeded the supported depth")
        peer = self._peer(initiator)
        app = self._app(initiator)
        agreement = peer.agreement(metadata_id)
        counterpart = agreement.counterparty_of(initiator)
        counterpart_app = self._app(counterpart)
        changed_attributes = self._changed_attributes(diff, agreement)
        diff_hash = self._diff_hash(diff)

        # Step 2: request permission from the smart contract.
        method = {"update": "request_update", "create": "request_create",
                  "delete": "request_delete"}[operation]
        receipt, blocks = self._submit_and_mine(
            initiator, method,
            {"metadata_id": metadata_id, "changed_attributes": list(changed_attributes),
             "diff_hash": diff_hash},
        )
        trace.blocks_created += blocks
        trace.add_step(initiator, "contract_request",
                       f"send {operation} request for attributes {list(changed_attributes)}",
                       self._clock.now(), block_number=receipt.block_number,
                       success=receipt.success, error=receipt.error)
        if not receipt.success:
            trace.succeeded = False
            trace.error = receipt.error
            raise UpdateRejected(
                f"{operation} on {metadata_id!r} by {initiator} rejected: {receipt.error}"
            )
        update_id = int(receipt.return_value["update_id"])

        # The contract accepted: install the local changes on the initiator side.
        if install_initiator_view:
            self._install_initiator_view(app, metadata_id, diff, candidate_view,
                                         from_get=not reflect_initiator_source)
        app.outgoing_diffs[metadata_id] = diff
        initiator_reflected = False
        initiator_source_diff: Optional[TableDiff] = None
        if reflect_initiator_source:
            initiator_source_diff = self._reflect(app, metadata_id, diff)
            initiator_reflected = True
            trace.add_step(initiator, "bx_put",
                           f"reflect shared-table change into local base table "
                           f"({len(initiator_source_diff)} row change(s))", self._clock.now(),
                           rows_changed=len(initiator_source_diff))

        # Step 3: the sharing peer is notified through the contract event.
        notifications = counterpart_app.pop_notifications(metadata_id)
        matching = [n for n in notifications if n.update_id == update_id]
        if not matching:
            raise WorkflowError(
                f"peer {counterpart!r} did not receive the contract notification for "
                f"update {update_id} on {metadata_id!r}"
            )
        trace.add_step(counterpart, "notified",
                       f"received contract notification (update #{update_id})",
                       self._clock.now(), update_id=update_id)

        # Step 4: the sharing peer fetches the newest shared data over the channel.
        counterpart_app.request_shared_data(metadata_id, initiator, since_update=update_id)
        transfer = app.serve_shared_data(metadata_id, counterpart, mode="diff")
        counterpart_app.receive_shared_data(metadata_id, transfer)
        trace.add_step(counterpart, "fetch_data",
                       f"fetched updated shared data ({transfer.kind}, "
                       f"{transfer.size_bytes} bytes)", self._clock.now(),
                       transfer_kind=transfer.kind, bytes=transfer.size_bytes)

        # Step 5: the sharing peer reflects the change into its complete data (put).
        source_diff = self._reflect(counterpart_app, metadata_id, diff)
        trace.add_step(counterpart, "bx_put",
                       f"reflect shared-table change into local base table "
                       f"({len(source_diff)} row change(s))", self._clock.now(),
                       rows_changed=len(source_diff))

        # Metadata update / acknowledgement: the sharing peer confirms it holds
        # the newest shared data, unblocking further operations on this table.
        ack_receipt, ack_blocks = self._submit_and_mine(
            counterpart, "acknowledge_update",
            {"metadata_id": metadata_id, "update_id": update_id},
        )
        trace.blocks_created += ack_blocks
        trace.add_step(counterpart, "acknowledge",
                       "acknowledged the update on the smart contract",
                       self._clock.now(), block_number=ack_receipt.block_number,
                       success=ack_receipt.success)
        if not ack_receipt.success:
            raise WorkflowError(
                f"acknowledgement by {counterpart!r} failed: {ack_receipt.error}"
            )

        # Step 6 and steps 7-11: both the peer that absorbed the update (the
        # counterpart) and — when it reflected a direct edit into its own base
        # table — the initiator must check whether other shared pieces derived
        # from the same base table changed, and re-share them.
        self._cascade(counterpart, metadata_id, trace, depth, source_diff=source_diff)
        if initiator_reflected:
            self._cascade(initiator, metadata_id, trace, depth,
                          source_diff=initiator_source_diff)

        trace.succeeded = True
        self._notify_change(metadata_id, operation, (initiator, counterpart), diff)

    # ----------------------------------------------------- delta/full dispatch

    def _install_initiator_view(self, app, metadata_id: str, diff: TableDiff,
                                candidate_view: Optional[Table],
                                from_get: bool) -> None:
        """Install the accepted change into the initiator's stored shared table.

        Delta mode patches only the changed rows; ``from_get`` marks diffs
        computed in the ``get`` direction (propagations and cascade legs),
        which additionally run the sampled full-``get`` verification.  Full
        mode keeps the seed behaviour (whole-table replace/refresh).
        """
        if candidate_view is not None:
            app.manager.replace_shared_table(metadata_id, candidate_view)
        elif self.delta_enabled:
            if from_get:
                app.manager.refresh_shared_table_delta(metadata_id, diff)
            else:
                app.manager.apply_incoming_diff(metadata_id, diff)
        else:
            app.manager.refresh_shared_table(metadata_id)

    def _reflect(self, app, metadata_id: str, view_diff: TableDiff) -> TableDiff:
        """Run the ``put`` direction: incrementally when enabled, else fully."""
        with self.tracer.span("delta.leg", peer=app.peer.name,
                              metadata_id=metadata_id,
                              delta=self.delta_enabled) as span:
            if self.delta_enabled:
                result = app.manager.reflect_shared_table_delta(metadata_id,
                                                                view_diff)
            else:
                result = app.manager.reflect_shared_table(metadata_id)
            span.annotate(rows=len(result))
            return result

    def _cascade(self, peer_name: str, metadata_id: str, trace: WorkflowTrace,
                 depth: int, source_diff: Optional[TableDiff] = None) -> None:
        """Check dependent shared views of ``peer_name`` and propagate changes.

        When the base-table diff of the triggering ``put`` is known and delta
        propagation is on, each dependent lens translates that diff forward
        (O(changed rows)) instead of re-running its full ``get``.

        With more than one consensus lane and more than one affected
        dependent, the legs commit through the batched parallel path
        (:meth:`_cascade_parallel`); single-lane systems always take the
        sequential loop below, byte-identical to the seed behaviour.
        """
        app = self._app(peer_name)
        if self.delta_enabled and source_diff is not None:
            dependents = app.manager.changed_dependents_delta(metadata_id, source_diff)
        else:
            dependents = app.manager.changed_dependents(metadata_id)
        trace.add_step(peer_name, "check_dependencies",
                       f"{len(dependents)} dependent shared table(s) affected",
                       self._clock.now(), dependents=sorted(dependents))
        legs = sorted(dependents.items())
        router = self.system.simulator.router
        if self.parallel_enabled and router.num_shards > 1 and len(legs) > 1:
            self._cascade_parallel(peer_name, trace, depth, legs)
            return
        for dependent_id, dependent_diff in legs:
            trace.cascaded_metadata_ids.append(dependent_id)
            trace.add_step(peer_name, "bx_get",
                           f"regenerate dependent shared view {dependent_id!r} "
                           f"({len(dependent_diff)} row change(s))", self._clock.now(),
                           rows_changed=len(dependent_diff))
            with self.tracer.span("cascade.leg", peer=peer_name,
                                  metadata_id=dependent_id, depth=depth,
                                  lane=router.shard_of(dependent_id),
                                  rows=len(dependent_diff)) as span:
                try:
                    self._run_protocol(peer_name, dependent_id, "update",
                                       dependent_diff, trace,
                                       install_initiator_view=True,
                                       reflect_initiator_source=False,
                                       depth=depth + 1)
                    app.manager.clear_view_unhealed(dependent_id)
                except UpdateRejected as exc:
                    # A rejected cascade leg does not undo the already-accepted
                    # primary update; the peer simply keeps its other shared
                    # piece unchanged and the trace records the refusal.  The
                    # dependent view now lags its base table, so the delta
                    # dependency check must diff it exactly until a leg goes
                    # through again.
                    app.manager.mark_view_unhealed(dependent_id)
                    span.annotate(rejected=True)
                    trace.add_step(peer_name, "cascade_rejected", str(exc),
                                   self._clock.now())

    def _cascade_parallel(self, peer_name: str, trace: WorkflowTrace, depth: int,
                          legs: Sequence[Tuple[str, TableDiff]]) -> None:
        """Propagate one peer's cascade legs through *shared* consensus rounds,
        running different-lane counterpart work on executor threads.

        The sequential loop above costs two mining rounds per leg; here every
        leg's request transaction mines in one shared round and every
        acknowledgement in a second (the :meth:`commit_entry_batch` shape),
        and the ledger-free middle of each leg — notification, data transfer,
        counterpart ``put`` — runs concurrently, one executor task per
        consensus lane.  Legs sharing a counterpart peer coalesce into one
        task: a peer's database manager is single-threaded by design.

        All cross-leg mutable state — the trace, view installs, receipts,
        nested cascades, change listeners — is touched only in the serial
        phases, in sorted leg order; worker threads buffer their trace steps
        for a deterministic ordered merge.  Simulated-clock advances are
        additive and commutative, so resulting table states and fingerprints
        are byte-identical to the sequential path.  A rejected leg leaves
        exactly the sequential bookkeeping (failed trace fields, an
        unhealed-view mark, a ``cascade_rejected`` step) without aborting the
        batch.
        """
        if depth + 1 > 8:
            raise WorkflowError("propagation cascade exceeded the supported depth")
        app = self._app(peer_name)
        peer = self._peer(peer_name)
        router = self.system.simulator.router

        # Phase A (serial, sorted): record each leg, build + locally ingest
        # its request transaction (keeping the initiator's nonces sequential)
        # and pre-resolve the pairwise data channel — registry creation is
        # not thread-safe, transfers on existing channels are.  Then one
        # shared consensus round mines every request.
        prepared: List[Dict[str, Any]] = []
        request_submissions: List[Tuple[str, Any]] = []
        for dependent_id, diff in legs:
            trace.cascaded_metadata_ids.append(dependent_id)
            trace.add_step(peer_name, "bx_get",
                           f"regenerate dependent shared view {dependent_id!r} "
                           f"({len(diff)} row change(s))", self._clock.now(),
                           rows_changed=len(diff))
            agreement = peer.agreement(dependent_id)
            counterpart = agreement.counterparty_of(peer_name)
            app.channel_to(counterpart)
            changed = self._changed_attributes(diff, agreement)
            tx = app.build_contract_call(
                "request_update",
                {"metadata_id": dependent_id,
                 "changed_attributes": list(changed),
                 "diff_hash": self._diff_hash(diff)},
            )
            if not app.node.receive_transaction(tx):
                raise WorkflowError(
                    f"cascade request for {dependent_id!r} rejected by "
                    f"{app.node.name!r}'s mempool"
                )
            request_submissions.append((app.node.name, tx))
            prepared.append({
                "dependent_id": dependent_id,
                "diff": diff,
                "changed": changed,
                "counterpart": counterpart,
                "lane": router.shard_of(dependent_id),
                "tx": tx,
            })
        with self.tracer.span("consensus.round", phase="cascade_requests",
                              legs=len(prepared), depth=depth) as span:
            self.system.simulator.submit_transaction_batch(request_submissions)
            blocks = self._mine()
            span.annotate(blocks=blocks)
        trace.blocks_created += blocks

        # Phase B (serial, sorted): read each receipt; install accepted legs
        # on the initiator side, leave rejected ones with the sequential
        # path's bookkeeping.
        active: List[Dict[str, Any]] = []
        for leg in prepared:
            dependent_id = leg["dependent_id"]
            diff = leg["diff"]
            receipt = app.node.chain.receipt(leg["tx"].tx_hash)
            trace.add_step(peer_name, "contract_request",
                           f"send update request for attributes {list(leg['changed'])}",
                           self._clock.now(), block_number=receipt.block_number,
                           success=receipt.success, error=receipt.error)
            if not receipt.success:
                trace.succeeded = False
                trace.error = receipt.error
                with self.tracer.span("cascade.leg", peer=peer_name,
                                      metadata_id=dependent_id, depth=depth,
                                      lane=leg["lane"], rows=len(diff)) as span:
                    span.annotate(rejected=True)
                app.manager.mark_view_unhealed(dependent_id)
                trace.add_step(
                    peer_name, "cascade_rejected",
                    f"update on {dependent_id!r} by {peer_name} rejected: "
                    f"{receipt.error}",
                    self._clock.now())
                continue
            leg["update_id"] = int(receipt.return_value["update_id"])
            self._install_initiator_view(app, dependent_id, diff, None,
                                         from_get=True)
            app.outgoing_diffs[dependent_id] = diff
            active.append(leg)
        if not active:
            return

        # Phase B2 (concurrent): the ledger-free middle of each accepted leg.
        # Worker threads never touch the trace — steps buffer per leg and
        # merge serially below, so step order stays deterministic whatever
        # the thread interleaving.
        def run_legs(group: Sequence[Dict[str, Any]]) -> None:
            for leg in group:
                dependent_id = leg["dependent_id"]
                diff = leg["diff"]
                counterpart = leg["counterpart"]
                counterpart_app = self._app(counterpart)
                update_id = leg["update_id"]
                steps: List[Tuple[str, str, str, Dict[str, Any]]] = []
                with self.tracer.span("cascade.leg", peer=peer_name,
                                      metadata_id=dependent_id, depth=depth,
                                      lane=leg["lane"], rows=len(diff)):
                    notifications = counterpart_app.pop_notifications(dependent_id)
                    if not any(n.update_id == update_id for n in notifications):
                        raise WorkflowError(
                            f"peer {counterpart!r} did not receive the contract "
                            f"notification for update {update_id} on {dependent_id!r}"
                        )
                    steps.append((counterpart, "notified",
                                  f"received contract notification "
                                  f"(update #{update_id})",
                                  {"update_id": update_id}))
                    counterpart_app.request_shared_data(dependent_id, peer_name,
                                                        since_update=update_id)
                    transfer = app.serve_shared_data(dependent_id, counterpart,
                                                     mode="diff")
                    counterpart_app.receive_shared_data(dependent_id, transfer)
                    steps.append((counterpart, "fetch_data",
                                  f"fetched updated shared data ({transfer.kind}, "
                                  f"{transfer.size_bytes} bytes)",
                                  {"transfer_kind": transfer.kind,
                                   "bytes": transfer.size_bytes}))
                    counterpart_diff = self._reflect(counterpart_app,
                                                     dependent_id, diff)
                    steps.append((counterpart, "bx_put",
                                  f"reflect shared-table change into local base "
                                  f"table ({len(counterpart_diff)} row change(s))",
                                  {"rows_changed": len(counterpart_diff)}))
                    ack_tx = counterpart_app.build_contract_call(
                        "acknowledge_update",
                        {"metadata_id": dependent_id, "update_id": update_id},
                    )
                    counterpart_app.node.receive_transaction(ack_tx)
                leg["steps"] = steps
                leg["counterpart_diff"] = counterpart_diff
                leg["ack_tx"] = ack_tx

        groups: Dict[Any, List[Dict[str, Any]]] = {}
        group_of_counterpart: Dict[str, Any] = {}
        for leg in active:
            key = group_of_counterpart.setdefault(leg["counterpart"],
                                                  ("lane", leg["lane"]))
            groups.setdefault(key, []).append(leg)
        errors: List[BaseException] = []
        if len(groups) == 1:
            try:
                run_legs(active)
            except Exception as exc:  # noqa: BLE001 — re-raised after the merge
                errors.append(exc)
        else:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                futures = [pool.submit(run_legs, group)
                           for group in groups.values()]
                for future in futures:
                    exc = future.exception()
                    if exc is not None:
                        errors.append(exc)
        # Deterministic ordered merge: buffered steps land on the trace in
        # sorted leg order, stamped at the post-barrier simulated time (the
        # clock only ever advances by summed, commutative increments).
        merged_at = self._clock.now()
        for leg in active:
            for actor, action, description, data in leg.get("steps", ()):
                trace.add_step(actor, action, description, merged_at, **data)
        if errors:
            raise errors[0]

        # Phase B3 (serial): one shared consensus round for every
        # acknowledgement.
        ack_submissions = [(self._app(leg["counterpart"]).node.name, leg["ack_tx"])
                           for leg in active]
        with self.tracer.span("consensus.round", phase="cascade_acks",
                              legs=len(active), depth=depth) as span:
            self.system.simulator.submit_transaction_batch(ack_submissions)
            blocks = self._mine()
            span.annotate(blocks=blocks)
        trace.blocks_created += blocks

        # Phase C (serial, sorted): confirm acknowledgements, recurse into
        # each counterpart's own cascade (which may batch again), fire the
        # change listeners and heal the view bookkeeping.
        for leg in active:
            dependent_id = leg["dependent_id"]
            counterpart = leg["counterpart"]
            counterpart_app = self._app(counterpart)
            ack_receipt = counterpart_app.node.chain.receipt(leg["ack_tx"].tx_hash)
            trace.add_step(counterpart, "acknowledge",
                           "acknowledged the update on the smart contract",
                           self._clock.now(), block_number=ack_receipt.block_number,
                           success=ack_receipt.success)
            if not ack_receipt.success:
                raise WorkflowError(
                    f"acknowledgement by {counterpart!r} failed: {ack_receipt.error}"
                )
            self._cascade(counterpart, dependent_id, trace, depth + 1,
                          source_diff=leg["counterpart_diff"])
            trace.succeeded = True
            self._notify_change(dependent_id, "update", (peer_name, counterpart),
                                leg["diff"])
            app.manager.clear_view_unhealed(dependent_id)
