"""Sharing agreements between two peers.

A sharing agreement is the off-chain counterpart of one metadata entry of the
Fig. 3 contract table.  It names:

* the two sharing peers and their roles (e.g. Doctor / Patient);
* for **each** peer, how the shared table is derived from that peer's *own*
  local base table (a :class:`~repro.bx.dsl.ViewSpec`) — D13 is derived from
  D1 on the Patient side while the identical table D31 is derived from D3 on
  the Doctor side;
* the per-attribute write permissions (attribute → roles allowed to write);
* the role with authority to change permissions;
* which peer initiates the registration on the blockchain.

The agreement is serialisable: its dictionary form is stored in the smart
contract as the agreed "structure of the shared table".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bx.dsl import ViewSpec
from repro.errors import AgreementError


@dataclass(frozen=True)
class PeerViewDefinition:
    """How one peer derives the shared table from its local base table."""

    peer: str
    role: str
    view_spec: ViewSpec

    def to_dict(self) -> dict:
        return {"peer": self.peer, "role": self.role, "view_spec": self.view_spec.to_dict()}

    @staticmethod
    def from_dict(payload: dict) -> "PeerViewDefinition":
        return PeerViewDefinition(
            peer=payload["peer"],
            role=payload["role"],
            view_spec=ViewSpec.from_dict(payload["view_spec"]),
        )


@dataclass(frozen=True)
class SharingAgreement:
    """A pairwise agreement to share one fine-grained view."""

    metadata_id: str
    definitions: Tuple[PeerViewDefinition, PeerViewDefinition]
    write_permission: Dict[str, Tuple[str, ...]]
    authority_role: str
    initiator: str

    def __post_init__(self) -> None:
        if len(self.definitions) != 2:
            raise AgreementError("a sharing agreement is between exactly two peers")
        peers = {definition.peer for definition in self.definitions}
        if len(peers) != 2:
            raise AgreementError("the two sharing peers must be distinct")
        if self.initiator not in peers:
            raise AgreementError(
                f"initiator {self.initiator!r} is not one of the sharing peers {sorted(peers)}"
            )
        roles = {definition.role for definition in self.definitions}
        if self.authority_role not in roles:
            raise AgreementError(
                f"authority role {self.authority_role!r} is not held by either peer"
            )
        shared_a = self.definitions[0].view_spec.shared_columns
        shared_b = self.definitions[1].view_spec.shared_columns
        if set(shared_a) != set(shared_b):
            raise AgreementError(
                "the two peers' view specs expose different shared columns: "
                f"{sorted(shared_a)} vs {sorted(shared_b)}"
            )
        normalised = {}
        for attribute, writers in self.write_permission.items():
            if attribute not in shared_a:
                raise AgreementError(
                    f"write permission references attribute {attribute!r} which is not part "
                    f"of the shared table {sorted(shared_a)}"
                )
            unknown = [writer for writer in writers if writer not in roles]
            if unknown:
                raise AgreementError(
                    f"write permission for {attribute!r} grants unknown roles {unknown}"
                )
            normalised[attribute] = tuple(writers)
        object.__setattr__(self, "write_permission", normalised)

    # -------------------------------------------------------------- inspection

    @property
    def peers(self) -> Tuple[str, str]:
        return (self.definitions[0].peer, self.definitions[1].peer)

    @property
    def roles(self) -> Dict[str, str]:
        """peer name → role."""
        return {definition.peer: definition.role for definition in self.definitions}

    @property
    def shared_columns(self) -> Tuple[str, ...]:
        """The columns of the shared table, in the initiator's declared order."""
        return self.definition_for(self.initiator).view_spec.shared_columns

    def definition_for(self, peer: str) -> PeerViewDefinition:
        for definition in self.definitions:
            if definition.peer == peer:
                return definition
        raise AgreementError(f"peer {peer!r} is not part of agreement {self.metadata_id!r}")

    def counterparty_of(self, peer: str) -> str:
        """The other sharing peer."""
        peers = self.peers
        if peer == peers[0]:
            return peers[1]
        if peer == peers[1]:
            return peers[0]
        raise AgreementError(f"peer {peer!r} is not part of agreement {self.metadata_id!r}")

    def view_name_for(self, peer: str) -> str:
        """The shared table's name in ``peer``'s local database (D13 vs D31)."""
        return self.definition_for(peer).view_spec.view_name

    def role_of(self, peer: str) -> str:
        return self.definition_for(peer).role

    def writers_of(self, attribute: str) -> Tuple[str, ...]:
        return self.write_permission.get(attribute, ())

    def can_role_write(self, role: str, attribute: str) -> bool:
        return role in self.write_permission.get(attribute, ())

    def writable_columns(self, role: str) -> Tuple[str, ...]:
        return tuple(attr for attr, writers in self.write_permission.items() if role in writers)

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        return {
            "metadata_id": self.metadata_id,
            "definitions": [definition.to_dict() for definition in self.definitions],
            "write_permission": {k: list(v) for k, v in self.write_permission.items()},
            "authority_role": self.authority_role,
            "initiator": self.initiator,
        }

    @staticmethod
    def from_dict(payload: dict) -> "SharingAgreement":
        definitions = tuple(PeerViewDefinition.from_dict(d) for d in payload["definitions"])
        return SharingAgreement(
            metadata_id=payload["metadata_id"],
            definitions=definitions,  # type: ignore[arg-type]
            write_permission={k: tuple(v) for k, v in payload["write_permission"].items()},
            authority_role=payload["authority_role"],
            initiator=payload["initiator"],
        )

    # ------------------------------------------------------------- construction

    @staticmethod
    def build(
        metadata_id: str,
        peer_a: str,
        role_a: str,
        spec_a: ViewSpec,
        peer_b: str,
        role_b: str,
        spec_b: ViewSpec,
        write_permission: Mapping[str, Sequence[str]],
        authority_role: str,
        initiator: Optional[str] = None,
    ) -> "SharingAgreement":
        """Convenience constructor with flat arguments."""
        return SharingAgreement(
            metadata_id=metadata_id,
            definitions=(
                PeerViewDefinition(peer=peer_a, role=role_a, view_spec=spec_a),
                PeerViewDefinition(peer=peer_b, role=role_b, view_spec=spec_b),
            ),
            write_permission={k: tuple(v) for k, v in write_permission.items()},
            authority_role=authority_role,
            initiator=initiator or peer_a,
        )
