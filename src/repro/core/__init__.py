"""The paper's contribution: fine-grained sharing with bidirectional updates.

This subpackage assembles the substrates (relational engine, BX lenses,
ledger, contracts, network) into the architecture of Fig. 2 and implements
the protocols of Fig. 4 (CRUD on shared data) and Fig. 5 (the 11-step update
propagation workflow):

* :mod:`repro.core.records` — the paper's medical-record schema (a0..a6) and
  the local schemas of Patient (D1), Researcher (D2) and Doctor (D3).
* :mod:`repro.core.sharing` — sharing agreements: which two peers share which
  view, per-attribute write permission, authority to change permission.
* :mod:`repro.core.peer` — a sharing peer: identity, role, local database,
  BX registry and stored shared tables.
* :mod:`repro.core.manager` — the database manager that runs BX programs.
* :mod:`repro.core.server_app` — the per-peer mediator between client side,
  database manager, blockchain node and data channels.
* :mod:`repro.core.workflow` — the update/CRUD coordination across peers.
* :mod:`repro.core.audit` — the on-chain audit trail of shared-data updates.
* :mod:`repro.core.system` — top-level assembly (build peers, deploy
  contracts, establish agreements, run updates).
* :mod:`repro.core.scenario` — the exact Fig. 1 scenario and scaled variants.
"""

from repro.core.records import (
    ATTRIBUTE_LABELS,
    FULL_RECORD_COLUMNS,
    full_record_schema,
    doctor_schema,
    patient_schema,
    researcher_schema,
)
from repro.core.sharing import SharingAgreement, PeerViewDefinition
from repro.core.peer import Peer
from repro.core.manager import DatabaseManager
from repro.core.server_app import ServerApp, Notification
from repro.core.workflow import UpdateCoordinator, WorkflowTrace, WorkflowStep
from repro.core.audit import AuditTrail, AuditRecord
from repro.core.system import MedicalDataSharingSystem
from repro.core.scenario import (
    build_extended_scenario,
    build_paper_scenario,
    build_scaled_scenario,
)

__all__ = [
    "ATTRIBUTE_LABELS",
    "FULL_RECORD_COLUMNS",
    "full_record_schema",
    "doctor_schema",
    "patient_schema",
    "researcher_schema",
    "SharingAgreement",
    "PeerViewDefinition",
    "Peer",
    "DatabaseManager",
    "ServerApp",
    "Notification",
    "UpdateCoordinator",
    "WorkflowTrace",
    "WorkflowStep",
    "AuditTrail",
    "AuditRecord",
    "MedicalDataSharingSystem",
    "build_extended_scenario",
    "build_paper_scenario",
    "build_scaled_scenario",
]
