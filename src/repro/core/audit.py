"""The on-chain audit trail of shared-data updates.

"Blockchain properties such as immutability, auditability and transparency
enable nodes to check and review update history on shared data" (§III-B).
The :class:`AuditTrail` reconstructs that history from any node's chain
replica: the contract's recorded operations, the permission changes, and the
blocks that carried them — and verifies that the chain itself has not been
tampered with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.contracts.sharing_contract import SharedDataContract
from repro.errors import SharingError
from repro.network.node import BlockchainNode


@dataclass(frozen=True)
class AuditRecord:
    """One auditable operation on shared data."""

    update_id: int
    metadata_id: str
    operation: str
    requester: str
    requester_role: str
    changed_attributes: Tuple[str, ...]
    diff_hash: str
    block_number: int
    block_hash: str
    timestamp: float
    acknowledged_by: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "update_id": self.update_id,
            "metadata_id": self.metadata_id,
            "operation": self.operation,
            "requester": self.requester,
            "requester_role": self.requester_role,
            "changed_attributes": list(self.changed_attributes),
            "diff_hash": self.diff_hash,
            "block_number": self.block_number,
            "block_hash": self.block_hash,
            "timestamp": self.timestamp,
            "acknowledged_by": list(self.acknowledged_by),
        }


class AuditTrail:
    """Reconstructs and verifies the shared-data update history from one node."""

    def __init__(self, node: BlockchainNode, contract_address: str):
        self.node = node
        self.contract_address = contract_address
        contract = node.contract_at(contract_address)
        if not isinstance(contract, SharedDataContract):
            raise SharingError(
                f"address {contract_address!r} does not host a SharedDataContract "
                f"on node {node.name!r}"
            )
        self.contract = contract

    # ----------------------------------------------------------------- history

    def records(self, metadata_id: Optional[str] = None) -> List[AuditRecord]:
        """All recorded operations, in chain order (optionally for one table)."""
        result: List[AuditRecord] = []
        for record in self.contract.history:
            if metadata_id is not None and record.metadata_id != metadata_id:
                continue
            block = self.node.chain.block_by_number(record.block_number)
            result.append(
                AuditRecord(
                    update_id=record.update_id,
                    metadata_id=record.metadata_id,
                    operation=record.operation,
                    requester=record.requester,
                    requester_role=record.requester_role,
                    changed_attributes=tuple(record.changed_attributes),
                    diff_hash=record.diff_hash,
                    block_number=record.block_number,
                    block_hash=block.block_hash,
                    timestamp=record.timestamp,
                    acknowledged_by=tuple(record.acknowledged_by),
                )
            )
        return result

    def permission_changes(self, metadata_id: Optional[str] = None) -> List[dict]:
        """Every permission change recorded by the contract."""
        return [
            dict(change) for change in self.contract.permission_changes
            if metadata_id is None or change["metadata_id"] == metadata_id
        ]

    def updates_by_peer(self) -> Dict[str, int]:
        """How many operations each peer (address) performed."""
        counts: Dict[str, int] = {}
        for record in self.contract.history:
            counts[record.requester] = counts.get(record.requester, 0) + 1
        return counts

    # -------------------------------------------------------------- verification

    def verify_integrity(self) -> bool:
        """Re-validate the chain replica this trail was built from."""
        return self.node.chain.verify_chain()

    def tampered_blocks(self) -> List[int]:
        """Block numbers whose linkage or seal no longer validates."""
        return self.node.chain.detect_tampering()

    def verify_record_inclusion(self, record: AuditRecord) -> bool:
        """Check the block referenced by an audit record still carries a
        transaction requesting that operation (Merkle-root based)."""
        block = self.node.chain.block_by_number(record.block_number)
        if block.block_hash != record.block_hash:
            return False
        if not block.verify_merkle_root():
            return False
        for tx in block.transactions:
            if tx.kind == "call" and tx.args.get("metadata_id") == record.metadata_id:
                if tx.args.get("diff_hash") == record.diff_hash:
                    return True
        return False

    # ------------------------------------------------------------------ report

    def pretty(self, metadata_id: Optional[str] = None) -> str:
        """A plain-text audit report."""
        records = self.records(metadata_id)
        lines = [
            f"Audit trail from node {self.node.name!r} "
            f"(chain height {self.node.chain.height}, integrity="
            f"{'OK' if self.verify_integrity() else 'TAMPERED'})",
        ]
        for record in records:
            lines.append(
                f"  #{record.update_id:<3} block {record.block_number:<4} "
                f"t={record.timestamp:8.2f}s {record.operation:<7} on {record.metadata_id:<12} "
                f"by {record.requester_role:<11} attrs={list(record.changed_attributes)} "
                f"acks={len(record.acknowledged_by)}"
            )
        if not records:
            lines.append("  (no operations recorded)")
        return "\n".join(lines)
