"""The database manager: runs BX programs for one peer (Fig. 2).

The manager is the component that "disposes of the synchronization between
shared data and local data according to consistency logic relations ...
implemented by executing BX programs".  Concretely it can:

* **refresh** a shared table from the local base table (``get`` direction,
  e.g. step 1 / step 7 of Fig. 5);
* **reflect** an updated shared table into the local base table (``put``
  direction, e.g. step 5 / step 11 of Fig. 5);
* compute the **diff** a refresh would cause, so the workflow knows whether a
  dependent view actually changed (step 6);
* optionally check the lens laws on the concrete data before installing an
  updated source, failing loudly instead of silently corrupting local data.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bx.laws import check_put_get
from repro.bx.registry import BXProgram
from repro.errors import (
    BXError,
    ConstraintViolation,
    DeltaUnsupported,
    RelationalError,
    SynchronizationError,
)
from repro.core.peer import Peer
from repro.relational.diff import TableDiff, apply_diff, diff_tables
from repro.relational.table import Table


class DatabaseManager:
    """Executes the BX programs of one peer.

    ``delta_verify_interval`` controls the sampled correctness oracle of the
    incremental path: every Nth delta application (the first one included)
    is checked against a full recomputation via ``Table.fingerprint()``; a
    mismatch raises :class:`~repro.errors.SynchronizationError`.  ``0``
    disables the check.
    """

    def __init__(self, peer: Peer, check_laws: bool = True,
                 delta_verify_interval: int = 16):
        self.peer = peer
        self.check_laws = check_laws
        self.delta_verify_interval = delta_verify_interval
        self._get_invocations = 0
        self._put_invocations = 0
        self._delta_get_invocations = 0
        self._delta_put_invocations = 0
        self._delta_fallbacks = 0
        self._delta_verifications = 0
        self._delta_ops = 0
        #: Dependent views whose last cascade leg was rejected: their stored
        #: copy drifted from the base table, so the next dependency check must
        #: use the exact stored-vs-fresh diff instead of a forward translation
        #: (which only carries the *new* change and would never heal them).
        self._unhealed_views: set = set()

    # ----------------------------------------------------------------- metrics

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "get_invocations": self._get_invocations,
            "put_invocations": self._put_invocations,
            "delta_get_invocations": self._delta_get_invocations,
            "delta_put_invocations": self._delta_put_invocations,
            "delta_fallbacks": self._delta_fallbacks,
            "delta_verifications": self._delta_verifications,
        }

    def _delta_verify_due(self) -> bool:
        """Sampled-verification schedule: the first delta application and then
        every ``delta_verify_interval``-th one."""
        due = (self.delta_verify_interval > 0
               and self._delta_ops % self.delta_verify_interval == 0)
        self._delta_ops += 1
        return due

    # ----------------------------------------------------------- get direction

    def derive_view(self, metadata_id: str) -> Table:
        """Run ``get`` and return the freshly derived view (without storing it)."""
        program = self.peer.bx_program(metadata_id)
        source = self.peer.database.table(program.source_table)
        self._get_invocations += 1
        return program.get(source)

    def pending_view_diff(self, metadata_id: str) -> TableDiff:
        """Diff between the stored shared table and a fresh ``get`` of the source.

        An empty diff means the stored shared piece is already consistent with
        the local base table (nothing to propagate).
        """
        agreement = self.peer.agreement(metadata_id)
        stored = self.peer.database.table(agreement.view_name_for(self.peer.name))
        fresh = self.derive_view(metadata_id)
        return diff_tables(stored, fresh)

    def refresh_shared_table(self, metadata_id: str) -> TableDiff:
        """Regenerate the stored shared table from the local base table (``get``).

        Returns the diff that was applied to the stored copy.
        """
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        stored = self.peer.database.table(view_name)
        fresh = self.derive_view(metadata_id)
        diff = diff_tables(stored, fresh)
        if not diff.is_empty:
            self.peer.database.replace_table(view_name, (row.to_dict() for row in fresh))
        return diff

    # ----------------------------------------------------------- put direction

    def apply_incoming_diff(self, metadata_id: str, diff: TableDiff) -> None:
        """Apply a diff received from the sharing peer to the stored shared table."""
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        table = self.peer.database.table(view_name)
        apply_diff(table, diff)
        self.peer.database.wal.append(
            "apply_diff", view_name,
            {"changes": len(diff.changes), **diff.summary(),
             "diff": diff.to_dict(), "reason": "incoming_diff"})

    def replace_shared_table(self, metadata_id: str, snapshot: Table) -> None:
        """Replace the stored shared table with a full snapshot from the peer."""
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        self.peer.database.replace_table(view_name, (row.to_dict() for row in snapshot))

    def reflect_shared_table(self, metadata_id: str) -> TableDiff:
        """Run ``put``: embed the stored shared table back into the local base table.

        Returns the diff applied to the base table.  When law checking is
        enabled, PutGet is verified on the concrete data before the new source
        is installed; a violation raises :class:`SynchronizationError` and the
        local base table is left untouched.
        """
        program = self.peer.bx_program(metadata_id)
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        source = self.peer.database.table(program.source_table)
        view = self.peer.database.table(view_name)
        self._put_invocations += 1
        try:
            new_source = program.put(source, view)
        except (BXError, ConstraintViolation) as exc:
            raise SynchronizationError(
                f"cannot reflect shared table {view_name!r} into {program.source_table!r}: {exc}"
            ) from exc
        if self.check_laws and not check_put_get(program.lens, source, view.snapshot()):
            raise SynchronizationError(
                f"PutGet law violated while reflecting {view_name!r} into "
                f"{program.source_table!r}; refusing to install an inconsistent source"
            )
        diff = diff_tables(source, new_source)
        if not diff.is_empty:
            self.peer.database.replace_table(program.source_table,
                                             (row.to_dict() for row in new_source))
        return diff

    # ------------------------------------------------------------- delta paths

    def reflect_shared_table_delta(self, metadata_id: str, view_diff: TableDiff) -> TableDiff:
        """Incremental ``put``: translate the shared table's row-level diff
        into the base table's diff and apply only those rows.

        Falls back to :meth:`reflect_shared_table` when the lens cannot
        translate the diff (:class:`~repro.errors.DeltaUnsupported`).  On the
        sampled verification schedule the delta result is checked against the
        PutGet law on a staged copy *before* the live base table is touched.
        """
        program = self.peer.bx_program(metadata_id)
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        source = self.peer.database.table(program.source_table)
        if view_diff.is_empty:
            return TableDiff(table_name=program.source_table, changes=())
        if metadata_id in self._unhealed_views:
            # The stored view missed a propagation; only the full put (which
            # embeds the whole view, the seed semantics) reconverges it.
            self._delta_fallbacks += 1
            result = self.reflect_shared_table(metadata_id)
            self.clear_view_unhealed(metadata_id)
            return result
        try:
            source_diff = program.lens.put_delta(source.schema, view_diff)
        except DeltaUnsupported:
            self._delta_fallbacks += 1
            return self.reflect_shared_table(metadata_id)
        self._delta_put_invocations += 1
        # A projection's put_delta only carries the projected columns; filling
        # the hidden ones from the live source (O(changed rows)) makes the
        # diff self-contained for the step-6 dependent translations.
        from repro.bx.delta import complete_images
        source_diff = complete_images(source, source_diff)
        try:
            if self._delta_verify_due():
                self._verify_put_delta(program, source, source_diff, view_name)
            if not source_diff.is_empty:
                self.peer.database.apply_table_diff(program.source_table, source_diff)
        except (BXError, RelationalError) as exc:
            raise SynchronizationError(
                f"cannot reflect shared table {view_name!r} into "
                f"{program.source_table!r} incrementally: {exc}"
            ) from exc
        return source_diff

    def _verify_put_delta(self, program: BXProgram, source: Table,
                          source_diff: TableDiff, view_name: str) -> None:
        """Full-recompute oracle for the put direction: applying the delta to
        a staged copy must regenerate exactly the stored shared table."""
        self._delta_verifications += 1
        staged = source.snapshot()
        staged.apply_diff(source_diff)
        regenerated = program.get(staged)
        stored_view = self.peer.database.table(view_name)
        if regenerated.fingerprint() != stored_view.fingerprint():
            raise SynchronizationError(
                f"delta put for {view_name!r} diverged from the full recompute "
                f"(PutGet violated on the delta path); refusing to install"
            )

    def refresh_shared_table_delta(self, metadata_id: str, view_diff: TableDiff) -> TableDiff:
        """Incremental ``get``: install an already-translated view diff into
        the stored shared table, touching only the changed rows.

        The caller obtained ``view_diff`` from the lens's ``get_delta`` (see
        :meth:`changed_dependents_delta`); on the sampled verification
        schedule the patched view is compared against a full ``get`` of the
        source via ``Table.fingerprint()``.
        """
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        if view_diff.is_empty:
            return view_diff
        self._delta_get_invocations += 1
        try:
            self.peer.database.apply_table_diff(view_name, view_diff)
        except RelationalError as exc:
            raise SynchronizationError(
                f"cannot patch shared table {view_name!r} incrementally: {exc}"
            ) from exc
        if self._delta_verify_due():
            self._delta_verifications += 1
            regenerated = self.derive_view(metadata_id)
            stored_view = self.peer.database.table(view_name)
            if regenerated.fingerprint() != stored_view.fingerprint():
                # Repair the stored view from the full recompute before
                # failing loudly, so the divergence does not persist.
                self.refresh_shared_table(metadata_id)
                raise SynchronizationError(
                    f"delta get for {view_name!r} diverged from the full recompute; "
                    "the stored shared table was repaired from the base table"
                )
        return view_diff

    @property
    def unhealed_views(self) -> frozenset:
        """Metadata ids whose stored views missed a propagation (a rejected
        cascade leg) and still await exact-diff healing."""
        return frozenset(self._unhealed_views)

    def mark_view_unhealed(self, metadata_id: str) -> None:
        """Record that ``metadata_id``'s stored view missed a propagation (a
        rejected cascade leg): dependency checks must diff it exactly until a
        leg succeeds again."""
        self._unhealed_views.add(metadata_id)

    def clear_view_unhealed(self, metadata_id: str) -> None:
        """The stored view was successfully re-synchronised."""
        self._unhealed_views.discard(metadata_id)

    def changed_dependents_delta(self, metadata_id: str,
                                 source_diff: TableDiff) -> Dict[str, TableDiff]:
        """Delta form of :meth:`changed_dependents`: translate the base-table
        diff through each dependent lens instead of re-running its ``get``.

        Falls back to :meth:`pending_view_diff` per dependent when a lens
        cannot translate the diff, and for views a rejected cascade leg left
        behind (:meth:`mark_view_unhealed`) — the forward translation only
        carries the *new* change, so exact diffing is required to heal them.
        """
        if source_diff.is_empty:
            return {}
        changed: Dict[str, TableDiff] = {}
        for other in self.dependent_agreements(metadata_id):
            program = self.peer.bx_program(other)
            source = self.peer.database.table(program.source_table)
            if other in self._unhealed_views:
                view_diff = self.pending_view_diff(other)
                if view_diff.is_empty:
                    # Consistent again (the drift cancelled out); stop diffing.
                    self.clear_view_unhealed(other)
            else:
                try:
                    view_diff = program.lens.get_delta(source.schema, source_diff)
                    self._delta_get_invocations += 1
                except DeltaUnsupported:
                    self._delta_fallbacks += 1
                    view_diff = self.pending_view_diff(other)
            if not view_diff.is_empty:
                changed[other] = view_diff
        return changed

    # ----------------------------------------------------------- dependencies

    def dependent_agreements(self, metadata_id: str) -> Tuple[str, ...]:
        """Other agreements of this peer that derive from the same base table.

        These are the candidates for step 6 of Fig. 5: after reflecting an
        update into the base table, the peer must check whether these other
        shared pieces changed and need re-sharing.
        """
        program = self.peer.bx_program(metadata_id)
        return tuple(
            other for other in self.peer.agreements_sharing_source(program.source_table)
            if other != metadata_id
        )

    def changed_dependents(self, metadata_id: str) -> Dict[str, TableDiff]:
        """The subset of dependent agreements whose shared table would change,
        with the diff each would undergo."""
        changed: Dict[str, TableDiff] = {}
        for other in self.dependent_agreements(metadata_id):
            diff = self.pending_view_diff(other)
            if not diff.is_empty:
                changed[other] = diff
        return changed
