"""The database manager: runs BX programs for one peer (Fig. 2).

The manager is the component that "disposes of the synchronization between
shared data and local data according to consistency logic relations ...
implemented by executing BX programs".  Concretely it can:

* **refresh** a shared table from the local base table (``get`` direction,
  e.g. step 1 / step 7 of Fig. 5);
* **reflect** an updated shared table into the local base table (``put``
  direction, e.g. step 5 / step 11 of Fig. 5);
* compute the **diff** a refresh would cause, so the workflow knows whether a
  dependent view actually changed (step 6);
* optionally check the lens laws on the concrete data before installing an
  updated source, failing loudly instead of silently corrupting local data.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bx.laws import check_put_get
from repro.bx.registry import BXProgram
from repro.errors import BXError, ConstraintViolation, SynchronizationError
from repro.core.peer import Peer
from repro.relational.diff import TableDiff, apply_diff, diff_tables
from repro.relational.table import Table


class DatabaseManager:
    """Executes the BX programs of one peer."""

    def __init__(self, peer: Peer, check_laws: bool = True):
        self.peer = peer
        self.check_laws = check_laws
        self._get_invocations = 0
        self._put_invocations = 0

    # ----------------------------------------------------------------- metrics

    @property
    def statistics(self) -> Dict[str, int]:
        return {"get_invocations": self._get_invocations, "put_invocations": self._put_invocations}

    # ----------------------------------------------------------- get direction

    def derive_view(self, metadata_id: str) -> Table:
        """Run ``get`` and return the freshly derived view (without storing it)."""
        program = self.peer.bx_program(metadata_id)
        source = self.peer.database.table(program.source_table)
        self._get_invocations += 1
        return program.get(source)

    def pending_view_diff(self, metadata_id: str) -> TableDiff:
        """Diff between the stored shared table and a fresh ``get`` of the source.

        An empty diff means the stored shared piece is already consistent with
        the local base table (nothing to propagate).
        """
        agreement = self.peer.agreement(metadata_id)
        stored = self.peer.database.table(agreement.view_name_for(self.peer.name))
        fresh = self.derive_view(metadata_id)
        return diff_tables(stored, fresh)

    def refresh_shared_table(self, metadata_id: str) -> TableDiff:
        """Regenerate the stored shared table from the local base table (``get``).

        Returns the diff that was applied to the stored copy.
        """
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        stored = self.peer.database.table(view_name)
        fresh = self.derive_view(metadata_id)
        diff = diff_tables(stored, fresh)
        if not diff.is_empty:
            self.peer.database.replace_table(view_name, (row.to_dict() for row in fresh))
        return diff

    # ----------------------------------------------------------- put direction

    def apply_incoming_diff(self, metadata_id: str, diff: TableDiff) -> None:
        """Apply a diff received from the sharing peer to the stored shared table."""
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        table = self.peer.database.table(view_name)
        apply_diff(table, diff)
        self.peer.database.wal.append("replace", view_name,
                                      {"rows": len(table), "reason": "incoming_diff"})

    def replace_shared_table(self, metadata_id: str, snapshot: Table) -> None:
        """Replace the stored shared table with a full snapshot from the peer."""
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        self.peer.database.replace_table(view_name, (row.to_dict() for row in snapshot))

    def reflect_shared_table(self, metadata_id: str) -> TableDiff:
        """Run ``put``: embed the stored shared table back into the local base table.

        Returns the diff applied to the base table.  When law checking is
        enabled, PutGet is verified on the concrete data before the new source
        is installed; a violation raises :class:`SynchronizationError` and the
        local base table is left untouched.
        """
        program = self.peer.bx_program(metadata_id)
        agreement = self.peer.agreement(metadata_id)
        view_name = agreement.view_name_for(self.peer.name)
        source = self.peer.database.table(program.source_table)
        view = self.peer.database.table(view_name)
        self._put_invocations += 1
        try:
            new_source = program.put(source, view)
        except (BXError, ConstraintViolation) as exc:
            raise SynchronizationError(
                f"cannot reflect shared table {view_name!r} into {program.source_table!r}: {exc}"
            ) from exc
        if self.check_laws and not check_put_get(program.lens, source, view.snapshot()):
            raise SynchronizationError(
                f"PutGet law violated while reflecting {view_name!r} into "
                f"{program.source_table!r}; refusing to install an inconsistent source"
            )
        diff = diff_tables(source, new_source)
        if not diff.is_empty:
            self.peer.database.replace_table(program.source_table,
                                             (row.to_dict() for row in new_source))
        return diff

    # ----------------------------------------------------------- dependencies

    def dependent_agreements(self, metadata_id: str) -> Tuple[str, ...]:
        """Other agreements of this peer that derive from the same base table.

        These are the candidates for step 6 of Fig. 5: after reflecting an
        update into the base table, the peer must check whether these other
        shared pieces changed and need re-sharing.
        """
        program = self.peer.bx_program(metadata_id)
        return tuple(
            other for other in self.peer.agreements_sharing_source(program.source_table)
            if other != metadata_id
        )

    def changed_dependents(self, metadata_id: str) -> Dict[str, TableDiff]:
        """The subset of dependent agreements whose shared table would change,
        with the diff each would undergo."""
        changed: Dict[str, TableDiff] = {}
        for other in self.dependent_agreements(metadata_id):
            diff = self.pending_view_diff(other)
            if not diff.is_empty:
                changed[other] = diff
        return changed
