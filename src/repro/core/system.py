"""Top-level assembly of the sharing architecture (Fig. 2).

:class:`MedicalDataSharingSystem` wires everything together:

* one simulated network with a blockchain node per peer (the first node added
  is the block producer);
* one :class:`~repro.contracts.sharing_contract.SharedDataContract` and one
  :class:`~repro.contracts.registry_contract.SharingRegistryContract`
  deployed on-chain;
* a :class:`~repro.core.peer.Peer` + :class:`~repro.core.server_app.ServerApp`
  pair per stakeholder;
* pairwise data channels created lazily when agreements are established;
* an :class:`~repro.core.workflow.UpdateCoordinator` running the protocols.

Typical use::

    system = MedicalDataSharingSystem()
    doctor = system.add_peer("doctor", "Doctor")
    patient = system.add_peer("patient", "Patient")
    ... create local tables ...
    system.deploy_contracts("doctor")
    system.establish_sharing(agreement)
    trace = system.coordinator.update_shared_entry("doctor", "D13&D31", (188,),
                                                   {"dosage": "two tablets every 6h"})
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.config import SystemConfig
from repro.contracts.registry_contract import SharingRegistryContract
from repro.contracts.sharing_contract import SharedDataContract
from repro.contracts.verification import ContractSpecChecker, SpecCheckResult
from repro.errors import AgreementError, SharingError
from repro.core.audit import AuditTrail
from repro.core.peer import Peer
from repro.core.server_app import ServerApp
from repro.core.sharing import SharingAgreement
from repro.core.workflow import UpdateCoordinator
from repro.chaos import NULL_INJECTOR
from repro.network.simulator import NetworkSimulator
from repro.obs.tracer import NULL_TRACER
from repro.relational.table import Table


class MedicalDataSharingSystem:
    """The whole decentralized sharing architecture in one object."""

    def __init__(self, config: SystemConfig = SystemConfig()):
        self.config = config
        self.simulator = NetworkSimulator(
            ledger_config=config.ledger,
            network_config=config.network,
            contract_classes=(SharedDataContract, SharingRegistryContract),
        )
        self._peers: Dict[str, Peer] = {}
        self._apps: Dict[str, ServerApp] = {}
        self._agreements: Dict[str, SharingAgreement] = {}
        self.contract_address: Optional[str] = None
        self.registry_address: Optional[str] = None
        self.coordinator = UpdateCoordinator(self)
        self.tracer = NULL_TRACER
        self.injector = NULL_INJECTOR
        self.retry_policy = None

    # ----------------------------------------------------------- observability

    def attach_tracer(self, tracer) -> None:
        """Thread one tracer through the whole pipeline: the coordinator's
        consensus/delta spans, every miner's lane spans and every durable
        peer database's WAL spans."""
        self.tracer = tracer
        self.coordinator.tracer = tracer
        for node in self.simulator.nodes:
            if node.miner is not None:
                node.miner.tracer = tracer
        for peer in self._peers.values():
            backend = peer.database.wal.backend
            if backend is not None:
                backend.tracer = tracer

    # ------------------------------------------------------------------- chaos

    def attach_chaos(self, injector, retry_policy=None,
                     registry=None) -> None:
        """Thread one fault injector (and optionally a retry policy) through
        the pipeline: the transport's drop/delay/crash probes, the
        coordinator's commit/consensus/contract probes, and every durable
        peer WAL's append/fsync probes.

        Transport fault targets are node addresses (``node-<peer>``); WAL
        fault targets are peer names.  With a retry policy, consensus rounds,
        dropped gossip messages and WAL appends/fsyncs self-heal with
        deterministic backoff (each wired retrier gets its own seed derived
        from the injector's, so retry jitter is replayable).
        """
        from repro.chaos import Retrier
        self.injector = injector
        self.retry_policy = retry_policy
        clock = self.simulator.clock
        self.simulator.transport.configure_chaos(injector=injector,
                                                 retry_policy=retry_policy)
        self.coordinator.injector = injector
        if retry_policy is not None:
            self.coordinator.retrier = Retrier(
                retry_policy, clock, seed=injector.seed + 101,
                name="consensus", tracer=self.tracer, registry=registry)
        for index, name in enumerate(sorted(self._peers)):
            self._wire_peer_chaos(name, index, registry)

    def _wire_peer_chaos(self, name: str, index: int, registry=None) -> None:
        backend = self._peers[name].database.wal.backend
        if backend is None:
            return
        backend.injector = self.injector
        backend.fault_target = name
        if self.retry_policy is not None:
            from repro.chaos import Retrier
            backend.retrier = Retrier(
                self.retry_policy, self.simulator.clock,
                seed=self.injector.seed + 211 + index,
                name=f"wal:{name}", tracer=self.tracer, registry=registry)

    # -------------------------------------------------------------------- peers

    def _open_peer_database(self, name: str):
        """Create-or-recover ``name``'s durable database under the configured
        ``durability.state_dir`` (None when durability is off)."""
        durability = self.config.durability
        if durability.state_dir is None:
            return None
        from repro.relational.durability import open_durable_database
        peer_dir = pathlib.Path(durability.state_dir) / "peers" / name
        with self.tracer.span("durability.recover", peer=name) as span:
            database = open_durable_database(
                f"{name}_db", peer_dir,
                fsync_policy=durability.fsync_policy,
                segment_max_bytes=durability.segment_max_bytes)
            span.annotate(tables=len(database.table_names))
        backend = database.wal.backend
        if backend is not None:
            backend.tracer = self.tracer
        return database

    def add_peer(self, name: str, role: str, is_miner: Optional[bool] = None) -> Peer:
        """Create a peer, its blockchain node and its server app.

        With ``config.durability.state_dir`` set, the peer's database is
        durable automatically: created under ``<state_dir>/peers/<name>`` on
        first use and recovered from its checkpoint + WAL on later runs.
        """
        if name in self._peers:
            raise SharingError(f"peer {name!r} already exists")
        if is_miner is None:
            is_miner = not self._peers  # the first peer's node produces blocks
        peer = Peer(name=name, role=role, database=self._open_peer_database(name))
        node = self.simulator.add_node(f"node-{name}", is_miner=is_miner)
        if node.miner is not None:
            node.miner.tracer = self.tracer
        app = ServerApp(peer, node, self.simulator.channels,
                        check_lens_laws=self.config.check_lens_laws,
                        delta_verify_interval=self.config.delta_verify_interval)
        if self.contract_address is not None:
            app.contract_address = self.contract_address
            app.registry_address = self.registry_address
        self._peers[name] = peer
        self._apps[name] = app
        if self.injector is not NULL_INJECTOR:
            self._wire_peer_chaos(name, len(self._peers) - 1)
        return peer

    def sync_durability(self) -> int:
        """Fsync every durable peer database's WAL (a commit boundary for the
        ``batch`` policy); returns how many databases were synced."""
        synced = 0
        for peer in self._peers.values():
            if peer.database.wal.durable:
                peer.database.wal.sync()
                synced += 1
        return synced

    def peer(self, name: str) -> Peer:
        if name not in self._peers:
            raise SharingError(f"unknown peer {name!r}")
        return self._peers[name]

    def server_app(self, name: str) -> ServerApp:
        if name not in self._apps:
            raise SharingError(f"unknown peer {name!r}")
        return self._apps[name]

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._peers))

    @property
    def peers(self) -> Tuple[Peer, ...]:
        return tuple(self._peers[name] for name in sorted(self._peers))

    # ---------------------------------------------------------------- contracts

    def deploy_contracts(self, deployer: str) -> Tuple[str, str]:
        """Deploy the sharing contract and the registry contract.

        Returns ``(sharing_contract_address, registry_contract_address)``.
        """
        if self.contract_address is not None:
            raise SharingError("contracts are already deployed")
        app = self.server_app(deployer)
        sharing_tx = app.build_deploy("SharedDataContract")
        self.simulator.submit_transaction(app.node.name, sharing_tx)
        self.simulator.mine()
        sharing_receipt = app.node.chain.receipt(sharing_tx.tx_hash)
        if not sharing_receipt.success or not sharing_receipt.contract_address:
            raise SharingError(f"sharing contract deployment failed: {sharing_receipt.error}")
        registry_tx = app.build_deploy("SharingRegistryContract")
        self.simulator.submit_transaction(app.node.name, registry_tx)
        self.simulator.mine()
        registry_receipt = app.node.chain.receipt(registry_tx.tx_hash)
        if not registry_receipt.success or not registry_receipt.contract_address:
            raise SharingError(f"registry contract deployment failed: {registry_receipt.error}")
        self.contract_address = sharing_receipt.contract_address
        self.registry_address = registry_receipt.contract_address
        for app in self._apps.values():
            app.contract_address = self.contract_address
            app.registry_address = self.registry_address
        return self.contract_address, self.registry_address

    # --------------------------------------------------------------- agreements

    def establish_sharing(self, agreement: SharingAgreement) -> str:
        """Register a sharing agreement on-chain and set both peers up locally.

        Steps:

        1. both peers adopt the agreement (register the BX program, materialise
           the shared table from their own base table);
        2. the initiator registers the Fig. 3 metadata entry on the sharing
           contract and the agreement id on the registry contract;
        3. a pairwise data channel between the two peers is created.

        Returns the metadata id.
        """
        if self.contract_address is None:
            raise SharingError("deploy_contracts must be called before establishing sharing")
        if agreement.metadata_id in self._agreements:
            raise AgreementError(f"agreement {agreement.metadata_id!r} already established")
        for peer_name in agreement.peers:
            if peer_name not in self._peers:
                raise AgreementError(f"agreement references unknown peer {peer_name!r}")

        for peer_name in agreement.peers:
            self.peer(peer_name).join_agreement(agreement)

        initiator_app = self.server_app(agreement.initiator)
        sharing_peers = {
            self.peer(name).address: agreement.role_of(name) for name in agreement.peers
        }
        register_tx = initiator_app.build_contract_call(
            "register_shared_table",
            {
                "metadata_id": agreement.metadata_id,
                "sharing_peers": sharing_peers,
                "write_permission": {k: list(v) for k, v in agreement.write_permission.items()},
                "authority_role": agreement.authority_role,
                "view_spec": agreement.to_dict(),
            },
        )
        self.simulator.submit_transaction(initiator_app.node.name, register_tx)
        self.simulator.mine()
        receipt = initiator_app.node.chain.receipt(register_tx.tx_hash)
        if not receipt.success:
            raise AgreementError(
                f"on-chain registration of {agreement.metadata_id!r} failed: {receipt.error}"
            )

        registry_tx = initiator_app.build_contract_call(
            "register_agreement",
            {"metadata_id": agreement.metadata_id,
             "contract_address": self.contract_address,
             "description": f"shared table {agreement.metadata_id} between "
                            f"{' and '.join(agreement.peers)}"},
            contract_address=self.registry_address,
        )
        self.simulator.submit_transaction(initiator_app.node.name, registry_tx)
        self.simulator.mine()

        self.simulator.channels.channel_between(*agreement.peers)
        self._agreements[agreement.metadata_id] = agreement
        return agreement.metadata_id

    def agreement(self, metadata_id: str) -> SharingAgreement:
        if metadata_id not in self._agreements:
            raise AgreementError(f"unknown agreement {metadata_id!r}")
        return self._agreements[metadata_id]

    @property
    def agreement_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._agreements))

    # ------------------------------------------------------------- consistency

    @staticmethod
    def _normalised_rows(table: Table) -> Dict[tuple, dict]:
        key_columns = table.schema.primary_key or table.schema.column_names
        return {row.key(key_columns): dict(sorted(row.to_dict().items())) for row in table}

    def shared_tables_consistent(self, metadata_id: str) -> bool:
        """True when both peers' stored copies of the shared table hold the same data."""
        agreement = self.agreement(metadata_id)
        peer_a, peer_b = agreement.peers
        table_a = self.peer(peer_a).shared_table(metadata_id)
        table_b = self.peer(peer_b).shared_table(metadata_id)
        if set(table_a.schema.column_names) != set(table_b.schema.column_names):
            return False
        return self._normalised_rows(table_a) == self._normalised_rows(table_b)

    def all_shared_tables_consistent(self) -> bool:
        return all(self.shared_tables_consistent(mid) for mid in self._agreements)

    def state_fingerprints(self) -> Dict[str, Dict[str, str]]:
        """Content fingerprints of every peer's every table, sorted.

        The chaos-soak convergence check: a faulted run (drops, fsync
        errors, crashes, slow rounds) must end with *exactly* these
        fingerprints matching a fault-free oracle's — retries and
        retransmissions may change timings, never data.  Deliberately
        excludes block/transaction timestamps (injected delays stretch the
        sim clock), so the comparison is over the relational outcome the
        paper's protocols guarantee.
        """
        return {
            name: {table: peer.database.table(table).fingerprint()
                   for table in sorted(peer.database.table_names)}
            for name, peer in sorted(self._peers.items())
        }

    def views_consistent_with_sources(self) -> bool:
        """True when every stored shared table equals a fresh ``get`` of its source."""
        for name, app in self._apps.items():
            for metadata_id in self.peer(name).agreement_ids:
                if not app.manager.pending_view_diff(metadata_id).is_empty:
                    return False
        return True

    # ----------------------------------------------------------------- services

    def audit_trail(self, via_peer: Optional[str] = None) -> AuditTrail:
        """Build the audit trail from one peer's node replica."""
        if self.contract_address is None:
            raise SharingError("contracts are not deployed")
        name = via_peer or self.peer_names[0]
        return AuditTrail(self.server_app(name).node, self.contract_address)

    def check_contract_specification(self, via_peer: Optional[str] = None) -> SpecCheckResult:
        """Run the executable §IV.2 specification checks on the deployed contract."""
        if self.contract_address is None:
            raise SharingError("contracts are not deployed")
        name = via_peer or self.peer_names[0]
        node = self.server_app(name).node
        contract = node.contract_at(self.contract_address)
        checker = ContractSpecChecker(contract, node.chain)
        return checker.check_all()

    def statistics(self) -> Dict[str, object]:
        """System-wide counters used by the benchmark harness."""
        stats = dict(self.simulator.statistics())
        stats.update(
            {
                "peers": len(self._peers),
                "agreements": len(self._agreements),
                "bx_invocations": {
                    name: app.manager.statistics for name, app in sorted(self._apps.items())
                },
                "peer_storage_bytes": {
                    name: peer.storage_bytes() for name, peer in sorted(self._peers.items())
                },
            }
        )
        return stats
