"""Scenario builders: the exact Fig. 1 data distribution, and scaled variants.

``build_paper_scenario`` constructs the paper's running example verbatim:

* **Patient** (patient 188) keeps D1 with attributes a0..a4;
* **Researcher** keeps D2 with attributes a1, a5, a6 for both medications;
* **Doctor** keeps D3 with attributes a0, a1, a2, a4, a5 for patients 188/189;
* shared table **D13 = D31** (a0, a1, a2, a4 of patient 188) between Patient
  and Doctor, with the Fig. 3 permissions (Doctor writes everything, Patient
  may write clinical data, Doctor holds the authority);
* shared table **D23 = D32** (a1, a5) between Doctor and Researcher, with the
  Fig. 3 permissions (both write medication name, Researcher writes the
  mechanism of action, Researcher holds the authority).

``build_scaled_scenario`` produces the same topology with synthetic data of
configurable size, which the throughput/scaling benchmarks use.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bx.dsl import ViewSpec
from repro.config import SystemConfig
from repro.core.records import doctor_schema, patient_schema, researcher_schema
from repro.core.sharing import SharingAgreement
from repro.core.system import MedicalDataSharingSystem
from repro.relational.predicates import Eq, In

#: The metadata ids used by the paper's two shared tables.
PATIENT_DOCTOR_TABLE = "D13&D31"
DOCTOR_RESEARCHER_TABLE = "D23&D32"

#: The two full records of Fig. 1.
PAPER_RECORDS = (
    {
        "patient_id": 188,
        "medication_name": "Ibuprofen",
        "clinical_data": "CliD1",
        "address": "Sapporo",
        "dosage": "one tablet every 4h",
        "mechanism_of_action": "MeA1",
        "mode_of_action": "MoA1",
    },
    {
        "patient_id": 189,
        "medication_name": "Wellbutrin",
        "clinical_data": "CliD2",
        "address": "Osaka",
        "dosage": "100 mg twice daily",
        "mechanism_of_action": "MeA2",
        "mode_of_action": "MoA2",
    },
)


def _patient_rows(records, patient_ids) -> list:
    columns = ("patient_id", "medication_name", "clinical_data", "address", "dosage")
    return [
        {column: record[column] for column in columns}
        for record in records if record["patient_id"] in patient_ids
    ]


def _doctor_rows(records) -> list:
    columns = ("patient_id", "medication_name", "clinical_data", "dosage",
               "mechanism_of_action")
    return [{column: record[column] for column in columns} for record in records]


def _researcher_rows(records) -> list:
    columns = ("medication_name", "mechanism_of_action", "mode_of_action")
    seen = {}
    for record in records:
        seen[record["medication_name"]] = {column: record[column] for column in columns}
    return list(seen.values())


def patient_doctor_agreement(patient_name: str = "patient", doctor_name: str = "doctor",
                             patient_ids: Tuple[int, ...] = (188,),
                             metadata_id: str = PATIENT_DOCTOR_TABLE) -> SharingAgreement:
    """The D13/D31 agreement with the Fig. 3 write permissions."""
    shared_columns = ("patient_id", "medication_name", "clinical_data", "dosage")
    patient_filter = (
        Eq("patient_id", patient_ids[0]) if len(patient_ids) == 1 else In("patient_id", patient_ids)
    )
    patient_spec = ViewSpec(
        source_table="D1",
        view_name="D13",
        columns=shared_columns,
        view_key=("patient_id",),
    )
    doctor_spec = ViewSpec(
        source_table="D3",
        view_name="D31",
        columns=shared_columns,
        view_key=("patient_id",),
        where=patient_filter,
    )
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a=doctor_name, role_a="Doctor", spec_a=doctor_spec,
        peer_b=patient_name, role_b="Patient", spec_b=patient_spec,
        write_permission={
            "patient_id": ("Doctor",),
            "medication_name": ("Doctor",),
            "dosage": ("Doctor",),
            "clinical_data": ("Patient", "Doctor"),
        },
        authority_role="Doctor",
        initiator=doctor_name,
    )


def doctor_researcher_agreement(doctor_name: str = "doctor", researcher_name: str = "researcher",
                                metadata_id: str = DOCTOR_RESEARCHER_TABLE) -> SharingAgreement:
    """The D23/D32 agreement with the Fig. 3 write permissions."""
    shared_columns = ("medication_name", "mechanism_of_action")
    researcher_spec = ViewSpec(
        source_table="D2",
        view_name="D23",
        columns=shared_columns,
        view_key=("medication_name",),
    )
    doctor_spec = ViewSpec(
        source_table="D3",
        view_name="D32",
        columns=shared_columns,
        view_key=("medication_name",),
    )
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a=researcher_name, role_a="Researcher", spec_a=researcher_spec,
        peer_b=doctor_name, role_b="Doctor", spec_b=doctor_spec,
        write_permission={
            "medication_name": ("Doctor", "Researcher"),
            "mechanism_of_action": ("Researcher",),
        },
        authority_role="Researcher",
        initiator=researcher_name,
    )


def build_paper_scenario(config: Optional[SystemConfig] = None) -> MedicalDataSharingSystem:
    """Build the complete Fig. 1 scenario, contracts deployed and sharing live."""
    return build_scaled_scenario(records=PAPER_RECORDS, config=config)


#: Metadata ids of the extended (CARE/STUDY) scenario below.
CARE_TABLE = "CARE:D13&D31"
STUDY_TABLE = "STUDY:D3S&DS3"


def build_extended_scenario(config: Optional[SystemConfig] = None,
                            records=PAPER_RECORDS) -> MedicalDataSharingSystem:
    """A richer doctor/patient/researcher scenario used by the cascade and
    create/delete experiments.

    The paper's exact Fig. 1 views only overlap on the key of the functional
    D32 view, so the Fig. 5 steps 6-11 cascade (the doctor re-sharing an
    absorbed change with the patient) cannot be triggered by a plain value
    update there.  This variant keeps the same three stakeholders and local
    schemas but shares:

    * ``CARE``  — doctor ↔ patient: (patient_id, medication_name,
      clinical_data, dosage), keyed by patient id, no row filter;
    * ``STUDY`` — doctor ↔ researcher: (patient_id, dosage,
      mechanism_of_action), keyed by patient id (the researcher keeps a
      per-patient study table ``DS``).

    ``dosage`` overlaps between the two shared tables, so a researcher-side
    dosage update flows STUDY → D3 → CARE → patient — exactly the Fig. 5
    narrative — and entry-level create/delete translate cleanly through every
    lens involved.
    """
    from repro.core.records import schema_for_attributes

    records = tuple(records)
    system = MedicalDataSharingSystem(config or SystemConfig.private_chain())
    doctor = system.add_peer("doctor", "Doctor")
    patient = system.add_peer("patient", "Patient")
    researcher = system.add_peer("researcher", "Researcher")

    doctor.database.create_table("D3", doctor_schema(), _doctor_rows(records))
    patient.database.create_table(
        "D1", patient_schema(),
        _patient_rows(records, {record["patient_id"] for record in records}))
    study_schema = schema_for_attributes(
        ["patient_id", "dosage", "mechanism_of_action"], primary_key=["patient_id"])
    researcher.database.create_table(
        "DS", study_schema,
        [{c: record[c] for c in ("patient_id", "dosage", "mechanism_of_action")}
         for record in records])

    system.deploy_contracts("doctor")

    care_columns = ("patient_id", "medication_name", "clinical_data", "dosage")
    system.establish_sharing(SharingAgreement.build(
        metadata_id=CARE_TABLE,
        peer_a="doctor", role_a="Doctor",
        spec_a=ViewSpec(source_table="D3", view_name="D31", columns=care_columns,
                        view_key=("patient_id",)),
        peer_b="patient", role_b="Patient",
        spec_b=ViewSpec(source_table="D1", view_name="D13", columns=care_columns,
                        view_key=("patient_id",)),
        write_permission={
            "patient_id": ("Doctor",),
            "medication_name": ("Doctor",),
            "dosage": ("Doctor",),
            "clinical_data": ("Patient", "Doctor"),
        },
        authority_role="Doctor",
        initiator="doctor",
    ))

    study_columns = ("patient_id", "dosage", "mechanism_of_action")
    system.establish_sharing(SharingAgreement.build(
        metadata_id=STUDY_TABLE,
        peer_a="researcher", role_a="Researcher",
        spec_a=ViewSpec(source_table="DS", view_name="DS3", columns=study_columns,
                        view_key=("patient_id",)),
        peer_b="doctor", role_b="Doctor",
        spec_b=ViewSpec(source_table="D3", view_name="D3S", columns=study_columns,
                        view_key=("patient_id",)),
        write_permission={
            "patient_id": ("Doctor",),
            "dosage": ("Doctor", "Researcher"),
            "mechanism_of_action": ("Doctor", "Researcher"),
        },
        authority_role="Researcher",
        initiator="researcher",
    ))
    return system


def build_scaled_scenario(records=PAPER_RECORDS, patient_ids: Optional[Tuple[int, ...]] = None,
                          config: Optional[SystemConfig] = None) -> MedicalDataSharingSystem:
    """Build the Fig. 1 topology over an arbitrary set of full records.

    Parameters
    ----------
    records:
        An iterable of full-record dictionaries (a0..a6 columns).  Defaults to
        the two records of the paper.
    patient_ids:
        Which patient ids belong to the "patient" peer (and hence appear in
        D1 and the D13/D31 shared table).  Defaults to the first record's id.
    config:
        Optional :class:`~repro.config.SystemConfig` (consensus, latencies,
        law checking).
    """
    records = tuple(records)
    if not records:
        raise ValueError("a scenario needs at least one full record")
    if patient_ids is None:
        patient_ids = (records[0]["patient_id"],)

    system = MedicalDataSharingSystem(config or SystemConfig.private_chain())
    doctor = system.add_peer("doctor", "Doctor")
    patient = system.add_peer("patient", "Patient")
    researcher = system.add_peer("researcher", "Researcher")

    patient.database.create_table("D1", patient_schema(), _patient_rows(records, set(patient_ids)))
    doctor.database.create_table("D3", doctor_schema(), _doctor_rows(records))
    researcher.database.create_table("D2", researcher_schema(), _researcher_rows(records))

    system.deploy_contracts("doctor")
    system.establish_sharing(patient_doctor_agreement(patient_ids=tuple(patient_ids)))
    system.establish_sharing(doctor_researcher_agreement())
    return system
