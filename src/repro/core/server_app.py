"""The per-peer server application (the "Server App" box of Fig. 2).

The server app mediates between one peer's client side, its database manager,
its trusted blockchain node and the pairwise data channels:

* it signs and submits contract-call transactions through the trusted node;
* it listens to contract events on that node and turns the ones addressed to
  its peer into :class:`Notification` objects ("the smart contract notifies
  sharing peers of the modification");
* it serves data requests from sharing peers and fetches updated shared data
  from them over the pairwise channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.contracts.runtime import ContractRuntime
from repro.core.manager import DatabaseManager
from repro.core.peer import Peer
from repro.errors import SharingError
from repro.ledger.events import LogEntry
from repro.ledger.transaction import Transaction
from repro.network.channels import ChannelRegistry, ChannelTransfer
from repro.network.node import BlockchainNode
from repro.relational.diff import TableDiff
from repro.relational.table import Table


@dataclass(frozen=True)
class Notification:
    """A contract event addressed to this peer."""

    metadata_id: str
    operation: str
    update_id: int
    requester: str
    requester_role: str
    changed_attributes: Tuple[str, ...]
    diff_hash: str
    block_number: int

    @staticmethod
    def from_event(entry: LogEntry) -> "Notification":
        data = entry.data
        return Notification(
            metadata_id=data.get("metadata_id", ""),
            operation=data.get("operation", ""),
            update_id=int(data.get("update_id", 0)),
            requester=data.get("requester", ""),
            requester_role=data.get("requester_role", ""),
            changed_attributes=tuple(data.get("changed_attributes", ())),
            diff_hash=data.get("diff_hash", ""),
            block_number=entry.block_number,
        )


class ServerApp:
    """Mediator between one peer and the rest of the system."""

    def __init__(self, peer: Peer, node: BlockchainNode, channels: ChannelRegistry,
                 check_lens_laws: bool = True, delta_verify_interval: int = 16):
        self.peer = peer
        self.node = node
        self.channels = channels
        self.manager = DatabaseManager(peer, check_laws=check_lens_laws,
                                       delta_verify_interval=delta_verify_interval)
        self.contract_address: Optional[str] = None
        self.registry_address: Optional[str] = None
        self._notifications: List[Notification] = []
        #: metadata_id → most recent outgoing diff, served to requesting peers.
        self.outgoing_diffs: Dict[str, TableDiff] = {}
        node.subscribe_events(self._on_event)

    # -------------------------------------------------------------------- events

    def _on_event(self, entry: LogEntry) -> None:
        if entry.name != "SharedDataChanged":
            return
        notify_peers = entry.data.get("notify_peers", ())
        if self.peer.address not in notify_peers:
            return
        self._notifications.append(Notification.from_event(entry))

    @property
    def notifications(self) -> Tuple[Notification, ...]:
        return tuple(self._notifications)

    def pop_notifications(self, metadata_id: Optional[str] = None) -> List[Notification]:
        """Remove and return pending notifications (optionally for one table)."""
        if metadata_id is None:
            popped, self._notifications = self._notifications, []
            return popped
        popped = [n for n in self._notifications if n.metadata_id == metadata_id]
        self._notifications = [n for n in self._notifications if n.metadata_id != metadata_id]
        return popped

    # ------------------------------------------------------------- transactions

    def build_contract_call(self, method: str, args: Mapping[str, Any],
                            contract_address: Optional[str] = None) -> Transaction:
        """Build and sign a contract-call transaction from this peer."""
        address = contract_address or self.contract_address
        if address is None:
            raise SharingError(
                f"peer {self.peer.name!r} has no sharing contract address configured"
            )
        confirmed = self.node.chain.state.nonce_of(self.peer.address)
        nonce = self.node.mempool.next_nonce(self.peer.address, confirmed)
        tx = Transaction(
            sender=self.peer.address,
            kind="call",
            nonce=nonce,
            contract=address,
            method=method,
            args=dict(args),
            timestamp=self.node.clock.now(),
        )
        return tx.signed_by(self.peer.keypair)

    def build_deploy(self, contract_class_name: str,
                     args: Optional[Mapping[str, Any]] = None) -> Transaction:
        """Build and sign a contract-deployment transaction from this peer."""
        confirmed = self.node.chain.state.nonce_of(self.peer.address)
        nonce = self.node.mempool.next_nonce(self.peer.address, confirmed)
        tx = Transaction(
            sender=self.peer.address,
            kind="deploy",
            nonce=nonce,
            method=contract_class_name,
            args=dict(args or {}),
            timestamp=self.node.clock.now(),
        )
        return tx.signed_by(self.peer.keypair)

    # ----------------------------------------------------------------- queries

    def query_contract(self, method: str, **args: Any) -> Any:
        """Read-only call against this peer's node replica of the sharing contract."""
        if self.contract_address is None:
            raise SharingError(
                f"peer {self.peer.name!r} has no sharing contract address configured"
            )
        return self.node.static_call(self.contract_address, method,
                                     caller=self.peer.address, **args)

    def can_write(self, metadata_id: str, attribute: str) -> bool:
        """Permission probe for this peer on one attribute of a shared table."""
        return bool(
            self.query_contract(
                "can_peer_write",
                metadata_id=metadata_id,
                address=self.peer.address,
                attribute=attribute,
            )
        )

    # ------------------------------------------------------------ data channel

    def channel_to(self, other_peer_name: str):
        return self.channels.channel_between(self.peer.name, other_peer_name)

    def request_shared_data(self, metadata_id: str, provider_peer_name: str,
                            since_update: Optional[int] = None) -> ChannelTransfer:
        """Ask the sharing peer for the newest shared data ("request updated data")."""
        channel = self.channel_to(provider_peer_name)
        return channel.request_data(self.peer.name, provider_peer_name,
                                    self.peer.agreement(metadata_id).view_name_for(
                                        provider_peer_name),
                                    since_update=since_update)

    def serve_shared_data(self, metadata_id: str, requester_peer_name: str,
                          mode: str = "diff") -> ChannelTransfer:
        """Send the newest shared data to the requesting peer ("send updated data").

        ``mode="diff"`` sends the most recent outgoing row-level diff when one
        is available, falling back to a full snapshot otherwise.
        """
        channel = self.channel_to(requester_peer_name)
        if mode == "diff" and metadata_id in self.outgoing_diffs:
            return channel.send_diff(self.peer.name, requester_peer_name,
                                     self.outgoing_diffs[metadata_id])
        snapshot = self.peer.shared_table(metadata_id)
        return channel.send_snapshot(self.peer.name, requester_peer_name, snapshot)

    def receive_shared_data(self, metadata_id: str, transfer: ChannelTransfer) -> None:
        """Install shared data received over a channel into the local database."""
        if transfer.kind == "diff":
            self.manager.apply_incoming_diff(metadata_id, TableDiff.from_dict(transfer.payload))
        elif transfer.kind == "snapshot":
            self.manager.replace_shared_table(metadata_id, Table.from_dict(transfer.payload))
        else:
            raise SharingError(f"cannot install channel transfer of kind {transfer.kind!r}")
