"""The paper's medical-record schema.

Fig. 1 defines a full medical record with seven attributes::

    a0. patient ID          a4. dosage
    a1. medication name     a5. mechanism of action
    a2. clinical data       a6. mode of action
    a3. address

and the local tables each stakeholder keeps:

* **Patient (D1)** — a0..a4
* **Researcher (D2)** — a1, a5, a6
* **Doctor (D3)** — a0, a1, a2, a4, a5

This module names those attributes once, with readable column identifiers,
and builds the corresponding schemas.  Everything downstream (scenario
builder, workloads, benchmarks) uses these definitions, so the reproduction's
data layout is exactly the paper's.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.relational.schema import Column, DataType, Schema

#: Paper attribute id → readable column name.
ATTRIBUTE_LABELS: Dict[str, str] = {
    "a0": "patient_id",
    "a1": "medication_name",
    "a2": "clinical_data",
    "a3": "address",
    "a4": "dosage",
    "a5": "mechanism_of_action",
    "a6": "mode_of_action",
}

#: Readable column name → paper attribute id.
COLUMN_TO_ATTRIBUTE: Dict[str, str] = {v: k for k, v in ATTRIBUTE_LABELS.items()}

#: The full record's columns, in the paper's order a0..a6.
FULL_RECORD_COLUMNS: Tuple[str, ...] = tuple(
    ATTRIBUTE_LABELS[f"a{i}"] for i in range(7)
)

_COLUMN_TYPES: Dict[str, DataType] = {
    "patient_id": DataType.INTEGER,
    "medication_name": DataType.STRING,
    "clinical_data": DataType.STRING,
    "address": DataType.STRING,
    "dosage": DataType.STRING,
    "mechanism_of_action": DataType.STRING,
    "mode_of_action": DataType.STRING,
}


def _columns(names: Sequence[str], not_null: Sequence[str] = ()) -> Tuple[Column, ...]:
    not_null_set = set(not_null)
    return tuple(
        Column(
            name=name,
            dtype=_COLUMN_TYPES.get(name, DataType.STRING),
            nullable=name not in not_null_set,
            description=COLUMN_TO_ATTRIBUTE.get(name, ""),
        )
        for name in names
    )


def full_record_schema() -> Schema:
    """The schema of the "Full medical records" table of Fig. 1 (a0..a6)."""
    return Schema(
        columns=_columns(FULL_RECORD_COLUMNS, not_null=("patient_id",)),
        primary_key=("patient_id",),
    )


def patient_schema() -> Schema:
    """Patient's local table D1: attributes a0..a4, keyed by patient id."""
    names = tuple(ATTRIBUTE_LABELS[f"a{i}"] for i in range(5))
    return Schema(columns=_columns(names, not_null=("patient_id",)),
                  primary_key=("patient_id",))


def researcher_schema() -> Schema:
    """Researcher's local table D2: attributes a1, a5, a6, keyed by medication."""
    names = ("medication_name", "mechanism_of_action", "mode_of_action")
    return Schema(columns=_columns(names, not_null=("medication_name",)),
                  primary_key=("medication_name",))


def doctor_schema() -> Schema:
    """Doctor's local table D3: attributes a0, a1, a2, a4, a5, keyed by patient id."""
    names = ("patient_id", "medication_name", "clinical_data", "dosage",
             "mechanism_of_action")
    return Schema(columns=_columns(names, not_null=("patient_id",)),
                  primary_key=("patient_id",))


def schema_for_attributes(attributes: Sequence[str], primary_key: Sequence[str] = ()) -> Schema:
    """Build a schema from paper attribute ids (``"a0"``..) or column names."""
    names = [ATTRIBUTE_LABELS.get(attr, attr) for attr in attributes]
    key = tuple(ATTRIBUTE_LABELS.get(attr, attr) for attr in primary_key)
    return Schema(columns=_columns(names, not_null=key), primary_key=key)


def attribute_ids(columns: Sequence[str]) -> Tuple[str, ...]:
    """Map readable column names back to the paper's a0..a6 labels."""
    return tuple(COLUMN_TO_ATTRIBUTE.get(column, column) for column in columns)
