"""A sharing peer: identity, role, local database and BX programs.

A peer is one stakeholder of the sharing network — a patient, a doctor, a
researcher, a hospital, ...  Each peer owns:

* a deterministic key pair and the derived blockchain account address;
* a local :class:`~repro.relational.database.Database` holding its full data
  *and* the shared data pieces (the paper: "each user has a full database and
  many data pieces shared with other users");
* a :class:`~repro.bx.registry.BXRegistry` of the bidirectional programs that
  keep each shared piece consistent with its local base table;
* the sharing agreements it participates in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bx.dsl import ViewSpec, lens_from_spec
from repro.bx.registry import BXProgram, BXRegistry
from repro.crypto.keys import KeyPair, generate_keypair
from repro.errors import AgreementError, UnknownTableError
from repro.core.sharing import SharingAgreement
from repro.relational.database import Database
from repro.relational.table import Table


def _seed_from_name(name: str) -> int:
    """A stable per-peer key seed derived from the peer's name."""
    return int.from_bytes(name.encode("utf-8")[:8].ljust(8, b"\0"), "big") or 1


class Peer:
    """One stakeholder in the medical-data sharing network."""

    def __init__(self, name: str, role: str, key_seed: Optional[int] = None,
                 database: Optional[Database] = None):
        self.name = name
        self.role = role
        self.keypair: KeyPair = generate_keypair(seed=key_seed or _seed_from_name(name))
        # A pre-built database (e.g. a durable one recovered from disk by the
        # system) may be injected; the default stays purely in-memory.
        self.database = (database if database is not None
                         else Database(name=f"{name}_db"))
        self.bx = BXRegistry()
        self.agreements: Dict[str, SharingAgreement] = {}
        #: metadata_id → BX program name for this peer's side of the agreement.
        self._bx_name_by_agreement: Dict[str, str] = {}

    # ---------------------------------------------------------------- identity

    @property
    def address(self) -> str:
        """The blockchain account address of this peer."""
        return self.keypair.address

    def __repr__(self) -> str:
        return f"Peer({self.name!r}, role={self.role!r})"

    # ------------------------------------------------------------- local tables

    def local_table(self, name: str) -> Table:
        return self.database.table(name)

    def shared_table(self, metadata_id: str) -> Table:
        """The stored copy of the shared table for one agreement."""
        agreement = self.agreement(metadata_id)
        return self.database.table(agreement.view_name_for(self.name))

    # ----------------------------------------------------------------- sharing

    def agreement(self, metadata_id: str) -> SharingAgreement:
        if metadata_id not in self.agreements:
            raise AgreementError(f"peer {self.name!r} is not part of agreement {metadata_id!r}")
        return self.agreements[metadata_id]

    @property
    def agreement_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self.agreements))

    def join_agreement(self, agreement: SharingAgreement,
                       materialize: bool = True) -> BXProgram:
        """Adopt a sharing agreement: register its BX program and, optionally,
        materialise the shared table from the local base table.

        The BX program is named ``BX-<view name>`` (e.g. ``BX-D31``), matching
        the paper's convention of one named program per source/view pair.
        """
        definition = agreement.definition_for(self.name)
        spec: ViewSpec = definition.view_spec
        if not self.database.has_table(spec.source_table):
            raise AgreementError(
                f"peer {self.name!r} has no local table {spec.source_table!r} "
                f"required by agreement {agreement.metadata_id!r}"
            )
        if spec.join_table is not None and not self.database.has_table(spec.join_table):
            raise AgreementError(
                f"peer {self.name!r} has no local reference table {spec.join_table!r} "
                f"required by agreement {agreement.metadata_id!r}"
            )
        bx_name = f"BX-{spec.view_name}"
        # Join specs resolve their reference table against this peer's live
        # database at every get/put, so reference edits are always current.
        program = self.bx.register_spec(bx_name, spec,
                                        resolve_table=self.database.table)
        self.agreements[agreement.metadata_id] = agreement
        self._bx_name_by_agreement[agreement.metadata_id] = bx_name
        if materialize:
            self._materialize_shared_table(program)
        return program

    def _materialize_shared_table(self, program: BXProgram) -> None:
        source = self.database.table(program.source_table)
        view = program.get(source)
        if self.database.has_table(program.view_name):
            self.database.replace_table(program.view_name,
                                        (row.to_dict() for row in view))
        else:
            self.database.create_table(program.view_name, view.schema,
                                       (row.to_dict() for row in view))

    def bx_program(self, metadata_id: str) -> BXProgram:
        """The BX program maintaining this peer's side of one agreement."""
        if metadata_id not in self._bx_name_by_agreement:
            raise AgreementError(
                f"peer {self.name!r} has no BX program for agreement {metadata_id!r}"
            )
        return self.bx.get(self._bx_name_by_agreement[metadata_id])

    def agreements_sharing_source(self, source_table: str) -> Tuple[str, ...]:
        """Metadata ids of agreements whose shared view derives from ``source_table``.

        Step 6 of Fig. 5 asks whether other shared pieces of the same source
        overlap with a change; this is the lookup that question starts from.
        """
        result = []
        for metadata_id in sorted(self.agreements):
            program = self.bx_program(metadata_id)
            if program.source_table == source_table:
                result.append(metadata_id)
        return tuple(result)

    # ------------------------------------------------------------------ summary

    def exposure_summary(self) -> Dict[str, Tuple[str, ...]]:
        """Which shared columns this peer exposes per agreement (for the
        §V exposure benchmark)."""
        return {
            metadata_id: agreement.shared_columns
            for metadata_id, agreement in sorted(self.agreements.items())
        }

    def storage_bytes(self) -> int:
        return self.database.storage_bytes()
