"""System-wide configuration objects.

The reproduction is fully deterministic: anything that could depend on time or
randomness is parameterised here and driven either by a seed or by the
simulated clock (:class:`repro.ledger.clock.SimClock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Valid WAL fsync policies (mirrors :mod:`repro.relational.durability`).
_FSYNC_POLICIES = ("always", "batch", "never")


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration of the on-disk durability subsystem.

    Attributes
    ----------
    state_dir:
        Directory where the gateway journals terminal responses (and where
        peers may checkpoint their databases).  ``None`` (the default) keeps
        everything in memory — the seed behaviour.
    fsync_policy:
        ``"always"`` fsyncs the WAL per append, ``"batch"`` fsyncs at commit
        boundaries (the default — one fsync per committed batch), ``"never"``
        flushes to the OS and lets it schedule the write.
    segment_max_bytes:
        WAL segment rotation threshold; smaller segments mean finer-grained
        truncation at checkpoints, at the cost of more files.
    response_retention:
        Cap on terminal responses the gateway keeps in memory; journaled
        responses evicted under the cap remain answerable from the WAL.
        ``None`` disables eviction.
    checkpoint_wal_bytes:
        Background-checkpoint trigger: when a durable peer's WAL exceeds
        this many bytes at a commit boundary, the gateway checkpoints that
        peer's database (snapshot + WAL truncation) inline with the commit.
        ``None`` (the default) disables the size trigger.
    checkpoint_interval:
        Background-checkpoint trigger in *simulated* seconds: durable peers
        are checkpointed at the first commit boundary at least this long
        after their previous checkpoint.  ``None`` disables the time trigger.
    journal_compact_bytes:
        Response-journal compaction trigger: when the journal's segment
        bytes exceed this threshold at a commit boundary, fully-superseded
        closed segments (every line re-recorded in a later segment) are
        removed.  ``None`` disables compaction.
    """

    state_dir: Optional[str] = None
    fsync_policy: str = "batch"
    segment_max_bytes: int = 1_000_000
    response_retention: Optional[int] = None
    checkpoint_wal_bytes: Optional[int] = None
    checkpoint_interval: Optional[float] = None
    journal_compact_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fsync_policy not in _FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync_policy!r}; "
                f"use one of {_FSYNC_POLICIES}")
        if self.segment_max_bytes <= 0:
            raise ValueError("segment_max_bytes must be positive")
        if self.response_retention is not None and self.response_retention < 1:
            raise ValueError("response_retention must be at least 1 (or None)")
        if self.checkpoint_wal_bytes is not None and self.checkpoint_wal_bytes <= 0:
            raise ValueError("checkpoint_wal_bytes must be positive (or None)")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")
        if self.journal_compact_bytes is not None and self.journal_compact_bytes <= 0:
            raise ValueError("journal_compact_bytes must be positive (or None)")


@dataclass(frozen=True)
class ConsensusConfig:
    """Configuration of the ledger consensus engine.

    Attributes
    ----------
    kind:
        ``"poa"`` (proof-of-authority, the private-chain deployment the paper
        recommends in §IV.3) or ``"pow"`` (a public-chain stand-in).
    block_interval:
        Target seconds of simulated time between blocks.  The paper quotes
        ~12 s for public Ethereum (§IV.1).
    pow_difficulty:
        Number of leading zero hex digits required of a PoW block hash.
    authorities:
        Addresses allowed to seal blocks under PoA.  Empty means "any node".
    """

    kind: str = "poa"
    block_interval: float = 12.0
    pow_difficulty: int = 3
    authorities: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("poa", "pow"):
            raise ValueError(f"unknown consensus kind: {self.kind!r}")
        if self.block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if self.pow_difficulty < 0:
            raise ValueError("pow_difficulty must be non-negative")


@dataclass(frozen=True)
class LedgerConfig:
    """Configuration of the simulated blockchain.

    Attributes
    ----------
    consensus_shards:
        Number of independent consensus *lanes* the ledger pipeline is
        sharded into.  Shared tables are routed to lanes by a stable hash of
        their metadata id; every lane has its own mempool shard and block
        budget, and lanes with pending work each seal a block in the same
        simulated block interval.  ``1`` (the default) keeps the single
        unsharded pipeline — byte-identical to the pre-sharding behaviour.
    """

    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)
    max_transactions_per_block: int = 64
    gas_limit_per_block: int = 8_000_000
    gas_per_transaction: int = 21_000
    gas_per_payload_byte: int = 16
    chain_id: int = 2019
    consensus_shards: int = 1

    def __post_init__(self) -> None:
        if self.max_transactions_per_block <= 0:
            raise ValueError("max_transactions_per_block must be positive")
        if self.gas_limit_per_block <= 0:
            raise ValueError("gas_limit_per_block must be positive")
        if self.consensus_shards < 1:
            raise ValueError("consensus_shards must be at least 1")


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of the simulated peer-to-peer network."""

    base_latency: float = 0.05
    latency_jitter: float = 0.02
    drop_rate: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.latency_jitter < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")


@dataclass(frozen=True)
class ResilienceConfig:
    """Configuration of the self-healing policies (retries, breakers,
    latency-aware admission, degraded reads).

    Attributes
    ----------
    retry_max_attempts / retry_base_delay / retry_multiplier / retry_max_delay /
    retry_jitter:
        The exponential-backoff :class:`~repro.chaos.RetryPolicy` applied to
        consensus rounds, gossip retransmissions and WAL appends when chaos
        wiring is attached.  Jitter is a deterministic fraction drawn from a
        seeded RNG, all delays are simulated seconds.
    breaker_failure_threshold / breaker_reset_timeout:
        Per-peer / per-lane circuit breakers: consecutive *infrastructure*
        failures (commit blow-ups, not contract rejections) before a breaker
        opens, and the simulated seconds before an open breaker admits a
        half-open probe.
    latency_target_p99:
        Commit-latency admission target in simulated seconds.  When set, the
        gateway sheds writes while the sliding-window p99 — or the predicted
        queueing delay at the current depth — exceeds the target.  ``None``
        (default) keeps queue-depth-only shedding.
    latency_window / latency_min_samples:
        Sliding window (simulated seconds) and minimum sample count before
        the p99 estimate participates in shed decisions.
    fair_queueing:
        When true, a tenant holding at least its fair share of the bounded
        write queue (capacity / active queued tenants) is shed before the
        queue is full, so one hot tenant cannot starve the fleet.
    degraded_reads / max_staleness:
        When degraded reads are enabled and the commit path is unhealthy
        (commit breaker open, or p99 over target), ``ReadViewRequest``s are
        answered from the ``ViewCache`` without touching the commit lock,
        marked ``degraded`` with their staleness; entries older than
        ``max_staleness`` simulated seconds are never served degraded.
    """

    retry_max_attempts: int = 4
    retry_base_delay: float = 0.05
    retry_multiplier: float = 2.0
    retry_max_delay: float = 2.0
    retry_jitter: float = 0.5
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 10.0
    latency_target_p99: Optional[float] = None
    latency_window: float = 30.0
    latency_min_samples: int = 5
    fair_queueing: bool = True
    degraded_reads: bool = False
    max_staleness: float = 30.0

    def __post_init__(self) -> None:
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be at least 1")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.retry_multiplier < 1.0:
            raise ValueError("retry_multiplier must be >= 1")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be at least 1")
        if self.breaker_reset_timeout <= 0:
            raise ValueError("breaker_reset_timeout must be positive")
        if self.latency_target_p99 is not None and self.latency_target_p99 <= 0:
            raise ValueError("latency_target_p99 must be positive (or None)")
        if self.latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if self.latency_min_samples < 1:
            raise ValueError("latency_min_samples must be at least 1")
        if self.max_staleness <= 0:
            raise ValueError("max_staleness must be positive")


@dataclass(frozen=True)
class ReplicationConfig:
    """Configuration of WAL-shipping read replicas.

    Attributes
    ----------
    replicas:
        Number of read-only follower replicas fed from the primary peers'
        JSONL WAL segments.  ``0`` (the default) disables replication and
        keeps the single-writer behaviour byte-identical to the seed.
        Requires ``durability.state_dir`` — replicas bootstrap from the
        checkpoint manifest and replay the shipped WAL tail.
    ship_interval:
        Simulated seconds between WAL shipments.  Shipping happens at commit
        boundaries, but a shipment is only published once the interval has
        elapsed since the previous one — this is the knob that creates
        (measurable) replica staleness.  ``0.0`` ships every commit.
    max_lag:
        Bounded-staleness routing cutoff in simulated seconds: a replica
        whose replayed-through timestamp trails the primary's last commit by
        more than this is skipped and the read falls back to the primary.
    read_service_time:
        Simulated seconds a replica spends serving one read (its service
        lane models a single-threaded follower), used to spread read load
        deterministically across the fleet.
    prewarm_cache:
        When true (the default), each commit's ``TableDiff`` pre-warms the
        replicas' view caches during replay, so a freshly replayed commit
        is immediately servable without a read-through miss.
    """

    replicas: int = 0
    ship_interval: float = 0.0
    max_lag: float = 30.0
    read_service_time: float = 0.002
    prewarm_cache: bool = True

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be non-negative")
        if self.ship_interval < 0:
            raise ValueError("ship_interval must be non-negative")
        if self.max_lag <= 0:
            raise ValueError("max_lag must be positive")
        if self.read_service_time < 0:
            raise ValueError("read_service_time must be non-negative")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration assembling every subsystem (Fig. 2).

    Attributes
    ----------
    delta_propagation:
        When true (the default) the update workflow pushes row-level
        ``TableDiff``s through lenses, indexes and caches (O(changed rows)
        per propagation leg) and only falls back to full ``get``/``put``
        recomputation where no delta translation exists.  When false, every
        leg recomputes whole tables (the seed behaviour).
    delta_verify_interval:
        Sampled correctness oracle of the delta path: every Nth delta
        application (the first included) is checked against a full
        recomputation via ``Table.fingerprint()``.  ``0`` disables checking.
    parallel_cascades:
        When true (the default) Fig. 5 cascade legs targeting *different*
        consensus lanes inside one propagation are batched into shared
        request/acknowledgement rounds and their counterpart-side work runs
        concurrently on executor threads, merged deterministically.  Only
        takes effect with ``consensus_shards > 1`` — single-lane systems
        keep the sequential path byte-identical to the seed.
    """

    ledger: LedgerConfig = field(default_factory=LedgerConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    check_lens_laws: bool = True
    audit_enabled: bool = True
    delta_propagation: bool = True
    delta_verify_interval: int = 16
    parallel_cascades: bool = True

    @property
    def consensus_shards(self) -> int:
        """Number of consensus lanes (see :attr:`LedgerConfig.consensus_shards`)."""
        return self.ledger.consensus_shards

    @staticmethod
    def private_chain(block_interval: float = 2.0,
                      consensus_shards: int = 1) -> "SystemConfig":
        """A convenient PoA configuration (the paper's recommended deployment)."""
        return SystemConfig(
            ledger=LedgerConfig(
                consensus=ConsensusConfig(kind="poa", block_interval=block_interval),
                consensus_shards=consensus_shards,
            )
        )

    @staticmethod
    def public_chain(block_interval: float = 12.0, difficulty: int = 3) -> "SystemConfig":
        """A public-Ethereum-like PoW configuration (§IV.1 / §IV.3)."""
        return SystemConfig(
            ledger=LedgerConfig(
                consensus=ConsensusConfig(
                    kind="pow",
                    block_interval=block_interval,
                    pow_difficulty=difficulty,
                )
            )
        )
