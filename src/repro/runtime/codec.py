"""Pluggable wire codecs for the message-passing runtime.

Two codecs share one API and one value model (the JSON-serialisable subset
the rest of the system already speaks: ``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``list``, ``dict`` with string keys):

``canonical-json``
    Delegates to :func:`repro.crypto.hashing.canonical_json`, so encoded
    bytes are identical to what the hashing and WAL layers already
    produce.  This is the default and keeps every fingerprint stable.

``binary``
    A deterministic tag-length-value encoding.  Dict keys are sorted (the
    same ordering rule canonical JSON uses), lengths are explicit, and no
    memoisation or interning is involved, so equal values always encode to
    equal bytes — unlike ``pickle``/``marshal``, whose string memo makes
    output depend on object identity.  Integers and short strings take a
    compact 1-byte length form; everything else a 4-byte big-endian form.

Framing helpers (:func:`write_frame` / :func:`read_frame`) wrap encoded
payloads in a 4-byte big-endian length prefix for pipe/socket transports
and for the binary WAL segment format.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Mapping
from typing import Any, BinaryIO, Dict, Optional, Type

from repro.crypto.hashing import canonical_json
from repro.errors import CodecError

__all__ = [
    "WireCodec",
    "CanonicalJsonCodec",
    "BinaryCodec",
    "available_codecs",
    "get_codec",
    "write_frame",
    "read_frame",
]


class WireCodec:
    """Interface every wire codec implements.

    ``encode`` maps a value from the wire model to bytes; ``decode`` is its
    exact inverse.  Codecs are stateless and safe to share across threads
    and processes.
    """

    #: Registry name, e.g. ``"canonical-json"``.
    name: str = ""

    #: Filename suffix for WAL segments written with this codec.
    segment_suffix: str = ".jsonl"

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError


class CanonicalJsonCodec(WireCodec):
    """The default codec: canonical JSON, UTF-8 encoded.

    Byte-compatible with :func:`repro.crypto.hashing.canonical_json`, which
    is what the hashing, WAL and gossip layers already emit — so switching
    a component onto the runtime boundary with this codec changes no bytes
    anywhere.
    """

    name = "canonical-json"
    segment_suffix = ".jsonl"

    def encode(self, value: Any) -> bytes:
        try:
            return canonical_json(value).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"canonical-json cannot encode value: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"canonical-json cannot decode frame: {exc}") from exc


# --------------------------------------------------------------------------
# Deterministic binary TLV codec
# --------------------------------------------------------------------------
#
# Tag byte layout.  Tags with a "short" variant carry lengths < 256 in a
# single following byte; the "long" variant uses a 4-byte big-endian length.
# Small non-negative integers (0..127) encode in the tag byte itself.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT_SHORT = 0x03      # 1-byte length + big-endian signed magnitude bytes
_T_INT_LONG = 0x04       # 4-byte length + big-endian signed magnitude bytes
_T_FLOAT = 0x05          # 8 bytes, IEEE-754 big-endian
_T_STR_SHORT = 0x06      # 1-byte length + utf-8 bytes
_T_STR_LONG = 0x07       # 4-byte length + utf-8 bytes
_T_BYTES_SHORT = 0x08    # 1-byte length + raw bytes
_T_BYTES_LONG = 0x09     # 4-byte length + raw bytes
_T_LIST_SHORT = 0x0A     # 1-byte count + items
_T_LIST_LONG = 0x0B      # 4-byte count + items
_T_DICT_SHORT = 0x0C     # 1-byte count + (key-str, value) pairs, keys sorted
_T_DICT_LONG = 0x0D      # 4-byte count + pairs
_T_SMALL_INT = 0x80      # tag | n for n in 0..127

_STRUCT_F64 = struct.Struct(">d")
_STRUCT_U32 = struct.Struct(">I")


class BinaryCodec(WireCodec):
    """Deterministic length-prefixed TLV encoding of the wire value model.

    Equal values produce equal bytes: dict keys are sorted, every length is
    explicit, floats use IEEE-754 big-endian, and integers use minimal
    big-endian two's-complement.  ``decode(encode(v)) == v`` for every
    value in the model, with the single canonical-JSON-compatible caveat
    that ``True``/``False`` stay booleans and are never conflated with
    ``1``/``0`` (distinct tags).
    """

    name = "binary"
    segment_suffix = ".walb"

    def encode(self, value: Any) -> bytes:
        out = bytearray()
        try:
            _encode_into(value, out)
        except RecursionError as exc:
            raise CodecError("binary codec: value nested too deeply") from exc
        return bytes(out)

    def decode(self, data: bytes) -> Any:
        value, offset = _decode_at(data, 0)
        if offset != len(data):
            raise CodecError(
                f"binary codec: {len(data) - offset} trailing bytes after value"
            )
        return value


def _encode_into(value: Any, out: bytearray) -> None:
    # Hot path: ordered by observed frequency in tx/WAL payloads (small
    # ints and short strings dominate).  bool is checked by identity
    # before the int branch — it is an int subclass but keeps its own tag.
    kind = type(value)
    if kind is int:
        if 0 <= value <= 127:
            out.append(_T_SMALL_INT | value)
            return
        raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        n = len(raw)
        if n < 256:
            out.append(_T_INT_SHORT)
            out.append(n)
        else:
            out.append(_T_INT_LONG)
            out += _STRUCT_U32.pack(n)
        out += raw
    elif kind is str:
        raw = value.encode("utf-8")
        n = len(raw)
        if n < 256:
            out.append(_T_STR_SHORT)
            out.append(n)
        else:
            out.append(_T_STR_LONG)
            out += _STRUCT_U32.pack(n)
        out += raw
    elif kind is dict:
        _encode_dict(value, out)
    elif kind is list or kind is tuple:
        n = len(value)
        if n < 256:
            out.append(_T_LIST_SHORT)
            out.append(n)
        else:
            out.append(_T_LIST_LONG)
            out += _STRUCT_U32.pack(n)
        for item in value:
            _encode_into(item, out)
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif kind is float:
        out.append(_T_FLOAT)
        out += _STRUCT_F64.pack(value)
    elif isinstance(value, (bytes, bytearray)):
        n = len(value)
        if n < 256:
            out.append(_T_BYTES_SHORT)
            out.append(n)
        else:
            out.append(_T_BYTES_LONG)
            out += _STRUCT_U32.pack(n)
        out += value
    elif isinstance(value, bool):  # bool subclass via non-literal identity
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, int):
        _encode_into(int(value), out)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _STRUCT_F64.pack(value)
    elif isinstance(value, str):
        _encode_into(str(value), out)
    elif isinstance(value, Mapping):
        _encode_dict(value, out)
    elif isinstance(value, (list, tuple)):
        _encode_into(list(value), out)
    else:
        raise CodecError(
            f"binary codec cannot encode value of type {type(value).__name__}"
        )


def _encode_dict(value: Any, out: bytearray) -> None:
    try:
        items = sorted(value.items())
    except TypeError as exc:
        raise CodecError("binary codec: dict keys must be sortable strings") from exc
    n = len(items)
    if n < 256:
        out.append(_T_DICT_SHORT)
        out.append(n)
    else:
        out.append(_T_DICT_LONG)
        out += _STRUCT_U32.pack(n)
    pack = _STRUCT_U32.pack
    for key, item in items:
        if type(key) is not str:
            raise CodecError(
                f"binary codec: dict keys must be str, got {type(key).__name__}"
            )
        raw = key.encode("utf-8")
        kn = len(raw)
        if kn < 256:
            out.append(_T_STR_SHORT)
            out.append(kn)
        else:
            out.append(_T_STR_LONG)
            out += pack(kn)
        out += raw
        _encode_into(item, out)


def _read_exact(data: bytes, offset: int, count: int) -> int:
    end = offset + count
    if end > len(data):
        raise CodecError("binary codec: truncated value")
    return end


def _decode_at(data: bytes, offset: int) -> "tuple[Any, int]":
    # Mirrors the encoder's frequency ordering; short length forms are
    # inlined (one byte) and only the long forms go through struct.
    size = len(data)
    if offset >= size:
        raise CodecError("binary codec: truncated value")
    tag = data[offset]
    offset += 1
    if tag & _T_SMALL_INT:
        return tag & 0x7F, offset
    if tag == _T_STR_SHORT or tag == _T_STR_LONG:
        if tag == _T_STR_SHORT:
            if offset >= size:
                raise CodecError("binary codec: truncated value")
            n = data[offset]
            offset += 1
        else:
            n, offset = _decode_long_length(data, offset)
        end = offset + n
        if end > size:
            raise CodecError("binary codec: truncated value")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError("binary codec: invalid utf-8 in string") from exc
    if tag == _T_DICT_SHORT or tag == _T_DICT_LONG:
        if tag == _T_DICT_SHORT:
            if offset >= size:
                raise CodecError("binary codec: truncated value")
            n = data[offset]
            offset += 1
        else:
            n, offset = _decode_long_length(data, offset)
        result: Dict[str, Any] = {}
        for _ in range(n):
            key, offset = _decode_at(data, offset)
            if type(key) is not str:
                raise CodecError("binary codec: dict key is not a string")
            value, offset = _decode_at(data, offset)
            result[key] = value
        return result, offset
    if tag == _T_LIST_SHORT or tag == _T_LIST_LONG:
        if tag == _T_LIST_SHORT:
            if offset >= size:
                raise CodecError("binary codec: truncated value")
            n = data[offset]
            offset += 1
        else:
            n, offset = _decode_long_length(data, offset)
        items = []
        append = items.append
        for _ in range(n):
            item, offset = _decode_at(data, offset)
            append(item)
        return items, offset
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FLOAT:
        end = offset + 8
        if end > size:
            raise CodecError("binary codec: truncated value")
        return _STRUCT_F64.unpack_from(data, offset)[0], end
    if tag == _T_INT_SHORT or tag == _T_INT_LONG:
        if tag == _T_INT_SHORT:
            if offset >= size:
                raise CodecError("binary codec: truncated value")
            n = data[offset]
            offset += 1
        else:
            n, offset = _decode_long_length(data, offset)
        end = offset + n
        if end > size:
            raise CodecError("binary codec: truncated value")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == _T_BYTES_SHORT or tag == _T_BYTES_LONG:
        if tag == _T_BYTES_SHORT:
            if offset >= size:
                raise CodecError("binary codec: truncated value")
            n = data[offset]
            offset += 1
        else:
            n, offset = _decode_long_length(data, offset)
        end = offset + n
        if end > size:
            raise CodecError("binary codec: truncated value")
        return data[offset:end], end
    raise CodecError(f"binary codec: unknown tag 0x{tag:02x}")


def _decode_long_length(data: bytes, offset: int) -> "tuple[int, int]":
    end = _read_exact(data, offset, 4)
    return _STRUCT_U32.unpack_from(data, offset)[0], end


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_CODECS: Dict[str, Type[WireCodec]] = {
    CanonicalJsonCodec.name: CanonicalJsonCodec,
    BinaryCodec.name: BinaryCodec,
}


def available_codecs() -> "tuple[str, ...]":
    """Names accepted by :func:`get_codec`, in registry order."""
    return tuple(_CODECS)


def get_codec(name: "str | WireCodec | None") -> WireCodec:
    """Resolve a codec by registry name.

    Accepts an existing :class:`WireCodec` instance (returned as-is) and
    ``None`` (the default ``canonical-json`` codec), so call sites can
    thread an optional ``wire_codec`` argument straight through.
    """
    if name is None:
        return CanonicalJsonCodec()
    if isinstance(name, WireCodec):
        return name
    try:
        return _CODECS[name]()
    except KeyError:
        raise CodecError(
            f"unknown wire codec {name!r}; available: {', '.join(_CODECS)}"
        ) from None


# --------------------------------------------------------------------------
# Length-prefixed framing
# --------------------------------------------------------------------------

#: Maximum frame payload the runtime will read: a defence against a
#: corrupted length prefix allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def write_frame(stream: BinaryIO, payload: bytes) -> int:
    """Write ``payload`` with a 4-byte big-endian length prefix.

    Returns the total number of bytes written (prefix included).
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame of {len(payload)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    header = _STRUCT_U32.pack(len(payload))
    stream.write(header)
    stream.write(payload)
    return len(header) + len(payload)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one length-prefixed frame from ``stream``.

    Returns ``None`` on clean end-of-stream (no header bytes at all) and
    raises :class:`CodecError` on a torn or oversized frame — the caller
    decides whether a torn tail is corruption (sockets) or a crash
    artefact to repair (WAL segments).
    """
    header = _read_all(stream, 4)
    if header is None:
        return None
    if len(header) < 4:
        raise CodecError("torn frame header")
    (length,) = _STRUCT_U32.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds limit {MAX_FRAME_BYTES}")
    payload = _read_all(stream, length)
    if payload is None or len(payload) < length:
        raise CodecError("torn frame payload")
    return payload


def _read_all(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, tolerating short reads from sockets.

    Returns ``None`` if end-of-stream is hit before the first byte, or the
    (possibly short) bytes read before EOF otherwise.
    """
    if count == 0:
        return b""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    if not chunks:
        return None
    return b"".join(chunks)
