"""Message-passing runtime: the process-ready node boundary.

PRs 1–9 built the gateway, sharded consensus, async transport, durability
and replication layers as one in-process call graph.  This package carves
an explicit message boundary out of that graph so the same components can
be placed in separate OS processes without changing their semantics:

``codec``
    Pluggable wire codecs.  ``canonical-json`` reproduces the hashing
    layer's canonical JSON byte-for-byte; ``binary`` is a deterministic
    length-prefixed TLV encoding of the same value model.

``envelope``
    Typed :class:`Envelope` messages with the WAL's sequence discipline:
    every envelope carries a monotonically increasing per-channel sequence
    so gaps and reordering are detectable at the receiver.

``transport``
    The :class:`Transport` interface with two implementations —
    :class:`LoopbackTransport` (in-process queues; today's behaviour,
    byte-identical fingerprints) and :class:`MultiprocessTransport`
    (socketpair framing with length-prefixed payloads).

``clock``
    A :class:`ClockCoordinator` that merges per-worker simulated clocks so
    deterministic sim-time survives the jump across process boundaries.

``fleet``
    :class:`GatewayFleet`: partitions a gateway workload across worker
    processes, each running the existing single-process pipeline over its
    slice, and aggregates throughput, metrics and state fingerprints.
"""

from repro.runtime.codec import (
    BinaryCodec,
    CanonicalJsonCodec,
    WireCodec,
    available_codecs,
    get_codec,
    read_frame,
    write_frame,
)
from repro.runtime.envelope import Envelope, EnvelopeChannel
from repro.runtime.transport import (
    LoopbackTransport,
    MultiprocessTransport,
    Transport,
)
from repro.runtime.clock import ClockCoordinator, WorkerClock
from repro.runtime.fleet import (
    FleetResult,
    GatewayFleet,
    WorkerSpec,
    partition_tenants,
    run_worker_slice,
)

__all__ = [
    "BinaryCodec",
    "CanonicalJsonCodec",
    "ClockCoordinator",
    "Envelope",
    "EnvelopeChannel",
    "FleetResult",
    "GatewayFleet",
    "LoopbackTransport",
    "MultiprocessTransport",
    "Transport",
    "WireCodec",
    "WorkerClock",
    "WorkerSpec",
    "available_codecs",
    "get_codec",
    "partition_tenants",
    "read_frame",
    "run_worker_slice",
    "write_frame",
]
