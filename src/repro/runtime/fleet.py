"""A multi-process gateway fleet behind the runtime boundary.

The fleet is the process-placement unit the ISSUE's tentpole asks for: a
coordinator partitions a gateway workload into per-worker slices (each
slice is the existing single-process pipeline — gateway, sharded lanes,
miner, durability — over its own tenant set and seed), places each slice
behind a :class:`~repro.runtime.transport.Transport`, and aggregates
results, clocks and fingerprints.

Two placements share one protocol:

``loopback``
    Worker slices run on in-process threads over
    :class:`LoopbackTransport` queues.  Because every slice owns its own
    system, clock and seed, results are deterministic regardless of thread
    interleaving — and byte-identical to running the slices sequentially.

``multiprocess``
    Worker slices run in forked child processes over ``socketpair`` framing
    (:class:`MultiprocessTransport`).  This is the placement that actually
    escapes the GIL: N CPU-bound slices commit in parallel.

Protocol (all envelopes sequence-checked per direction):

========================  =============================================
coordinator → worker      ``worker.run`` (payload: the WorkerSpec dict),
                          then ``worker.shutdown``
worker → coordinator      ``clock.report`` (payload: worker sim-time),
                          then ``worker.result`` (payload: slice result)
========================  =============================================

A worker that dies before replying surfaces as
:class:`~repro.errors.WorkerCrashError` carrying the exit code; with
``on_crash="collect"`` the fleet instead records the crash and keeps the
surviving workers' results — the crashed worker's durable state recovers
through the existing WAL path.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.crypto.hashing import canonical_json
from repro.errors import FleetError, FleetProtocolError, WorkerCrashError
from repro.runtime.clock import ClockCoordinator
from repro.runtime.transport import (
    LoopbackTransport,
    MultiprocessTransport,
    Transport,
)

__all__ = ["WorkerSpec", "FleetResult", "GatewayFleet", "run_worker_slice"]

#: Exit code a worker uses for a deliberately injected crash (tests).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class WorkerSpec:
    """One worker's slice of the fleet workload.

    Mirrors the knobs of :func:`repro.cli.run_gateway_loadtest`; each
    worker drives that engine over its own tenants and seed, so a
    one-worker fleet with the full tenant count reproduces the
    single-process run exactly.
    """

    name: str
    tenants: int
    duration: float = 30.0
    rate: float = 1.0
    read_fraction: float = 0.5
    interval: float = 2.0
    batch_size: int = 16
    seed: int = 23
    transport: str = "sync"
    state_dir: Optional[str] = None
    fsync_policy: Optional[str] = None
    wire_codec: Optional[str] = None
    include_fingerprints: bool = True
    #: Test hook: crash the worker process (``os._exit``) inside the Nth
    #: response-journal sync — i.e. mid-commit, after WAL appends.
    crash_after_syncs: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerSpec":
        return cls(**data)


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet run."""

    mode: str
    workers: Dict[str, Dict[str, Any]]
    crashes: List[Dict[str, Any]]
    wall_seconds: float
    committed_writes: int
    aggregate_throughput: float
    clock: Dict[str, Any]
    transport: Dict[str, Dict[str, int]]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def fingerprints(self) -> Dict[str, Any]:
        """Per-worker state fingerprints (present when specs asked for them)."""
        return {name: result.get("fingerprints")
                for name, result in self.workers.items()}


def run_worker_slice(spec: WorkerSpec) -> Dict[str, Any]:
    """Run one worker slice in the current process and return its result.

    This is the whole worker: the existing single-process load-test engine
    over the slice's tenants.  The result is normalised through canonical
    JSON so it fits the wire model of every codec (sets become sorted
    lists, tuples become lists) identically in loopback and multiprocess
    placements.
    """
    from repro.cli import run_gateway_loadtest

    started = time.perf_counter()
    result = run_gateway_loadtest(
        tenants=spec.tenants,
        duration=spec.duration,
        rate=spec.rate,
        read_fraction=spec.read_fraction,
        interval=spec.interval,
        batch_size=spec.batch_size,
        seed=spec.seed,
        transport=spec.transport,
        state_dir=spec.state_dir,
        fsync_policy=spec.fsync_policy,
        wire_codec=spec.wire_codec,
        include_fingerprints=spec.include_fingerprints,
    )
    result["worker"] = spec.name
    result["wall_seconds"] = time.perf_counter() - started
    return json.loads(canonical_json(result))


def _install_crash_hook(crash_after_syncs: int) -> None:
    """Arm the injected mid-commit crash (worker process only).

    The hook fires inside :meth:`ResponseJournal.sync` — after the commit
    round appended its WAL entries, before the run completes — and kills
    the process with ``os._exit`` so no atexit/flush cleanup softens the
    crash.  Installed only in forked workers; the coordinator process is
    never patched.
    """
    import os

    from repro.gateway.gateway import ResponseJournal

    original = ResponseJournal.sync
    state = {"syncs": 0}

    def crashing_sync(self) -> None:
        state["syncs"] += 1
        if state["syncs"] >= crash_after_syncs:
            os._exit(CRASH_EXIT_CODE)
        original(self)

    ResponseJournal.sync = crashing_sync  # type: ignore[method-assign]


def _serve_worker(transport: Transport, forked: bool = False) -> None:
    """The worker side of the fleet protocol: serve until shutdown.

    ``forked`` is True only in a forked child process
    (:func:`_mp_worker_entry`).  The injected-crash hook is gated on it: in
    loopback mode this function runs on a coordinator thread, where
    ``os._exit`` would kill the whole coordinator and the class-wide
    ``ResponseJournal.sync`` patch would leak into every in-process worker.
    """
    while True:
        envelope = transport.receive()
        if envelope is None or envelope.kind == "worker.shutdown":
            break
        if envelope.kind != "worker.run":
            raise FleetProtocolError(
                f"worker expected 'worker.run', got {envelope.kind!r}"
            )
        spec = WorkerSpec.from_dict(envelope.payload)
        if spec.crash_after_syncs is not None:
            if not forked:
                # Surface as a clean end-of-stream (-> WorkerCrashError on
                # the coordinator side) instead of hanging the collector.
                transport.close()
                raise FleetProtocolError(
                    "crash_after_syncs requires a forked worker process; "
                    "it cannot be armed on a coordinator thread"
                )
            _install_crash_hook(spec.crash_after_syncs)
        result = run_worker_slice(spec)
        transport.send("clock.report",
                       {"worker": spec.name,
                        "now": result.get("simulated_seconds", 0.0)},
                       sent_at=result.get("simulated_seconds", 0.0))
        transport.send("worker.result", result)
    transport.close()


def _mp_worker_entry(name: str, sock: socket.socket, codec: Optional[str]) -> None:
    """Child-process entry point (fork start method)."""
    transport = MultiprocessTransport(name, sock, codec=codec)
    try:
        _serve_worker(transport, forked=True)
    except FleetProtocolError:
        # The coordinator vanished; nothing to report to.
        transport.close()


class GatewayFleet:
    """Coordinate a set of worker slices over a chosen transport placement."""

    def __init__(self, specs: List[WorkerSpec], mode: str = "loopback",
                 wire_codec: Optional[str] = None, timeout: float = 300.0,
                 on_crash: str = "raise"):
        if mode not in ("loopback", "multiprocess"):
            raise FleetError(f"unknown fleet mode {mode!r}: "
                             "use 'loopback' or 'multiprocess'")
        if on_crash not in ("raise", "collect"):
            raise FleetError(f"unknown on_crash policy {on_crash!r}")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate worker names: {names}")
        if mode == "loopback":
            crashers = [spec.name for spec in specs
                        if spec.crash_after_syncs is not None]
            if crashers:
                raise FleetError(
                    "crash_after_syncs needs a forked worker process to kill "
                    "(os._exit on a loopback thread would take down the "
                    f"coordinator): use mode='multiprocess' for {crashers}")
        self.specs = list(specs)
        self.mode = mode
        self.wire_codec = wire_codec
        self.timeout = timeout
        self.on_crash = on_crash
        self.clock = ClockCoordinator()

    # -- public API --------------------------------------------------------

    def run(self) -> FleetResult:
        if not self.specs:
            raise FleetError("fleet needs at least one worker spec")
        started = time.perf_counter()
        if self.mode == "loopback":
            workers, crashes, transports = self._run_loopback()
        else:
            workers, crashes, transports = self._run_multiprocess()
        wall = time.perf_counter() - started
        committed = sum(
            result["metrics"]["batches"]["writes_committed"]
            for result in workers.values()
        )
        return FleetResult(
            mode=self.mode,
            workers=workers,
            crashes=crashes,
            wall_seconds=wall,
            committed_writes=committed,
            aggregate_throughput=(committed / wall) if wall > 0 else 0.0,
            clock={"merged_now": self.clock.now(),
                   "reports": self.clock.reports()},
            transport=transports,
        )

    # -- placements --------------------------------------------------------

    def _run_loopback(self):
        ends = {}
        threads = {}
        for spec in self.specs:
            coordinator_end, worker_end = LoopbackTransport.pair(
                left=f"coordinator->{spec.name}", right=spec.name,
                codec=self.wire_codec)
            thread = threading.Thread(target=_serve_worker, args=(worker_end,),
                                      name=f"fleet-{spec.name}", daemon=True)
            thread.start()
            ends[spec.name] = coordinator_end
            threads[spec.name] = thread
        for spec in self.specs:
            ends[spec.name].send("worker.run", spec.to_dict())
        workers, crashes = self._collect(ends, exitcode_of=lambda name: None)
        for spec in self.specs:
            ends[spec.name].send("worker.shutdown", None)
        for thread in threads.values():
            thread.join(timeout=self.timeout)
        return workers, crashes, self._transport_stats(ends)

    def _run_multiprocess(self):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise FleetError("multiprocess fleet requires the fork start "
                            "method (POSIX)") from exc
        ends: Dict[str, MultiprocessTransport] = {}
        processes = {}
        for spec in self.specs:
            parent_sock, child_sock = socket.socketpair()
            process = context.Process(
                target=_mp_worker_entry,
                args=(spec.name, child_sock, self.wire_codec),
                name=f"fleet-{spec.name}", daemon=True)
            process.start()
            # Close the parent's copy of the child end immediately — before
            # the next fork.  Otherwise every later-forked sibling inherits a
            # duplicate of this socket and a crashed worker never reads as
            # EOF while any sibling is still alive.
            child_sock.close()
            ends[spec.name] = MultiprocessTransport(
                f"coordinator->{spec.name}", parent_sock, codec=self.wire_codec)
            processes[spec.name] = process
        for spec in self.specs:
            ends[spec.name].send("worker.run", spec.to_dict())

        def exitcode_of(name: str) -> Optional[int]:
            processes[name].join(timeout=self.timeout)
            return processes[name].exitcode

        workers, crashes = self._collect(ends, exitcode_of=exitcode_of)
        for name, end in ends.items():
            if processes[name].is_alive():
                try:
                    end.send("worker.shutdown", None)
                except FleetProtocolError:  # pragma: no cover - late crash
                    pass
        for name, process in processes.items():
            process.join(timeout=self.timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        stats = self._transport_stats(ends)
        for end in ends.values():
            end.close()
        return workers, crashes, stats

    # -- shared collection logic ------------------------------------------

    def _collect(self, ends, exitcode_of):
        """Gather ``clock.report`` + ``worker.result`` from every worker."""
        workers: Dict[str, Dict[str, Any]] = {}
        crashes: List[Dict[str, Any]] = []
        for spec in self.specs:
            end = ends[spec.name]
            try:
                report = end.receive(timeout=self.timeout)
                if report is None:
                    raise WorkerCrashError(spec.name,
                                           exitcode=exitcode_of(spec.name))
                if report.kind != "clock.report":
                    raise FleetProtocolError(
                        f"expected 'clock.report' from {spec.name!r}, "
                        f"got {report.kind!r}")
                self.clock.observe(report.payload["worker"],
                                   float(report.payload["now"]))
                result = end.receive(timeout=self.timeout)
                if result is None:
                    raise WorkerCrashError(spec.name,
                                           exitcode=exitcode_of(spec.name))
                if result.kind != "worker.result":
                    raise FleetProtocolError(
                        f"expected 'worker.result' from {spec.name!r}, "
                        f"got {result.kind!r}")
                workers[spec.name] = result.payload
            except WorkerCrashError as crash:
                if self.on_crash == "raise":
                    raise
                crashes.append({"worker": crash.worker,
                                "exitcode": crash.exitcode,
                                "state_dir": spec.state_dir})
        return workers, crashes

    @staticmethod
    def _transport_stats(ends) -> Dict[str, Dict[str, int]]:
        return {name: end.statistics() for name, end in ends.items()}


def partition_tenants(tenants: int, workers: int, base_seed: int = 23,
                      **spec_kwargs: Any) -> List[WorkerSpec]:
    """Split a tenant population into per-worker specs.

    Tenants are dealt round-robin so worker loads differ by at most one;
    each worker derives its seed as ``base_seed + index`` (distinct,
    deterministic traffic per slice).
    """
    if workers < 1:
        raise FleetError("need at least one worker")
    if tenants < workers:
        raise FleetError(f"cannot split {tenants} tenants across "
                         f"{workers} workers")
    base, extra = divmod(tenants, workers)
    specs = []
    for index in range(workers):
        specs.append(WorkerSpec(
            name=f"worker-{index}",
            tenants=base + (1 if index < extra else 0),
            seed=base_seed + index,
            **spec_kwargs,
        ))
    return specs
