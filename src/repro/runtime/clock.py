"""Cross-process coordination of simulated time.

Inside one process every component shares a single
:class:`~repro.ledger.clock.SimClock`.  Across processes that is no longer
possible, so the runtime splits the clock into:

:class:`WorkerClock`
    A :class:`SimClock` subclass that additionally remembers the highest
    simulated time it has reached, for reporting to the coordinator.

:class:`ClockCoordinator`
    Lives in the coordinator process.  Workers report their local
    simulated time (a ``clock.report`` envelope in the fleet protocol);
    the coordinator merges reports with ``max`` — simulated time is
    monotone, so the merged value is the earliest instant consistent with
    everything any worker has already done.  The merge is deterministic:
    it depends only on the multiset of reported times, never on arrival
    order, which is what keeps fleet runs reproducible even though OS
    scheduling interleaves worker replies differently on every run.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.ledger.clock import SimClock

__all__ = ["WorkerClock", "ClockCoordinator"]


class WorkerClock(SimClock):
    """A worker-local simulated clock that can seed from, and report to,
    a :class:`ClockCoordinator`."""

    def __init__(self, start: float = 0.0, worker: str = "worker"):
        super().__init__(start=start)
        self.worker = worker

    def report(self) -> "Dict[str, float | str]":
        """The payload of a ``clock.report`` envelope."""
        return {"worker": self.worker, "now": self.now()}


class ClockCoordinator:
    """Merges per-worker simulated clocks into one authoritative time.

    The coordinator is itself backed by a :class:`SimClock` so
    single-process callers can pass it anywhere a plain clock is expected.
    """

    def __init__(self, start: float = 0.0):
        self._clock = SimClock(start=start)
        self._reports: Dict[str, float] = {}
        self._lock = threading.Lock()

    @property
    def clock(self) -> SimClock:
        return self._clock

    def now(self) -> float:
        return self._clock.now()

    def observe(self, worker: str, reported_now: float) -> float:
        """Fold one worker report into the authoritative clock.

        Returns the merged time.  ``max``-merging makes the result
        independent of report order: any interleaving of the same reports
        converges to the same time.
        """
        if reported_now < 0:
            raise ValueError("reported time must be non-negative")
        with self._lock:
            previous = self._reports.get(worker, 0.0)
            if reported_now > previous:
                self._reports[worker] = reported_now
        return self._clock.advance_to(reported_now)

    def seed_for(self, worker: str) -> float:
        """The start time a (re)spawned worker should resume from.

        A worker that crashed and is restarted must not re-live simulated
        time it already reported — its durable state (WAL) may already
        reflect events up to that instant.
        """
        with self._lock:
            return self._reports.get(worker, self._clock.now())

    def reports(self) -> Dict[str, float]:
        """Last reported time per worker (for metrics and tests)."""
        with self._lock:
            return dict(self._reports)

    def __repr__(self) -> str:
        return f"ClockCoordinator(now={self.now():.3f}, workers={len(self.reports())})"
