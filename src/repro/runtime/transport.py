"""Transports: how envelopes cross (or don't cross) a process boundary.

A :class:`Transport` is one end of a bidirectional, ordered envelope
stream.  Both ends stamp outgoing envelopes and verify incoming ones with
an :class:`~repro.runtime.envelope.EnvelopeChannel`, so sequence gaps are
protocol errors regardless of the medium underneath:

:class:`LoopbackTransport`
    In-process queues.  This is today's behaviour — envelopes are passed
    as objects, nothing is re-encoded, and fingerprints stay byte-identical
    to the direct-call graph.  With a ``codec`` it additionally round-trips
    every payload through encode/decode, proving a component's traffic fits
    the wire model before it is ever moved out of process.

:class:`MultiprocessTransport`
    A ``socket.socketpair()`` end with length-prefixed frames (4-byte
    big-endian prefix, payload encoded by the wire codec).  Built for
    fork-based workers: the parent keeps one end, the child inherits the
    other.
"""

from __future__ import annotations

import queue
import socket
from typing import Any, Dict, Optional

from repro.errors import CodecError, FleetProtocolError
from repro.runtime.codec import WireCodec, get_codec, read_frame, write_frame
from repro.runtime.envelope import Envelope, EnvelopeChannel

__all__ = ["Transport", "LoopbackTransport", "MultiprocessTransport"]


class Transport:
    """One end of an ordered, bidirectional envelope stream."""

    def __init__(self, name: str, codec: "WireCodec | str | None" = None):
        self.name = name
        self.codec: Optional[WireCodec] = None if codec is None else get_codec(codec)
        self._out = EnvelopeChannel(sender=name)
        self._in: Optional[EnvelopeChannel] = None
        self._stats: Dict[str, int] = {
            "sent": 0,
            "received": 0,
            "wire_bytes_out": 0,
            "wire_bytes_in": 0,
        }

    # -- subclass hooks ----------------------------------------------------

    def _transmit(self, envelope: Envelope) -> None:
        raise NotImplementedError

    def _collect(self, timeout: Optional[float]) -> Optional[Envelope]:
        raise NotImplementedError

    # -- public API --------------------------------------------------------

    def send(self, kind: str, payload: Any, sent_at: float = 0.0) -> Envelope:
        """Stamp and transmit one envelope; returns the stamped envelope."""
        envelope = self._out.stamp(kind, payload, sent_at=sent_at)
        self._transmit(envelope)
        self._stats["sent"] += 1
        return envelope

    def receive(self, timeout: Optional[float] = None) -> Optional[Envelope]:
        """Receive the next envelope, verifying sequence discipline.

        Returns ``None`` on clean end-of-stream.  Raises
        :class:`FleetProtocolError` on timeout, torn frames, or sequence
        gaps — all of which mean the peer broke protocol, not that there
        is simply nothing to read yet.
        """
        envelope = self._collect(timeout)
        if envelope is None:
            return None
        if self._in is None:
            self._in = EnvelopeChannel(sender=envelope.sender)
        self._in.accept(envelope)
        self._stats["received"] += 1
        return envelope

    def request(self, kind: str, payload: Any,
                timeout: Optional[float] = None) -> Envelope:
        """Send one envelope and block for the peer's reply."""
        self.send(kind, payload)
        reply = self.receive(timeout=timeout)
        if reply is None:
            raise FleetProtocolError(
                f"peer of {self.name!r} closed the stream instead of replying "
                f"to {kind!r}"
            )
        return reply

    def statistics(self) -> Dict[str, int]:
        return dict(self._stats)

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass


class LoopbackTransport(Transport):
    """In-process transport over a pair of queues.

    Without a codec, envelopes cross untouched — object identity of the
    payload is preserved, which is what keeps loopback runs byte-identical
    to the pre-runtime call graph.  With a codec, payloads are round-tripped
    through ``encode``/``decode`` at delivery (the in-process rehearsal of
    going over a real wire).
    """

    def __init__(self, name: str,
                 outbox: "queue.Queue[Optional[Envelope]]",
                 inbox: "queue.Queue[Optional[Envelope]]",
                 codec: "WireCodec | str | None" = None):
        super().__init__(name, codec=codec)
        self._outbox = outbox
        self._inbox = inbox

    @classmethod
    def pair(cls, left: str = "left", right: str = "right",
             codec: "WireCodec | str | None" = None
             ) -> "tuple[LoopbackTransport, LoopbackTransport]":
        a_to_b: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        b_to_a: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        return (
            cls(left, outbox=a_to_b, inbox=b_to_a, codec=codec),
            cls(right, outbox=b_to_a, inbox=a_to_b, codec=codec),
        )

    def _transmit(self, envelope: Envelope) -> None:
        if self.codec is not None:
            data = self.codec.encode(envelope.to_dict())
            self._stats["wire_bytes_out"] += len(data)
            envelope = Envelope.from_dict(self.codec.decode(data))
        self._outbox.put(envelope)

    def _collect(self, timeout: Optional[float]) -> Optional[Envelope]:
        try:
            envelope = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise FleetProtocolError(
                f"loopback receive on {self.name!r} timed out after {timeout}s"
            ) from None
        if envelope is None:
            return None
        if self.codec is not None:
            self._stats["wire_bytes_in"] += len(self.codec.encode(envelope.to_dict()))
        return envelope

    def close(self) -> None:
        # A sentinel unblocks a peer waiting in receive().
        self._outbox.put(None)


class MultiprocessTransport(Transport):
    """Socket transport with length-prefixed frames.

    Each envelope is ``codec.encode(envelope.to_dict())`` behind a 4-byte
    big-endian length prefix.  The codec defaults to ``canonical-json``;
    the deterministic ``binary`` codec plugs in behind the same API.

    .. warning:: a receive timeout **poisons the transport**.  Frames are
       read through a buffered ``makefile`` reader; a timeout that fires
       mid-frame leaves partially-consumed bytes in the buffer, permanently
       desyncing the stream.  That is why the timeout surfaces as a fatal
       :class:`FleetProtocolError` rather than a retryable "nothing yet":
       after one, the peer is presumed broken and the transport must be
       abandoned (the fleet coordinator treats it as a worker crash), never
       ``receive``\\ d from again.
    """

    def __init__(self, name: str, sock: socket.socket,
                 codec: "WireCodec | str | None" = None):
        super().__init__(name, codec=codec)
        if self.codec is None:
            self.codec = get_codec(None)
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._writer = sock.makefile("wb")

    @classmethod
    def pair(cls, left: str = "parent", right: str = "child",
             codec: "WireCodec | str | None" = None
             ) -> "tuple[MultiprocessTransport, MultiprocessTransport]":
        sock_a, sock_b = socket.socketpair()
        return cls(left, sock_a, codec=codec), cls(right, sock_b, codec=codec)

    def _transmit(self, envelope: Envelope) -> None:
        assert self.codec is not None
        payload = self.codec.encode(envelope.to_dict())
        try:
            written = write_frame(self._writer, payload)
            self._writer.flush()
        except (BrokenPipeError, OSError) as exc:
            raise FleetProtocolError(
                f"transport {self.name!r} failed to transmit: {exc}"
            ) from exc
        self._stats["wire_bytes_out"] += written

    def _collect(self, timeout: Optional[float]) -> Optional[Envelope]:
        assert self.codec is not None
        self._sock.settimeout(timeout)
        try:
            frame = read_frame(self._reader)
        except socket.timeout:
            # Mid-frame bytes may be stranded in the buffered reader: the
            # stream is desynced for good (see the class docstring), so this
            # is deliberately fatal, not a retry hint.
            raise FleetProtocolError(
                f"socket receive on {self.name!r} timed out after {timeout}s; "
                "the frame stream is now desynced — abandon this transport"
            ) from None
        except CodecError as exc:
            raise FleetProtocolError(
                f"torn frame on transport {self.name!r}: {exc}"
            ) from exc
        except OSError as exc:
            raise FleetProtocolError(
                f"transport {self.name!r} failed to receive: {exc}"
            ) from exc
        if frame is None:
            return None
        self._stats["wire_bytes_in"] += 4 + len(frame)
        try:
            return Envelope.from_dict(self.codec.decode(frame))
        except CodecError as exc:
            raise FleetProtocolError(
                f"undecodable frame on transport {self.name!r}: {exc}"
            ) from exc

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        for closer in (self._writer.close, self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
