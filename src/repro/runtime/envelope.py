"""Typed envelopes with the WAL's sequence discipline.

Every message crossing the runtime boundary is an :class:`Envelope`: a
``kind`` naming the protocol verb, a JSON-model ``payload``, the logical
``sender``, the simulated-time ``sent_at``, and a per-channel monotonically
increasing ``sequence``.  The sequence rule mirrors the WAL's: receivers
reject gaps and reordering instead of silently accepting them, which is
what makes a crashed worker distinguishable from a slow one.

:class:`EnvelopeChannel` is the stateful half: it stamps outgoing
sequences and verifies incoming ones, one instance per directed
(sender → receiver) stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import EnvelopeError

__all__ = ["Envelope", "EnvelopeChannel", "ENVELOPE_SCHEMA_VERSION"]

#: Bumped whenever the wire shape of an envelope changes incompatibly.
ENVELOPE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Envelope:
    """One typed message on a runtime channel."""

    kind: str
    payload: Any
    sender: str
    sequence: int
    sent_at: float = 0.0
    version: int = ENVELOPE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise EnvelopeError("envelope kind must be a non-empty string")
        if self.sequence < 0:
            raise EnvelopeError("envelope sequence must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "sender": self.sender,
            "sequence": self.sequence,
            "sent_at": self.sent_at,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Envelope":
        try:
            version = data["version"]
            if version != ENVELOPE_SCHEMA_VERSION:
                raise EnvelopeError(
                    f"unsupported envelope version {version!r} "
                    f"(expected {ENVELOPE_SCHEMA_VERSION})"
                )
            return cls(
                kind=data["kind"],
                payload=data["payload"],
                sender=data["sender"],
                sequence=data["sequence"],
                sent_at=data.get("sent_at", 0.0),
                version=version,
            )
        except KeyError as exc:
            raise EnvelopeError(f"envelope missing field {exc.args[0]!r}") from exc


class EnvelopeChannel:
    """Sequence discipline for one directed envelope stream.

    The sender side calls :meth:`stamp` to mint envelopes with consecutive
    sequences; the receiver side calls :meth:`accept` to verify them.  A
    gap or replay raises :class:`EnvelopeError` — the transport layer
    treats that as a protocol failure, not data.
    """

    def __init__(self, sender: str) -> None:
        self.sender = sender
        self._next_out = 0
        self._next_in = 0

    def stamp(self, kind: str, payload: Any, sent_at: float = 0.0) -> Envelope:
        envelope = Envelope(
            kind=kind,
            payload=payload,
            sender=self.sender,
            sequence=self._next_out,
            sent_at=sent_at,
        )
        self._next_out += 1
        return envelope

    def accept(self, envelope: Envelope) -> Envelope:
        if envelope.sequence != self._next_in:
            raise EnvelopeError(
                f"sequence gap on channel from {envelope.sender!r}: "
                f"expected {self._next_in}, got {envelope.sequence}"
            )
        self._next_in += 1
        return envelope

    @property
    def sent(self) -> int:
        return self._next_out

    @property
    def received(self) -> int:
        return self._next_in
