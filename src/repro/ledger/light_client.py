"""Light-client verification of shared-data operations.

A patient's phone should not need a full chain replica to convince itself
that "update #17 on my shared table is included in block 42 of the chain all
full nodes agree on".  A :class:`LightClient` keeps only block headers and
verifies:

* header-chain integrity (parent-hash linkage and consensus seals);
* transaction inclusion, via Merkle proofs produced by any full node;
* that an audit record's diff hash matches a transaction committed on-chain.

This complements the audit trail: the trail reads a full replica, the light
client checks a single record against headers it can fetch from anyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import InvalidBlockError, LedgerError
from repro.ledger.block import Block, BlockHeader
from repro.ledger.chain import Blockchain
from repro.ledger.consensus import ConsensusEngine
from repro.ledger.transaction import Transaction


@dataclass(frozen=True)
class InclusionProof:
    """Everything a light client needs to verify one transaction's inclusion."""

    tx_hash: str
    block_number: int
    merkle_proof: MerkleProof

    def to_dict(self) -> dict:
        return {
            "tx_hash": self.tx_hash,
            "block_number": self.block_number,
            "leaf": self.merkle_proof.leaf,
            "index": self.merkle_proof.index,
            "path": [list(step) for step in self.merkle_proof.path],
        }

    @staticmethod
    def from_dict(payload: dict) -> "InclusionProof":
        return InclusionProof(
            tx_hash=payload["tx_hash"],
            block_number=payload["block_number"],
            merkle_proof=MerkleProof(
                leaf=payload["leaf"],
                index=payload["index"],
                path=tuple((side, sibling) for side, sibling in payload["path"]),
            ),
        )


def build_inclusion_proof(chain: Blockchain, tx_hash: str) -> InclusionProof:
    """Have a full node build the inclusion proof for one transaction."""
    for block in chain.blocks:
        hashes = list(block.transaction_hashes())
        if tx_hash in hashes:
            tree = MerkleTree(hashes)
            return InclusionProof(
                tx_hash=tx_hash,
                block_number=block.number,
                merkle_proof=tree.proof(hashes.index(tx_hash)),
            )
    raise LedgerError(f"transaction {tx_hash[:12]} is not on the chain")


class LightClient:
    """A header-only client that verifies inclusion proofs."""

    def __init__(self, consensus: ConsensusEngine, genesis: Block):
        self.consensus = consensus
        self._headers: List[BlockHeader] = [genesis.header]

    # ------------------------------------------------------------------ headers

    @property
    def height(self) -> int:
        return self._headers[-1].number

    @property
    def headers(self) -> Tuple[BlockHeader, ...]:
        return tuple(self._headers)

    def accept_header(self, header: BlockHeader) -> None:
        """Validate and append the next block header."""
        head = self._headers[-1]
        if header.number != head.number + 1:
            raise InvalidBlockError(
                f"expected header #{head.number + 1}, got #{header.number}"
            )
        if header.parent_hash != head.block_hash:
            raise InvalidBlockError(
                f"header #{header.number} does not link to the current head"
            )
        if header.timestamp < head.timestamp:
            raise InvalidBlockError("header timestamp precedes its parent")
        self.consensus.validate_seal(Block(header=header))
        self._headers.append(header)

    def sync_from(self, chain: Blockchain) -> int:
        """Fetch headers the client is missing from a full node; returns how many."""
        added = 0
        for block in chain.blocks[self.height + 1:]:
            self.accept_header(block.header)
            added += 1
        return added

    def header(self, number: int) -> BlockHeader:
        if not 0 <= number <= self.height:
            raise InvalidBlockError(f"light client has no header #{number}")
        return self._headers[number]

    # ------------------------------------------------------------------- proofs

    def verify_inclusion(self, proof: InclusionProof) -> bool:
        """True when ``proof`` ties its transaction to a known, sealed header."""
        if proof.block_number > self.height:
            return False
        header = self.header(proof.block_number)
        if proof.merkle_proof.leaf != proof.tx_hash:
            return False
        return proof.merkle_proof.verify(header.merkle_root)

    def verify_operation(self, proof: InclusionProof, transaction: Transaction,
                         expected_metadata_id: Optional[str] = None,
                         expected_diff_hash: Optional[str] = None) -> bool:
        """Verify that a concrete shared-data operation is committed on-chain.

        The full node hands the light client the raw transaction plus its
        inclusion proof; the client recomputes the transaction hash itself, so
        a lying full node cannot substitute a different payload.
        """
        if transaction.tx_hash != proof.tx_hash:
            return False
        if not transaction.verify_signature():
            return False
        if expected_metadata_id is not None and \
                transaction.args.get("metadata_id") != expected_metadata_id:
            return False
        if expected_diff_hash is not None and \
                transaction.args.get("diff_hash") != expected_diff_hash:
            return False
        return self.verify_inclusion(proof)
