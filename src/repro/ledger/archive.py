"""Chain archival: export a node's chain to JSON and rebuild it by replay.

Two uses in the reproduction:

* **bootstrap** — a late-joining node can import an archive exported by an
  existing node and reach the same state root by re-executing every block
  (deterministic contract execution makes the replay exact);
* **cold audit** — an auditor without a running node can load an archive,
  re-validate every linkage/seal/Merkle root, and inspect the history.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

from repro.config import LedgerConfig
from repro.errors import InvalidBlockError, LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Blockchain, TransactionExecutor

#: Format marker so future layout changes can be detected on load.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def chain_to_dict(chain: Blockchain) -> dict:
    """Serialise a chain (configuration digest + every block) to a plain dict."""
    return {
        "format_version": FORMAT_VERSION,
        "chain_id": chain.config.chain_id,
        "consensus": chain.config.consensus.kind,
        "height": chain.height,
        "blocks": [block.to_dict() for block in chain.blocks],
    }


def export_chain(chain: Blockchain, path: PathLike) -> pathlib.Path:
    """Write the chain archive to ``path``; returns the path written."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chain_to_dict(chain), indent=2, sort_keys=True),
                      encoding="utf-8")
    return target


def import_chain(path: PathLike, config: LedgerConfig,
                 executor: Optional[TransactionExecutor] = None) -> Blockchain:
    """Rebuild a chain from an archive by re-validating and re-executing it.

    The caller supplies the same ledger configuration (and an executor with the
    same contract classes registered) that produced the archive; a mismatching
    genesis or an invalid block aborts the import.
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise LedgerError(f"no chain archive at {source}")
    payload = json.loads(source.read_text(encoding="utf-8"))
    if payload.get("format_version") != FORMAT_VERSION:
        raise LedgerError(f"unsupported archive format version {payload.get('format_version')!r}")
    if payload.get("chain_id") != config.chain_id:
        raise LedgerError(
            f"archive chain id {payload.get('chain_id')} does not match configuration "
            f"chain id {config.chain_id}"
        )
    chain = Blockchain(config, executor=executor)
    blocks = [Block.from_dict(block_payload) for block_payload in payload.get("blocks", ())]
    if not blocks:
        raise LedgerError("archive contains no blocks")
    if blocks[0].block_hash != chain.genesis.block_hash:
        raise LedgerError("archive genesis does not match the configured chain")
    for block in blocks[1:]:
        chain.append_block(block)
    return chain


def verify_archive(path: PathLike, config: LedgerConfig,
                   executor: Optional[TransactionExecutor] = None) -> bool:
    """True when the archive at ``path`` replays into a valid chain."""
    try:
        chain = import_chain(path, config, executor=executor)
    except (LedgerError, InvalidBlockError):
        return False
    return chain.verify_chain()
