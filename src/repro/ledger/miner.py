"""The block producer.

The miner drains the mempool into new blocks, honouring:

* the per-block transaction and gas limits;
* the paper's serialisation rule (§III-B): *"one block can contain one
  transaction at most on some shared data at one time"* — conflicting update
  requests on the same shared table are deferred to later blocks;
* the consensus engine's sealing procedure and block interval.

Selection is cursor-based: each lane (the whole pool when unsharded, one
shard otherwise) remembers how far into the arrival order it has scanned and
which transactions it had to defer (gas budget, serialisation conflicts), so
mining N blocks from a large pool touches each pending transaction once plus
once per deferral instead of rescanning the full pool every block.

When the mempool is sharded (:class:`~repro.ledger.sharding.ShardedMempool`)
the miner runs one lane per shard through a
:class:`~repro.ledger.lanes.LaneScheduler`: every lane with pending work
seals a block in the *same* simulated block interval.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ledger.block import Block, BlockHeader
from repro.ledger.chain import Blockchain
from repro.ledger.clock import SimClock
from repro.ledger.gas import GasSchedule
from repro.ledger.lanes import LaneScheduler
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import Transaction, TransactionReceipt
from repro.obs.tracer import NULL_TRACER

#: Returns the "shared data key" a transaction contends on, or None when the
#: transaction is not an update request on shared data.
ConflictKeyFn = Callable[[Transaction], Optional[str]]


def default_conflict_key(tx: Transaction) -> Optional[str]:
    """The default contention rule.

    Contract calls that request an operation on shared data carry the target
    ``metadata_id`` in their arguments; two requests on the same metadata id
    may not share a block.
    """
    if tx.kind != "call":
        return None
    if tx.method in ("request_update", "request_create", "request_delete",
                     "request_folded_update"):
        metadata_id = tx.args.get("metadata_id")
        return str(metadata_id) if metadata_id is not None else None
    return None


class Miner:
    """Builds, seals and appends blocks from a mempool."""

    def __init__(
        self,
        chain: Blockchain,
        mempool: Mempool,
        clock: SimClock,
        proposer: str = "miner-0",
        conflict_key: ConflictKeyFn = default_conflict_key,
        enforce_serialization: bool = True,
    ):
        self.chain = chain
        self.mempool = mempool
        self.clock = clock
        self.proposer = proposer
        self.conflict_key = conflict_key
        self.enforce_serialization = enforce_serialization
        self.gas_schedule = GasSchedule(
            per_transaction=chain.config.gas_per_transaction,
            per_payload_byte=chain.config.gas_per_payload_byte,
        )
        self.blocks_mined = 0
        #: Selection-cost counter: how many pending transactions every
        #: `_select_transactions` call has looked at in total.  The linearity
        #: regression test asserts this stays O(pool + deferrals).
        self.txs_scanned = 0
        #: Per-lane scan state.  The key is the shard index (None for the
        #: unsharded single lane): the cursor is the highest arrival sequence
        #: number already scanned, the deferred list keeps transactions that
        #: were reached but had to wait (gas budget or serialisation rule).
        self._scan_cursor: Dict[Optional[int], int] = {}
        self._deferred: Dict[Optional[int], List[str]] = {}
        num_shards = getattr(mempool, "num_shards", 1)
        #: One lane per mempool shard; None when the pipeline is unsharded.
        self.lanes: Optional[LaneScheduler] = (
            LaneScheduler(self, num_shards) if num_shards > 1 else None
        )
        #: Set by :meth:`MedicalDataSharingSystem.attach_tracer`; every lane's
        #: block production is wrapped in a ``lane.mine`` span.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------ block packing

    def _select_transactions(self, shard: Optional[int] = None) -> List[Transaction]:
        """Choose the transactions for the next block, oldest first.

        Resumes from the lane's cursor: transactions this lane deferred in
        earlier blocks (they are the oldest remaining) are reconsidered
        first, then the scan continues where it previously stopped.  The
        selection is identical to rescanning the whole pool in arrival order
        — deferred transactions *are* the arrival-order prefix — without the
        O(pending) rescan per block.
        """
        config = self.chain.config
        selected: List[Transaction] = []
        used_keys = set()
        gas_used = 0
        deferred_next: List[str] = []

        def consider(tx: Transaction) -> None:
            nonlocal gas_used
            self.txs_scanned += 1
            gas = self.gas_schedule.intrinsic_gas(tx)
            if gas_used + gas > config.gas_limit_per_block:
                deferred_next.append(tx.tx_hash)
                return
            if self.enforce_serialization:
                key = self.conflict_key(tx)
                if key is not None:
                    if key in used_keys:
                        # The paper's rule: defer the second update on the same
                        # shared data to a later block.
                        deferred_next.append(tx.tx_hash)
                        return
                    used_keys.add(key)
            selected.append(tx)
            gas_used += gas

        deferred_prev = self._deferred.get(shard, [])
        cursor = self._scan_cursor.get(shard, -1)
        full = False
        for index, tx_hash in enumerate(deferred_prev):
            tx = self.mempool.get(tx_hash)
            if tx is None:
                continue  # included by a gossiped block in the meantime
            if len(selected) >= config.max_transactions_per_block:
                # Block is full: everything not yet reconsidered stays deferred.
                deferred_next.extend(h for h in deferred_prev[index:]
                                     if self.mempool.get(h) is not None)
                full = True
                break
            consider(tx)
        if not full:
            for seq, tx in self.mempool.iter_entries(after=cursor, shard=shard):
                if len(selected) >= config.max_transactions_per_block:
                    break  # cursor stays before this transaction
                cursor = seq
                consider(tx)
        self._deferred[shard] = deferred_next
        self._scan_cursor[shard] = cursor
        return selected

    def mine_block(self, shard: Optional[int] = None,
                   seal_clock: Optional[object] = None) -> Optional[Block]:
        """Mine one block from the current mempool (one shard of it, if given).

        Returns None when the (lane's) mempool is empty — the simulated chain
        does not produce empty blocks (nothing in the paper requires them and
        the benchmarks only care about blocks carrying requests).
        ``seal_clock`` lets a lane scheduler seal against a held clock so
        several lanes share one block interval.
        """
        transactions = self._select_transactions(shard)
        if not transactions:
            return None
        header = BlockHeader(
            number=self.chain.height + 1,
            parent_hash=self.chain.head.block_hash,
            merkle_root="",
            timestamp=self.clock.now(),
            proposer=self.proposer,
        )
        block = Block(header=header, transactions=tuple(transactions))
        header.merkle_root = block.compute_merkle_root()
        self.chain.consensus.seal(header, seal_clock or self.clock)
        sealed = Block(header=header, transactions=tuple(transactions))
        self.chain.append_block(sealed)
        self.mempool.remove(sealed.transaction_hashes())
        self.blocks_mined += 1
        return sealed

    def mine_interval(self) -> List[Block]:
        """Produce the blocks of one simulated block interval.

        Unsharded, that is the classic single block (the clock advances once
        per block, exactly the seed behaviour).  Sharded, every lane with
        pending work seals a block and the clock still advances only once.
        """
        if self.lanes is not None:
            return self.lanes.mine_interval()
        with self.tracer.span("lane.mine", shard=0) as span:
            block = self.mine_block()
            span.annotate(
                transactions=len(block.transactions) if block is not None else 0)
        return [block] if block is not None else []

    def mine_until_empty(self, max_blocks: int = 1_000) -> List[Block]:
        """Mine blocks until the mempool is drained (or ``max_blocks`` reached)."""
        mined: List[Block] = []
        while len(self.mempool) > 0 and len(mined) < max_blocks:
            blocks = self.mine_interval()
            if not blocks:
                break
            mined.extend(blocks)
        return mined

    # ----------------------------------------------------------------- metrics

    def lane_statistics(self) -> Optional[dict]:
        """Per-lane production counters, or None when unsharded."""
        return self.lanes.statistics() if self.lanes is not None else None

    def receipts_of(self, block: Block) -> Tuple[TransactionReceipt, ...]:
        """Receipts of every transaction in ``block``."""
        return tuple(self.chain.receipt(tx_hash) for tx_hash in block.transaction_hashes())
