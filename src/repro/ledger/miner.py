"""The block producer.

The miner drains the mempool into new blocks, honouring:

* the per-block transaction and gas limits;
* the paper's serialisation rule (§III-B): *"one block can contain one
  transaction at most on some shared data at one time"* — conflicting update
  requests on the same shared table are deferred to later blocks;
* the consensus engine's sealing procedure and block interval.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.ledger.block import Block, BlockHeader
from repro.ledger.chain import Blockchain
from repro.ledger.clock import SimClock
from repro.ledger.gas import GasSchedule
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import Transaction, TransactionReceipt

#: Returns the "shared data key" a transaction contends on, or None when the
#: transaction is not an update request on shared data.
ConflictKeyFn = Callable[[Transaction], Optional[str]]


def default_conflict_key(tx: Transaction) -> Optional[str]:
    """The default contention rule.

    Contract calls that request an operation on shared data carry the target
    ``metadata_id`` in their arguments; two requests on the same metadata id
    may not share a block.
    """
    if tx.kind != "call":
        return None
    if tx.method in ("request_update", "request_create", "request_delete"):
        metadata_id = tx.args.get("metadata_id")
        return str(metadata_id) if metadata_id is not None else None
    return None


class Miner:
    """Builds, seals and appends blocks from a mempool."""

    def __init__(
        self,
        chain: Blockchain,
        mempool: Mempool,
        clock: SimClock,
        proposer: str = "miner-0",
        conflict_key: ConflictKeyFn = default_conflict_key,
        enforce_serialization: bool = True,
    ):
        self.chain = chain
        self.mempool = mempool
        self.clock = clock
        self.proposer = proposer
        self.conflict_key = conflict_key
        self.enforce_serialization = enforce_serialization
        self.gas_schedule = GasSchedule(
            per_transaction=chain.config.gas_per_transaction,
            per_payload_byte=chain.config.gas_per_payload_byte,
        )
        self.blocks_mined = 0

    # ------------------------------------------------------------ block packing

    def _select_transactions(self) -> List[Transaction]:
        """Choose the transactions for the next block, oldest first."""
        selected: List[Transaction] = []
        used_keys = set()
        gas_used = 0
        for tx in self.mempool.peek():
            if len(selected) >= self.chain.config.max_transactions_per_block:
                break
            gas = self.gas_schedule.intrinsic_gas(tx)
            if gas_used + gas > self.chain.config.gas_limit_per_block:
                continue
            if self.enforce_serialization:
                key = self.conflict_key(tx)
                if key is not None:
                    if key in used_keys:
                        # The paper's rule: defer the second update on the same
                        # shared data to a later block.
                        continue
                    used_keys.add(key)
            selected.append(tx)
            gas_used += gas
        return selected

    def mine_block(self) -> Optional[Block]:
        """Mine one block from the current mempool.

        Returns None when the mempool is empty — the simulated chain does not
        produce empty blocks (nothing in the paper requires them and the
        benchmarks only care about blocks carrying requests).
        """
        transactions = self._select_transactions()
        if not transactions:
            return None
        header = BlockHeader(
            number=self.chain.height + 1,
            parent_hash=self.chain.head.block_hash,
            merkle_root="",
            timestamp=self.clock.now(),
            proposer=self.proposer,
        )
        block = Block(header=header, transactions=tuple(transactions))
        header.merkle_root = block.compute_merkle_root()
        self.chain.consensus.seal(header, self.clock)
        sealed = Block(header=header, transactions=tuple(transactions))
        self.chain.append_block(sealed)
        self.mempool.remove(sealed.transaction_hashes())
        self.blocks_mined += 1
        return sealed

    def mine_until_empty(self, max_blocks: int = 1_000) -> List[Block]:
        """Mine blocks until the mempool is drained (or ``max_blocks`` reached)."""
        mined: List[Block] = []
        while len(self.mempool) > 0 and len(mined) < max_blocks:
            block = self.mine_block()
            if block is None:
                break
            mined.append(block)
        return mined

    # ----------------------------------------------------------------- metrics

    def receipts_of(self, block: Block) -> Tuple[TransactionReceipt, ...]:
        """Receipts of every transaction in ``block``."""
        return tuple(self.chain.receipt(tx_hash) for tx_hash in block.transaction_hashes())
