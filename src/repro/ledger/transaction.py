"""Transactions and receipts.

A transaction is a signed request from an account: either a plain value/data
transfer, a contract deployment, or a contract call.  Contract calls carry a
method name and keyword arguments; the contract runtime executes them when a
block is applied.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import hash_payload
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import Signature, sign, verify
from repro.errors import InvalidTransactionError


class FrozenDict(dict):
    """A dict whose mutating methods raise.

    Used to deep-freeze a signed transaction's ``args``/``payload``: unlike
    ``MappingProxyType`` it survives ``copy.deepcopy`` (contract storage
    snapshots) and serialises with ``json`` natively.
    """

    def _blocked(self, *args: Any, **kwargs: Any) -> None:
        raise InvalidTransactionError(
            "transaction args/payload are frozen after signing")

    __setitem__ = _blocked
    __delitem__ = _blocked
    pop = _blocked
    popitem = _blocked
    clear = _blocked
    update = _blocked
    setdefault = _blocked

    # deepcopy/pickle rebuild dicts item by item through __setitem__, which
    # is blocked — provide explicit reconstruction instead.
    def __copy__(self) -> "FrozenDict":
        return FrozenDict(self)

    def __deepcopy__(self, memo: Dict[int, Any]) -> "FrozenDict":
        import copy

        return FrozenDict(
            (key, copy.deepcopy(value, memo)) for key, value in self.items())

    def __reduce__(self):
        return (FrozenDict, (dict(self),))


def _deep_freeze(value: Any) -> Any:
    """Recursively convert mappings to :class:`FrozenDict` and sequences to
    tuples, so no reachable part of a signed transaction is mutable."""
    if isinstance(value, Mapping):
        return FrozenDict((key, _deep_freeze(item)) for key, item in value.items())
    if isinstance(value, (list, tuple)):
        return tuple(_deep_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    return value


@dataclass
class Transaction:
    """A signed ledger transaction.

    Attributes
    ----------
    sender:
        Address of the originating account.
    kind:
        ``"transfer"``, ``"deploy"`` or ``"call"``.
    nonce:
        Per-sender sequence number, preventing replay and ordering a sender's
        transactions.
    contract:
        Target contract address for ``call`` transactions; for ``deploy``
        transactions it is filled with the created address by the runtime.
    method:
        Contract method name for ``call`` transactions, or the contract class
        name for ``deploy`` transactions.
    args:
        Keyword arguments of the call / constructor.
    payload:
        Free-form extra data (used by baselines that store raw data on-chain).
    timestamp:
        Simulated submission time.
    """

    sender: str
    kind: str
    nonce: int
    contract: Optional[str] = None
    method: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = 0.0
    sender_public_key: Optional[int] = None
    signature: Optional[Signature] = None

    VALID_KINDS = ("transfer", "deploy", "call")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise InvalidTransactionError(f"unknown transaction kind {self.kind!r}")
        if self.nonce < 0:
            raise InvalidTransactionError("nonce must be non-negative")
        if self.signature is not None:
            # A signed transaction is frozen: its fields are covered by the
            # signature (and by the cached hash), so args/payload are
            # deep-frozen and field assignment raises from here on.
            object.__setattr__(self, "args", _deep_freeze(self.args))
            object.__setattr__(self, "payload", _deep_freeze(self.payload))
            self.__dict__["_frozen"] = True

    def __setattr__(self, name: str, value: Any) -> None:
        if self.__dict__.get("_frozen"):
            raise InvalidTransactionError(
                f"transaction is frozen after signing; cannot assign {name!r}"
            )
        object.__setattr__(self, name, value)

    @property
    def is_frozen(self) -> bool:
        """True once the transaction carries a signature (fields immutable)."""
        return bool(self.__dict__.get("_frozen"))

    # ------------------------------------------------------------------ identity

    def signing_payload(self) -> dict:
        """The part of the transaction covered by the signature."""
        return {
            "sender": self.sender,
            "kind": self.kind,
            "nonce": self.nonce,
            "contract": self.contract,
            "method": self.method,
            "args": dict(self.args),
            "payload": dict(self.payload),
            "timestamp": self.timestamp,
        }

    @property
    def tx_hash(self) -> str:
        """The transaction hash (includes the signature when present).

        Computed once and cached: the mempool, the miner, block building and
        receipt lookup all re-read the hash, and a signed transaction is
        frozen (see ``__post_init__``) so the cache can never go stale.
        Unsigned transactions stay mutable, so only signed ones cache.
        """
        cached = self.__dict__.get("_cached_tx_hash")
        if cached is not None:
            return cached
        body = self.signing_payload()
        if self.signature is not None:
            body["signature"] = self.signature.to_dict()
        digest = hash_payload(body)
        if self.is_frozen:
            self.__dict__["_cached_tx_hash"] = digest
        return digest

    # ------------------------------------------------------------------ signing

    def signed_by(self, keypair: KeyPair) -> "Transaction":
        """Return a copy of this transaction signed with ``keypair``."""
        if keypair.address != self.sender:
            raise InvalidTransactionError(
                f"key address {keypair.address} does not match sender {self.sender}"
            )
        signature = sign(keypair, self.signing_payload())
        return Transaction(
            sender=self.sender,
            kind=self.kind,
            nonce=self.nonce,
            contract=self.contract,
            method=self.method,
            args=dict(self.args),
            payload=dict(self.payload),
            timestamp=self.timestamp,
            sender_public_key=keypair.public_key,
            signature=signature,
        )

    def verify_signature(self) -> bool:
        """True when the transaction carries a valid signature of its sender."""
        if self.signature is None or self.sender_public_key is None:
            return False
        from repro.crypto.keys import address_from_public_key

        if address_from_public_key(self.sender_public_key) != self.sender:
            return False
        return verify(self.sender_public_key, self.signing_payload(), self.signature)

    # ------------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        body = self.signing_payload()
        body["sender_public_key"] = hex(self.sender_public_key) if self.sender_public_key else None
        body["signature"] = self.signature.to_dict() if self.signature else None
        return body

    @staticmethod
    def from_dict(payload: dict) -> "Transaction":
        return Transaction(
            sender=payload["sender"],
            kind=payload["kind"],
            nonce=payload["nonce"],
            contract=payload.get("contract"),
            method=payload.get("method"),
            args=dict(payload.get("args", {})),
            payload=dict(payload.get("payload", {})),
            timestamp=payload.get("timestamp", 0.0),
            sender_public_key=int(payload["sender_public_key"], 16)
            if payload.get("sender_public_key") else None,
            signature=Signature.from_dict(payload["signature"])
            if payload.get("signature") else None,
        )


@dataclass(frozen=True)
class TransactionReceipt:
    """The outcome of executing one transaction inside a block."""

    tx_hash: str
    block_number: int
    success: bool
    gas_used: int
    return_value: Any = None
    error: Optional[str] = None
    contract_address: Optional[str] = None
    events: Tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        return {
            "tx_hash": self.tx_hash,
            "block_number": self.block_number,
            "success": self.success,
            "gas_used": self.gas_used,
            "return_value": self.return_value,
            "error": self.error,
            "contract_address": self.contract_address,
            "events": list(self.events),
        }
