"""Transactions and receipts.

A transaction is a signed request from an account: either a plain value/data
transfer, a contract deployment, or a contract call.  Contract calls carry a
method name and keyword arguments; the contract runtime executes them when a
block is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import hash_payload
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import Signature, sign, verify
from repro.errors import InvalidTransactionError


@dataclass
class Transaction:
    """A signed ledger transaction.

    Attributes
    ----------
    sender:
        Address of the originating account.
    kind:
        ``"transfer"``, ``"deploy"`` or ``"call"``.
    nonce:
        Per-sender sequence number, preventing replay and ordering a sender's
        transactions.
    contract:
        Target contract address for ``call`` transactions; for ``deploy``
        transactions it is filled with the created address by the runtime.
    method:
        Contract method name for ``call`` transactions, or the contract class
        name for ``deploy`` transactions.
    args:
        Keyword arguments of the call / constructor.
    payload:
        Free-form extra data (used by baselines that store raw data on-chain).
    timestamp:
        Simulated submission time.
    """

    sender: str
    kind: str
    nonce: int
    contract: Optional[str] = None
    method: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = 0.0
    sender_public_key: Optional[int] = None
    signature: Optional[Signature] = None

    VALID_KINDS = ("transfer", "deploy", "call")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise InvalidTransactionError(f"unknown transaction kind {self.kind!r}")
        if self.nonce < 0:
            raise InvalidTransactionError("nonce must be non-negative")

    # ------------------------------------------------------------------ identity

    def signing_payload(self) -> dict:
        """The part of the transaction covered by the signature."""
        return {
            "sender": self.sender,
            "kind": self.kind,
            "nonce": self.nonce,
            "contract": self.contract,
            "method": self.method,
            "args": self.args,
            "payload": self.payload,
            "timestamp": self.timestamp,
        }

    @property
    def tx_hash(self) -> str:
        """The transaction hash (includes the signature when present)."""
        body = self.signing_payload()
        if self.signature is not None:
            body["signature"] = self.signature.to_dict()
        return hash_payload(body)

    # ------------------------------------------------------------------ signing

    def signed_by(self, keypair: KeyPair) -> "Transaction":
        """Return a copy of this transaction signed with ``keypair``."""
        if keypair.address != self.sender:
            raise InvalidTransactionError(
                f"key address {keypair.address} does not match sender {self.sender}"
            )
        signature = sign(keypair, self.signing_payload())
        return Transaction(
            sender=self.sender,
            kind=self.kind,
            nonce=self.nonce,
            contract=self.contract,
            method=self.method,
            args=dict(self.args),
            payload=dict(self.payload),
            timestamp=self.timestamp,
            sender_public_key=keypair.public_key,
            signature=signature,
        )

    def verify_signature(self) -> bool:
        """True when the transaction carries a valid signature of its sender."""
        if self.signature is None or self.sender_public_key is None:
            return False
        from repro.crypto.keys import address_from_public_key

        if address_from_public_key(self.sender_public_key) != self.sender:
            return False
        return verify(self.sender_public_key, self.signing_payload(), self.signature)

    # ------------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        body = self.signing_payload()
        body["sender_public_key"] = hex(self.sender_public_key) if self.sender_public_key else None
        body["signature"] = self.signature.to_dict() if self.signature else None
        return body

    @staticmethod
    def from_dict(payload: dict) -> "Transaction":
        return Transaction(
            sender=payload["sender"],
            kind=payload["kind"],
            nonce=payload["nonce"],
            contract=payload.get("contract"),
            method=payload.get("method"),
            args=dict(payload.get("args", {})),
            payload=dict(payload.get("payload", {})),
            timestamp=payload.get("timestamp", 0.0),
            sender_public_key=int(payload["sender_public_key"], 16)
            if payload.get("sender_public_key") else None,
            signature=Signature.from_dict(payload["signature"])
            if payload.get("signature") else None,
        )


@dataclass(frozen=True)
class TransactionReceipt:
    """The outcome of executing one transaction inside a block."""

    tx_hash: str
    block_number: int
    success: bool
    gas_used: int
    return_value: Any = None
    error: Optional[str] = None
    contract_address: Optional[str] = None
    events: Tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        return {
            "tx_hash": self.tx_hash,
            "block_number": self.block_number,
            "success": self.success,
            "gas_used": self.gas_used,
            "return_value": self.return_value,
            "error": self.error,
            "contract_address": self.contract_address,
            "events": list(self.events),
        }
