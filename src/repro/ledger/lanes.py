"""Per-shard block-production lanes.

One miner, many lanes: each consensus shard gets its own *lane* that builds
and seals a block from its shard of the mempool.  A :class:`LaneScheduler`
interleaves the lanes round-robin inside one simulated block interval — the
clock advances **once per interval**, not once per block — so independent
shared tables no longer queue behind each other for block space.  Sealing
work (PoW hash attempts) and produced blocks are accounted per lane.

With a single shard the scheduler is never constructed and the miner's
classic one-block-per-interval loop runs unchanged.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ledger.block import Block
    from repro.ledger.miner import Miner


class HeldClock:
    """A clock view whose ``advance`` is a no-op.

    Lanes after the first in an interval seal with this wrapper: they share
    the interval the first lane already paid for, so their blocks carry the
    same timestamp and the simulated time advances once per interval.
    """

    def __init__(self, clock):
        self._clock = clock

    def now(self) -> float:
        return self._clock.now()

    def advance(self, seconds: float) -> float:
        return self._clock.now()

    def advance_to(self, timestamp: float) -> float:
        return self._clock.now()


class LaneScheduler:
    """Round-robin interleaving of per-shard mining lanes."""

    def __init__(self, miner: "Miner", num_lanes: int):
        if num_lanes < 2:
            raise ValueError("a lane scheduler needs at least two lanes")
        self.miner = miner
        self.num_lanes = num_lanes
        self._next_lane = 0
        self.intervals = 0
        self.blocks_per_lane: List[int] = [0] * num_lanes
        self.transactions_per_lane: List[int] = [0] * num_lanes
        self.sealing_work_per_lane: List[int] = [0] * num_lanes

    def mine_interval(self) -> List["Block"]:
        """Produce at most one block per lane within one block interval.

        Lanes are visited round-robin starting from a rotating cursor; the
        first lane that seals advances the clock by the block interval and
        every later lane in the same pass seals against a :class:`HeldClock`.
        Returns the blocks in production order (empty when no lane had work).
        """
        blocks: List["Block"] = []
        start = self._next_lane
        for offset in range(self.num_lanes):
            lane = (start + offset) % self.num_lanes
            seal_clock = self.miner.clock if not blocks else HeldClock(self.miner.clock)
            with self.miner.tracer.span("lane.mine", shard=lane) as span:
                block = self.miner.mine_block(shard=lane, seal_clock=seal_clock)
                span.annotate(transactions=(len(block.transactions)
                                            if block is not None else 0))
            if block is None:
                continue
            blocks.append(block)
            self.blocks_per_lane[lane] += 1
            self.transactions_per_lane[lane] += len(block.transactions)
            self.sealing_work_per_lane[lane] += self.miner.chain.consensus.sealing_work()
        if blocks:
            self.intervals += 1
            self._next_lane = (start + 1) % self.num_lanes
        return blocks

    def statistics(self) -> dict:
        """Per-lane production counters (benchmarks and gateway metrics)."""
        return {
            "lanes": self.num_lanes,
            "intervals": self.intervals,
            "blocks_per_lane": list(self.blocks_per_lane),
            "transactions_per_lane": list(self.transactions_per_lane),
            "sealing_work_per_lane": list(self.sealing_work_per_lane),
        }
