"""A from-scratch simulated blockchain.

The paper delegates four responsibilities to the blockchain (§III-B):

1. keep the *permission metadata* of shared data on smart contracts;
2. reach consensus on update requests and serialise conflicting ones
   (one update transaction per shared table per block);
3. notify sharing peers that shared data changed;
4. provide an immutable, auditable history of updates.

This subpackage provides the ledger those responsibilities need, without an
external Ethereum/Fabric dependency:

* :mod:`repro.ledger.clock` — a simulated clock so block intervals (the ~12 s
  of §IV.1) are modelled without real waiting.
* :mod:`repro.ledger.transaction` / :mod:`repro.ledger.block` — signed
  transactions, Merkle-committed blocks, receipts.
* :mod:`repro.ledger.mempool` — the pending-transaction pool.
* :mod:`repro.ledger.gas` — a simple gas model (storage pressure benchmark).
* :mod:`repro.ledger.consensus` — proof-of-work and proof-of-authority seals.
* :mod:`repro.ledger.chain` — chain storage, validation and fork choice.
* :mod:`repro.ledger.state` — account/contract world state.
* :mod:`repro.ledger.events` — event logs emitted by contracts.
* :mod:`repro.ledger.miner` — the block producer enforcing the paper's
  one-update-per-shared-table-per-block rule.
* :mod:`repro.ledger.sharding` / :mod:`repro.ledger.lanes` — per-shard
  mempools and the lane scheduler that seals one block per shard inside one
  simulated block interval (``LedgerConfig.consensus_shards``).
"""

from repro.ledger.clock import SimClock
from repro.ledger.transaction import Transaction, TransactionReceipt
from repro.ledger.block import Block, BlockHeader
from repro.ledger.mempool import Mempool
from repro.ledger.gas import GasSchedule, transaction_gas
from repro.ledger.consensus import ConsensusEngine, ProofOfAuthority, ProofOfWork, make_consensus
from repro.ledger.state import WorldState, Account
from repro.ledger.events import EventLog, LogEntry
from repro.ledger.chain import Blockchain
from repro.ledger.lanes import HeldClock, LaneScheduler
from repro.ledger.miner import Miner
from repro.ledger.sharding import ShardedMempool, ShardRouter
from repro.ledger.light_client import InclusionProof, LightClient, build_inclusion_proof
from repro.ledger.archive import export_chain, import_chain, verify_archive

__all__ = [
    "SimClock",
    "Transaction",
    "TransactionReceipt",
    "Block",
    "BlockHeader",
    "Mempool",
    "GasSchedule",
    "transaction_gas",
    "ConsensusEngine",
    "ProofOfAuthority",
    "ProofOfWork",
    "make_consensus",
    "WorldState",
    "Account",
    "EventLog",
    "LogEntry",
    "Blockchain",
    "HeldClock",
    "LaneScheduler",
    "Miner",
    "ShardRouter",
    "ShardedMempool",
    "InclusionProof",
    "LightClient",
    "build_inclusion_proof",
    "export_chain",
    "import_chain",
    "verify_archive",
]
