"""Chain storage, validation, execution and fork choice.

A :class:`Blockchain` holds the ordered blocks, the world state produced by
executing them, the receipts and the event log.  Transaction execution is
delegated to an *executor* (the contract runtime from
:mod:`repro.contracts.runtime`), keeping the ledger free of contract
semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import LedgerConfig
from repro.errors import ForkError, InvalidBlockError, InvalidTransactionError
from repro.ledger.block import Block, make_genesis_block, validate_block_linkage
from repro.ledger.consensus import ConsensusEngine, make_consensus
from repro.ledger.events import EventLog, LogEntry
from repro.ledger.gas import GasSchedule
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction, TransactionReceipt


class TransactionExecutor:
    """Interface the contract runtime implements to execute transactions."""

    def execute(self, tx: Transaction, state: WorldState, block_number: int,
                timestamp: float) -> TransactionReceipt:
        raise NotImplementedError


class NullExecutor(TransactionExecutor):
    """An executor that accepts every transaction without contract semantics.

    Used by ledger-only tests and by the on-chain-storage baseline, where the
    payload itself is the point.
    """

    def __init__(self, gas_schedule: GasSchedule = GasSchedule()):
        self.gas_schedule = gas_schedule

    def execute(self, tx: Transaction, state: WorldState, block_number: int,
                timestamp: float) -> TransactionReceipt:
        state.increment_nonce(tx.sender)
        return TransactionReceipt(
            tx_hash=tx.tx_hash,
            block_number=block_number,
            success=True,
            gas_used=self.gas_schedule.intrinsic_gas(tx),
        )


class Blockchain:
    """The canonical chain of one node."""

    def __init__(self, config: LedgerConfig = LedgerConfig(),
                 executor: Optional[TransactionExecutor] = None,
                 consensus: Optional[ConsensusEngine] = None):
        self.config = config
        self.consensus = consensus or make_consensus(config.consensus)
        self.executor = executor or NullExecutor(
            GasSchedule(per_transaction=config.gas_per_transaction,
                        per_payload_byte=config.gas_per_payload_byte)
        )
        self.state = WorldState()
        self.events = EventLog()
        self._blocks: List[Block] = [make_genesis_block(config.chain_id)]
        self._blocks_by_hash: Dict[str, Block] = {self._blocks[0].block_hash: self._blocks[0]}
        self._receipts: Dict[str, TransactionReceipt] = {}
        self._total_gas_used = 0

    # ----------------------------------------------------------------- queries

    @property
    def height(self) -> int:
        """The number of the latest block."""
        return self._blocks[-1].number

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def genesis(self) -> Block:
        return self._blocks[0]

    @property
    def blocks(self) -> Tuple[Block, ...]:
        return tuple(self._blocks)

    @property
    def total_gas_used(self) -> int:
        return self._total_gas_used

    def __len__(self) -> int:
        return len(self._blocks)

    def block_by_number(self, number: int) -> Block:
        if not 0 <= number < len(self._blocks):
            raise InvalidBlockError(f"no block with number {number}")
        return self._blocks[number]

    def block_by_hash(self, block_hash: str) -> Block:
        if block_hash not in self._blocks_by_hash:
            raise InvalidBlockError(f"no block with hash {block_hash[:12]}")
        return self._blocks_by_hash[block_hash]

    def receipt(self, tx_hash: str) -> TransactionReceipt:
        if tx_hash not in self._receipts:
            raise InvalidTransactionError(f"no receipt for transaction {tx_hash[:12]}")
        return self._receipts[tx_hash]

    def has_receipt(self, tx_hash: str) -> bool:
        return tx_hash in self._receipts

    def transactions(self) -> Iterable[Transaction]:
        """All transactions in chain order."""
        for block in self._blocks:
            for tx in block.transactions:
                yield tx

    def receipts(self) -> Tuple[TransactionReceipt, ...]:
        return tuple(self._receipts.values())

    # --------------------------------------------------------------- validation

    def validate_block(self, block: Block) -> None:
        """Validate linkage, Merkle root, seal and signatures of ``block``."""
        validate_block_linkage(self.head, block)
        self.consensus.validate_seal(block)
        if len(block.transactions) > self.config.max_transactions_per_block:
            raise InvalidBlockError(
                f"block #{block.number} exceeds the transaction limit "
                f"({len(block.transactions)} > {self.config.max_transactions_per_block})"
            )
        for tx in block.transactions:
            if not tx.verify_signature():
                raise InvalidBlockError(
                    f"block #{block.number} contains a transaction with an invalid signature"
                )

    # ---------------------------------------------------------------- execution

    def append_block(self, block: Block) -> Tuple[TransactionReceipt, ...]:
        """Validate, execute and append ``block``; returns its receipts."""
        self.validate_block(block)
        receipts = []
        for tx in block.transactions:
            receipt = self.executor.execute(tx, self.state, block.number, block.timestamp)
            receipts.append(receipt)
            self._receipts[tx.tx_hash] = receipt
            self._total_gas_used += receipt.gas_used
            for event in receipt.events:
                self.events.append(
                    LogEntry(
                        contract=event.get("contract", receipt.contract_address or ""),
                        name=event.get("name", "event"),
                        data=event.get("data", {}),
                        block_number=block.number,
                        tx_hash=tx.tx_hash,
                    )
                )
        self._blocks.append(block)
        self._blocks_by_hash[block.block_hash] = block
        return tuple(receipts)

    def verify_chain(self) -> bool:
        """Re-validate the full chain (tamper-evidence check used by audits)."""
        for parent, child in zip(self._blocks, self._blocks[1:]):
            try:
                validate_block_linkage(parent, child)
                self.consensus.validate_seal(child)
            except InvalidBlockError:
                return False
        return True

    def detect_tampering(self) -> List[int]:
        """Block numbers whose linkage or seal is no longer valid."""
        corrupted = []
        for parent, child in zip(self._blocks, self._blocks[1:]):
            try:
                validate_block_linkage(parent, child)
                self.consensus.validate_seal(child)
            except InvalidBlockError:
                corrupted.append(child.number)
        return corrupted

    # -------------------------------------------------------------- fork choice

    def replace_suffix(self, fork_blocks: List[Block], from_number: int) -> None:
        """Adopt a longer fork starting at ``from_number``.

        Simulation-grade reorg support: the world state is rebuilt by
        re-executing the whole chain, which is acceptable at the scales the
        benchmarks use and keeps the logic obviously correct.
        """
        if from_number <= 0 or from_number > self.height + 1:
            raise ForkError(f"invalid fork point {from_number}")
        retained = self._blocks[:from_number]
        candidate = retained + list(fork_blocks)
        if len(candidate) <= len(self._blocks):
            raise ForkError("fork is not longer than the current chain")
        rebuilt = Blockchain(self.config, executor=self.executor, consensus=self.consensus)
        rebuilt.state = WorldState()
        # Reuse this instance's containers after successful replay.
        replay = Blockchain(self.config, executor=self.executor, consensus=self.consensus)
        for block in candidate[1:]:
            replay.append_block(block)
        self._blocks = replay._blocks
        self._blocks_by_hash = replay._blocks_by_hash
        self._receipts = replay._receipts
        self.state = replay.state
        self.events = replay.events
        self._total_gas_used = replay._total_gas_used

    # ------------------------------------------------------------------ metrics

    def storage_bytes(self) -> int:
        """Approximate per-node storage of the chain itself (§V comparison)."""
        from repro.crypto.hashing import canonical_json

        return sum(len(canonical_json(b.to_dict()).encode("utf-8")) for b in self._blocks)

    def average_block_interval(self) -> float:
        """Mean simulated seconds between consecutive blocks."""
        if len(self._blocks) < 2:
            return 0.0
        gaps = [
            child.timestamp - parent.timestamp
            for parent, child in zip(self._blocks, self._blocks[1:])
        ]
        return sum(gaps) / len(gaps)
