"""Gas accounting.

Gas has one job in the reproduction: quantify on-chain cost/storage pressure,
so the §V comparison against the store-data-on-chain baseline (HDG [22]) is
measurable.  The schedule mirrors the shape of Ethereum's intrinsic gas: a
fixed per-transaction cost plus a per-payload-byte cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import canonical_json
from repro.ledger.transaction import Transaction


@dataclass(frozen=True)
class GasSchedule:
    """Costs used to charge transactions."""

    per_transaction: int = 21_000
    per_payload_byte: int = 16
    per_contract_deployment: int = 32_000

    def intrinsic_gas(self, tx: Transaction) -> int:
        """The gas charged for ``tx`` before contract execution."""
        data_bytes = payload_size(tx)
        gas = self.per_transaction + self.per_payload_byte * data_bytes
        if tx.kind == "deploy":
            gas += self.per_contract_deployment
        return gas


def payload_size(tx: Transaction) -> int:
    """Serialized size in bytes of the transaction's call data and payload."""
    body = {"method": tx.method, "args": tx.args, "payload": tx.payload}
    return len(canonical_json(body).encode("utf-8"))


def transaction_gas(tx: Transaction, schedule: GasSchedule = GasSchedule()) -> int:
    """Convenience wrapper used by the miner and the receipts."""
    return schedule.intrinsic_gas(tx)
