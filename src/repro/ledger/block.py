"""Blocks and block headers.

Blocks chain by previous-hash linkage and commit to their transactions with a
Merkle root, exactly as §II-A describes; the consensus seal (PoW nonce or PoA
signer) lives in the header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.hashing import hash_payload
from repro.crypto.merkle import MerkleTree
from repro.errors import InvalidBlockError
from repro.ledger.transaction import Transaction

#: Previous-hash value of the genesis block.
GENESIS_PARENT = "0" * 64


@dataclass
class BlockHeader:
    """The sealed header of one block."""

    number: int
    parent_hash: str
    merkle_root: str
    timestamp: float
    proposer: str
    nonce: int = 0
    seal: str = ""
    state_root: str = ""

    def to_dict(self) -> dict:
        return {
            "number": self.number,
            "parent_hash": self.parent_hash,
            "merkle_root": self.merkle_root,
            "timestamp": self.timestamp,
            "proposer": self.proposer,
            "nonce": self.nonce,
            "seal": self.seal,
            "state_root": self.state_root,
        }

    @property
    def block_hash(self) -> str:
        return hash_payload(self.to_dict())


@dataclass
class Block:
    """A block: a sealed header plus its ordered transactions."""

    header: BlockHeader
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.transactions = tuple(self.transactions)

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def block_hash(self) -> str:
        return self.header.block_hash

    @property
    def parent_hash(self) -> str:
        return self.header.parent_hash

    @property
    def timestamp(self) -> float:
        return self.header.timestamp

    def transaction_hashes(self) -> Tuple[str, ...]:
        return tuple(tx.tx_hash for tx in self.transactions)

    def compute_merkle_root(self) -> str:
        return MerkleTree.root_of(self.transaction_hashes())

    def verify_merkle_root(self) -> bool:
        """True when the header's Merkle root matches the transaction list."""
        return self.header.merkle_root == self.compute_merkle_root()

    def find_transaction(self, tx_hash: str) -> Optional[Transaction]:
        for tx in self.transactions:
            if tx.tx_hash == tx_hash:
                return tx
        return None

    def to_dict(self) -> dict:
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
        }

    @staticmethod
    def from_dict(payload: dict) -> "Block":
        header_payload = payload["header"]
        header = BlockHeader(
            number=header_payload["number"],
            parent_hash=header_payload["parent_hash"],
            merkle_root=header_payload["merkle_root"],
            timestamp=header_payload["timestamp"],
            proposer=header_payload["proposer"],
            nonce=header_payload.get("nonce", 0),
            seal=header_payload.get("seal", ""),
            state_root=header_payload.get("state_root", ""),
        )
        transactions = tuple(Transaction.from_dict(tx) for tx in payload.get("transactions", ()))
        return Block(header=header, transactions=transactions)


def make_genesis_block(chain_id: int, timestamp: float = 0.0) -> Block:
    """Build the deterministic genesis block for a chain id."""
    header = BlockHeader(
        number=0,
        parent_hash=GENESIS_PARENT,
        merkle_root=MerkleTree.root_of(()),
        timestamp=timestamp,
        proposer="genesis",
        nonce=chain_id,
        seal="genesis",
    )
    return Block(header=header, transactions=())


def validate_block_linkage(parent: Block, child: Block) -> None:
    """Raise :class:`InvalidBlockError` unless ``child`` correctly extends ``parent``."""
    if child.header.parent_hash != parent.block_hash:
        raise InvalidBlockError(
            f"block #{child.number} parent hash {child.header.parent_hash[:12]} "
            f"does not match #{parent.number} hash {parent.block_hash[:12]}"
        )
    if child.number != parent.number + 1:
        raise InvalidBlockError(
            f"block number {child.number} does not follow parent number {parent.number}"
        )
    if child.timestamp < parent.timestamp:
        raise InvalidBlockError("block timestamp precedes its parent")
    if not child.verify_merkle_root():
        raise InvalidBlockError(f"block #{child.number} has an invalid Merkle root")
