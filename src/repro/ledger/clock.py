"""A simulated clock.

All time in the reproduction is *simulated*: the miner advances the clock by
the configured block interval instead of sleeping, so a benchmark can model a
12-second public-Ethereum block time (§IV.1) in microseconds of real time
while still reporting latencies in simulated seconds.

The clock is thread-safe: the gateway's async transport admits open-loop
arrivals (``advance_to``) on the event loop while a commit round mines
(``advance``) on an executor thread, so the read-modify-write of the
timestamp is protected by a lock.
"""

from __future__ import annotations

import threading


class SimClock:
    """A monotonically non-decreasing simulated clock."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """The current simulated time, in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` (no-op if already past it)."""
        with self._lock:
            if timestamp > self._now:
                self._now = timestamp
            return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
