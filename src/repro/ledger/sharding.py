"""Consensus sharding: routing shared tables to independent lanes.

The paper's update workflow serialises every shared-data commit through one
chain: one mempool, one block-size budget, one consensus round at a time.
Nothing in the protocol couples *independent* shared tables, so the ledger
pipeline can be sharded by metadata id:

* :class:`ShardRouter` — a stable hash of the metadata/table id picks the
  shard.  Transactions that do not target a shared table (deploys, transfers,
  registry calls) ride shard 0, the *control lane*; with more than one shard
  that lane is reserved for them and shared tables hash over lanes
  ``1..N-1``, so control traffic never queues behind table commits.
* :class:`ShardedMempool` — one ordered pool per shard behind the existing
  :class:`~repro.ledger.mempool.Mempool` API.  Arrival order stays globally
  consistent (a shared sequence counter), so ``peek()`` still returns the
  chronological view the contracts expect, while a miner lane can drain its
  own shard without touching the others.

The per-shard *lanes* that turn this into parallel block production live in
:mod:`repro.ledger.lanes`; with ``consensus_shards=1`` nothing in this module
is instantiated and the pipeline is byte-identical to the unsharded seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.crypto.hashing import hash_payload
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import Transaction


class ShardRouter:
    """Stable assignment of metadata ids (and their transactions) to shards."""

    def __init__(self, num_shards: int = 1):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards

    def shard_of(self, metadata_id: str) -> int:
        """The shard a shared table's transactions are routed to.

        A stable content hash (not Python's randomised ``hash``) so every
        node, the gossip layer and the benchmarks agree on the routing across
        processes and runs.  With more than one shard, lane 0 is *reserved*
        for control traffic (deploys, transfers, registry calls): shared
        tables hash over lanes ``1..N-1`` only, so a burst of table commits
        can never queue behind — or delay — control transactions.  The
        single-shard pipeline keeps everything on lane 0, byte-identical to
        the unsharded seed.
        """
        if self.num_shards == 1:
            return 0
        return 1 + int(hash_payload(str(metadata_id))[:8], 16) % (self.num_shards - 1)

    def shard_of_transaction(self, tx: Transaction) -> int:
        """Route a transaction by the shared table it touches.

        Any contract call naming a ``metadata_id`` — update/create/delete
        requests, folded requests and acknowledgements alike — lands on that
        table's shard, so both consensus rounds of a commit parallelise.
        Everything else (deploys, transfers, registry traffic) takes the
        control lane, shard 0.
        """
        if tx.kind == "call":
            metadata_id = tx.args.get("metadata_id")
            if metadata_id is not None:
                return self.shard_of(str(metadata_id))
        return 0

    def __repr__(self) -> str:
        return f"ShardRouter(num_shards={self.num_shards})"


class ShardedMempool(Mempool):
    """One ordered transaction pool per consensus shard.

    Implements the full :class:`Mempool` interface — global ``peek`` order,
    duplicate detection and O(removed) removal all behave exactly as the
    single pool — and additionally lets a miner lane iterate one shard in
    isolation (:meth:`iter_entries` with ``shard=``) and report per-shard
    queue depths for the gateway metrics.
    """

    def __init__(self, router: ShardRouter, require_signatures: bool = True):
        super().__init__(require_signatures)
        self.router = router
        # The inner pools share this pool's sequence counter so arrival
        # order is globally consistent across shards.
        self._shards: Tuple[Mempool, ...] = tuple(
            Mempool(require_signatures, sequence=self._sequence)
            for _ in range(router.num_shards)
        )
        self._shard_of_hash: Dict[str, int] = {}

    @property
    def num_shards(self) -> int:  # type: ignore[override]
        return self.router.num_shards

    def __len__(self) -> int:
        return sum(len(pool) for pool in self._shards)

    def __contains__(self, tx_hash: object) -> bool:
        return tx_hash in self._shard_of_hash

    @property
    def rejected_count(self) -> int:
        return self._rejected_count + sum(pool.rejected_count for pool in self._shards)

    def shard_depths(self) -> Tuple[int, ...]:
        """Pending-transaction count per shard (gateway metrics)."""
        return tuple(len(pool) for pool in self._shards)

    def get(self, tx_hash: str) -> Optional[Transaction]:
        shard = self._shard_of_hash.get(tx_hash)
        if shard is None:
            return None
        return self._shards[shard].get(tx_hash)

    def sequence_of(self, tx_hash: str) -> Optional[int]:
        shard = self._shard_of_hash.get(tx_hash)
        if shard is None:
            return None
        return self._shards[shard].sequence_of(tx_hash)

    def submit(self, tx: Transaction) -> str:
        shard = self.router.shard_of_transaction(tx)
        tx_hash = self._shards[shard].submit(tx)
        self._shard_of_hash[tx_hash] = shard
        return tx_hash

    def peek(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        merged = self._merged_entries()
        if limit is None:
            return tuple(tx for _seq, tx in merged)
        return tuple(tx for _seq, tx in merged[:limit])

    def _merged_entries(self) -> List[Tuple[int, Transaction]]:
        entries: List[Tuple[int, Transaction]] = []
        for pool in self._shards:
            entries.extend(pool.iter_entries())
        entries.sort(key=lambda entry: entry[0])
        return entries

    def iter_entries(self, after: int = -1,
                     shard: Optional[int] = None) -> Iterator[Tuple[int, Transaction]]:
        """Arrival-ordered ``(seq, tx)`` pairs; one shard or the merged view."""
        if shard is not None:
            return self._shards[shard].iter_entries(after)
        return iter([entry for entry in self._merged_entries() if entry[0] > after])

    def remove(self, tx_hashes: Iterable[str]) -> int:
        removed = 0
        for tx_hash in tx_hashes:
            shard = self._shard_of_hash.pop(tx_hash, None)
            if shard is None:
                continue
            removed += self._shards[shard].remove((tx_hash,))
        return removed

    def clear(self) -> None:
        for pool in self._shards:
            pool.clear()
        self._shard_of_hash = {}

    def pending_for_sender(self, sender: str) -> Tuple[Transaction, ...]:
        return tuple(tx for _seq, tx in self._merged_entries() if tx.sender == sender)

    def next_nonce(self, sender: str, confirmed_nonce: int) -> int:
        """Arrival order is irrelevant to the max-nonce computation, so this
        skips the merged sort the ordered ``pending_for_sender`` view pays —
        every ``build_contract_call`` runs through here."""
        pending = [tx.nonce for pool in self._shards
                   for tx in pool.pending_for_sender(sender)]
        return max([confirmed_nonce - 1] + pending) + 1
