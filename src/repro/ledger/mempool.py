"""The pending-transaction pool.

Transactions submitted by peers wait here until a miner includes them in a
block.  The pool keeps arrival order (the paper's contracts "dispose of the
updates according to received requests in chronological order") and rejects
duplicates and invalid signatures up front.

Internally the pool is one insertion-ordered dict keyed by transaction hash,
so duplicate detection, lookup and post-block :meth:`Mempool.remove` are all
O(1) per transaction while iteration still follows arrival order.  Every
accepted transaction also gets a monotonically increasing *arrival sequence
number*; the miner's per-lane selection cursors (:mod:`repro.ledger.miner`)
and the sharded pool (:mod:`repro.ledger.sharding`) order by it.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger.transaction import Transaction


class Mempool:
    """An ordered pool of pending transactions."""

    #: How many consensus lanes this pool feeds (sharded subclasses override).
    num_shards = 1

    def __init__(self, require_signatures: bool = True,
                 sequence: Optional[Iterator[int]] = None):
        #: hash -> transaction, in arrival order (dicts preserve insertion).
        self._pending: Dict[str, Transaction] = {}
        #: hash -> arrival sequence number.
        self._seq_of: Dict[str, int] = {}
        #: Shared with sibling shard pools under a ShardedMempool so arrival
        #: order is globally consistent across shards.
        self._sequence = sequence if sequence is not None else itertools.count()
        self.require_signatures = require_signatures
        self._rejected_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_hash: object) -> bool:
        return tx_hash in self._pending

    @property
    def rejected_count(self) -> int:
        """How many submissions were rejected (duplicates or bad signatures)."""
        return self._rejected_count

    def get(self, tx_hash: str) -> Optional[Transaction]:
        """The pending transaction with ``tx_hash``, or None."""
        return self._pending.get(tx_hash)

    def sequence_of(self, tx_hash: str) -> Optional[int]:
        """The arrival sequence number of a pending transaction, or None."""
        return self._seq_of.get(tx_hash)

    def submit(self, tx: Transaction) -> str:
        """Add a transaction to the pool; returns its hash.

        Raises :class:`InvalidTransactionError` for unsigned/duplicate
        transactions rather than silently dropping them — errors should never
        pass silently.
        """
        if self.require_signatures and not tx.verify_signature():
            self._rejected_count += 1
            raise InvalidTransactionError(
                f"transaction from {tx.sender} has a missing or invalid signature"
            )
        tx_hash = tx.tx_hash
        if tx_hash in self._pending:
            self._rejected_count += 1
            raise InvalidTransactionError(f"duplicate transaction {tx_hash[:12]}")
        self._pending[tx_hash] = tx
        self._seq_of[tx_hash] = next(self._sequence)
        return tx_hash

    def submit_many(self, txs: Iterable[Transaction]) -> List[str]:
        return [self.submit(tx) for tx in txs]

    def submit_batch(self, txs: Iterable[Transaction]) -> Tuple[List[str], List[Tuple[Transaction, str]]]:
        """Submit a whole batch, accepting what validates and reporting the rest.

        Unlike :meth:`submit_many`, a bad transaction does not abort the batch
        — a node ingesting a gossiped ``tx-batch`` message (the gateway's
        batched ledger commit) carries many independent peers' transactions
        and needs per-transaction outcomes.  Returns
        ``(accepted_hashes, [(rejected_tx, reason), ...])``.
        """
        accepted: List[str] = []
        rejected: List[Tuple[Transaction, str]] = []
        for tx in txs:
            try:
                accepted.append(self.submit(tx))
            except InvalidTransactionError as exc:
                rejected.append((tx, str(exc)))
        return accepted, rejected

    def peek(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        """The oldest pending transactions, without removing them."""
        if limit is None:
            return tuple(self._pending.values())
        return tuple(itertools.islice(self._pending.values(), limit))

    def iter_entries(self, after: int = -1,
                     shard: Optional[int] = None) -> Iterator[Tuple[int, Transaction]]:
        """Lazily yield ``(arrival_seq, tx)`` in arrival order, skipping
        entries at or before sequence number ``after``.

        The miner's per-lane cursor iterates this instead of materialising
        the whole pool with :meth:`peek`; ``shard`` is accepted for interface
        parity with :class:`~repro.ledger.sharding.ShardedMempool` (a plain
        pool is its own single shard).
        """
        for tx_hash, tx in self._pending.items():
            seq = self._seq_of[tx_hash]
            if seq > after:
                yield seq, tx

    def remove(self, tx_hashes: Iterable[str]) -> int:
        """Remove the given transactions (after block inclusion); returns count removed.

        O(removed): each hash is popped from the ordered dict directly instead
        of rebuilding the pending list.
        """
        removed = 0
        for tx_hash in tx_hashes:
            if self._pending.pop(tx_hash, None) is not None:
                removed += 1
            self._seq_of.pop(tx_hash, None)
        return removed

    def clear(self) -> None:
        self._pending = {}
        self._seq_of = {}

    def pending_for_sender(self, sender: str) -> Tuple[Transaction, ...]:
        return tuple(tx for tx in self._pending.values() if tx.sender == sender)

    def next_nonce(self, sender: str, confirmed_nonce: int) -> int:
        """The next nonce a sender should use given its confirmed account nonce."""
        pending = [tx.nonce for tx in self.pending_for_sender(sender)]
        return max([confirmed_nonce - 1] + pending) + 1
