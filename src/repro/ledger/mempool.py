"""The pending-transaction pool.

Transactions submitted by peers wait here until a miner includes them in a
block.  The pool keeps arrival order (the paper's contracts "dispose of the
updates according to received requests in chronological order") and rejects
duplicates and invalid signatures up front.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger.transaction import Transaction


class Mempool:
    """An ordered pool of pending transactions."""

    def __init__(self, require_signatures: bool = True):
        self._pending: List[Transaction] = []
        self._hashes: Dict[str, Transaction] = {}
        self.require_signatures = require_signatures
        self._rejected_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_hash: object) -> bool:
        return tx_hash in self._hashes

    @property
    def rejected_count(self) -> int:
        """How many submissions were rejected (duplicates or bad signatures)."""
        return self._rejected_count

    def submit(self, tx: Transaction) -> str:
        """Add a transaction to the pool; returns its hash.

        Raises :class:`InvalidTransactionError` for unsigned/duplicate
        transactions rather than silently dropping them — errors should never
        pass silently.
        """
        if self.require_signatures and not tx.verify_signature():
            self._rejected_count += 1
            raise InvalidTransactionError(
                f"transaction from {tx.sender} has a missing or invalid signature"
            )
        tx_hash = tx.tx_hash
        if tx_hash in self._hashes:
            self._rejected_count += 1
            raise InvalidTransactionError(f"duplicate transaction {tx_hash[:12]}")
        self._pending.append(tx)
        self._hashes[tx_hash] = tx
        return tx_hash

    def submit_many(self, txs: Iterable[Transaction]) -> List[str]:
        return [self.submit(tx) for tx in txs]

    def submit_batch(self, txs: Iterable[Transaction]) -> Tuple[List[str], List[Tuple[Transaction, str]]]:
        """Submit a whole batch, accepting what validates and reporting the rest.

        Unlike :meth:`submit_many`, a bad transaction does not abort the batch
        — a node ingesting a gossiped ``tx-batch`` message (the gateway's
        batched ledger commit) carries many independent peers' transactions
        and needs per-transaction outcomes.  Returns
        ``(accepted_hashes, [(rejected_tx, reason), ...])``.
        """
        accepted: List[str] = []
        rejected: List[Tuple[Transaction, str]] = []
        for tx in txs:
            try:
                accepted.append(self.submit(tx))
            except InvalidTransactionError as exc:
                rejected.append((tx, str(exc)))
        return accepted, rejected

    def peek(self, limit: Optional[int] = None) -> Tuple[Transaction, ...]:
        """The oldest pending transactions, without removing them."""
        if limit is None:
            return tuple(self._pending)
        return tuple(self._pending[:limit])

    def remove(self, tx_hashes: Iterable[str]) -> int:
        """Remove the given transactions (after block inclusion); returns count removed."""
        to_remove = set(tx_hashes)
        before = len(self._pending)
        self._pending = [tx for tx in self._pending if tx.tx_hash not in to_remove]
        for tx_hash in to_remove:
            self._hashes.pop(tx_hash, None)
        return before - len(self._pending)

    def clear(self) -> None:
        self._pending = []
        self._hashes = {}

    def pending_for_sender(self, sender: str) -> Tuple[Transaction, ...]:
        return tuple(tx for tx in self._pending if tx.sender == sender)

    def next_nonce(self, sender: str, confirmed_nonce: int) -> int:
        """The next nonce a sender should use given its confirmed account nonce."""
        pending = [tx.nonce for tx in self.pending_for_sender(sender)]
        return max([confirmed_nonce - 1] + pending) + 1
