"""World state: accounts and deployed contract instances.

The world state is what every node materialises by replaying the chain.  It
holds account nonces and the deployed contract objects (their Python state is
the analogue of contract storage).  A state root hash lets blocks commit to
the post-state, and lets tests detect divergence between nodes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import hash_payload


@dataclass
class Account:
    """An externally owned account (a user) or a contract account."""

    address: str
    nonce: int = 0
    is_contract: bool = False
    public_key: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "nonce": self.nonce,
            "is_contract": self.is_contract,
            "public_key": hex(self.public_key) if self.public_key else None,
        }


class WorldState:
    """Accounts plus deployed contract instances."""

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}
        self._contracts: Dict[str, Any] = {}
        #: Serialises contract execution (including read-only static calls,
        #: which snapshot-and-restore storage) and state-root hashing on this
        #: replica.  The gateway admits requests while a commit mines, so a
        #: session's permission probe can hit a node whose replica is
        #: applying a block on another thread; each call is microseconds, so
        #: the lock serialises access without serialising the transports.
        self.execution_lock = threading.RLock()

    # ---------------------------------------------------------------- accounts

    def get_account(self, address: str) -> Account:
        """Return (creating on first touch) the account at ``address``."""
        if address not in self._accounts:
            self._accounts[address] = Account(address=address)
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def increment_nonce(self, address: str) -> int:
        account = self.get_account(address)
        account.nonce += 1
        return account.nonce

    def nonce_of(self, address: str) -> int:
        return self.get_account(address).nonce

    @property
    def addresses(self) -> Tuple[str, ...]:
        return tuple(self._accounts)

    # --------------------------------------------------------------- contracts

    def deploy_contract(self, address: str, contract: Any) -> None:
        """Install a contract instance at ``address``."""
        self._contracts[address] = contract
        account = self.get_account(address)
        account.is_contract = True

    def contract_at(self, address: str) -> Optional[Any]:
        return self._contracts.get(address)

    def has_contract(self, address: str) -> bool:
        return address in self._contracts

    @property
    def contract_addresses(self) -> Tuple[str, ...]:
        return tuple(self._contracts)

    # ------------------------------------------------------------------- root

    def state_root(self) -> str:
        """A hash committing to accounts and contract storage."""
        with self.execution_lock:
            contracts = {}
            for address, contract in self._contracts.items():
                snapshot = contract.storage_snapshot() if hasattr(contract, "storage_snapshot") else {}
                contracts[address] = snapshot
            payload = {
                "accounts": {a: acct.to_dict() for a, acct in self._accounts.items()},
                "contracts": contracts,
            }
            return hash_payload(payload)

    def storage_bytes(self) -> int:
        """Approximate serialised size of the state (per-node storage pressure)."""
        from repro.crypto.hashing import canonical_json

        with self.execution_lock:
            contracts = {}
            for address, contract in self._contracts.items():
                snapshot = contract.storage_snapshot() if hasattr(contract, "storage_snapshot") else {}
                contracts[address] = snapshot
            payload = {
                "accounts": {a: acct.to_dict() for a, acct in self._accounts.items()},
                "contracts": contracts,
            }
            return len(canonical_json(payload).encode("utf-8"))
