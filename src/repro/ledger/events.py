"""Event logs.

Contracts emit events ("the smart contract notifies sharing peers of the
modification", Fig. 4 step 4); nodes index them so peers can subscribe to the
events that concern their shared tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class LogEntry:
    """One emitted event."""

    contract: str
    name: str
    data: Mapping[str, Any]
    block_number: int
    tx_hash: str

    def to_dict(self) -> dict:
        return {
            "contract": self.contract,
            "name": self.name,
            "data": dict(self.data),
            "block_number": self.block_number,
            "tx_hash": self.tx_hash,
        }


class EventLog:
    """An append-only store of events with simple filtering and subscriptions."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._subscribers: List[Tuple[Optional[str], Optional[str], Callable[[LogEntry], None]]] = []

    def append(self, entry: LogEntry) -> None:
        """Record an event and deliver it to matching subscribers."""
        self._entries.append(entry)
        for contract, name, callback in self._subscribers:
            if contract is not None and entry.contract != contract:
                continue
            if name is not None and entry.name != name:
                continue
            callback(entry)

    def extend(self, entries: Iterable[LogEntry]) -> None:
        for entry in entries:
            self.append(entry)

    def subscribe(self, callback: Callable[[LogEntry], None],
                  contract: Optional[str] = None, name: Optional[str] = None) -> None:
        """Register a callback for events, optionally filtered by contract/name."""
        self._subscribers.append((contract, name, callback))

    def all(self) -> Tuple[LogEntry, ...]:
        return tuple(self._entries)

    def filter(self, contract: Optional[str] = None, name: Optional[str] = None,
               since_block: Optional[int] = None) -> Tuple[LogEntry, ...]:
        """Events matching all provided filters."""
        result = []
        for entry in self._entries:
            if contract is not None and entry.contract != contract:
                continue
            if name is not None and entry.name != name:
                continue
            if since_block is not None and entry.block_number < since_block:
                continue
            result.append(entry)
        return tuple(result)

    def __len__(self) -> int:
        return len(self._entries)
