"""Consensus engines: proof-of-work and proof-of-authority.

§IV.3 of the paper argues a *private* chain fits the medical-sharing setting
better than public Ethereum.  Both options are implemented so the ablation
benchmark can compare them:

* :class:`ProofOfWork` — the public-chain stand-in.  Sealing a block requires
  finding a nonce whose block hash has a configurable number of leading zero
  hex digits; block production also advances the simulated clock by the
  configured block interval (the ~12 s of §IV.1).
* :class:`ProofOfAuthority` — the private-chain choice.  Only registered
  authorities may seal; sealing is immediate apart from the (much smaller)
  configured block interval.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ConsensusConfig
from repro.crypto.hashing import hash_payload
from repro.errors import ConsensusError, InvalidBlockError
from repro.ledger.block import Block, BlockHeader
from repro.ledger.clock import SimClock


class ConsensusEngine:
    """Base class: seal new blocks and validate seals of received blocks."""

    #: Human-readable engine name, used in benchmark output.
    name = "abstract"

    def __init__(self, config: ConsensusConfig):
        self.config = config

    @property
    def block_interval(self) -> float:
        return self.config.block_interval

    def seal(self, header: BlockHeader, clock: SimClock) -> BlockHeader:
        """Produce a sealed header (mutating nonce/seal fields as needed)."""
        raise NotImplementedError

    def validate_seal(self, block: Block) -> None:
        """Raise :class:`InvalidBlockError` if the block's seal is invalid."""
        raise NotImplementedError

    def sealing_work(self) -> int:
        """Number of hash attempts spent sealing the most recent block."""
        return 0


class ProofOfAuthority(ConsensusEngine):
    """Only whitelisted authorities may seal blocks; sealing is immediate."""

    name = "poa"

    def __init__(self, config: ConsensusConfig):
        super().__init__(config)
        self.authorities = tuple(config.authorities)

    def is_authority(self, address: str) -> bool:
        return not self.authorities or address in self.authorities

    @staticmethod
    def _seal_digest(header: BlockHeader) -> str:
        """The authority's commitment covers every header field except the seal
        itself, so tampering with any field (timestamp, Merkle root, ...) is
        detectable even on the chain tip."""
        body = header.to_dict()
        body.pop("seal", None)
        return hash_payload(body)

    def seal(self, header: BlockHeader, clock: SimClock) -> BlockHeader:
        if not self.is_authority(header.proposer):
            raise ConsensusError(
                f"{header.proposer} is not an authority and cannot seal block #{header.number}"
            )
        clock.advance(self.block_interval)
        header.timestamp = clock.now()
        header.seal = self._seal_digest(header)
        return header

    def validate_seal(self, block: Block) -> None:
        header = block.header
        if not self.is_authority(header.proposer):
            raise InvalidBlockError(
                f"block #{header.number} sealed by non-authority {header.proposer}"
            )
        if header.seal != self._seal_digest(header):
            raise InvalidBlockError(f"block #{header.number} carries an invalid PoA seal")


class ProofOfWork(ConsensusEngine):
    """Nonce search until the block hash satisfies the difficulty target."""

    name = "pow"

    def __init__(self, config: ConsensusConfig):
        super().__init__(config)
        self.difficulty = config.pow_difficulty
        self._last_work = 0

    def _meets_target(self, block_hash: str) -> bool:
        return block_hash.startswith("0" * self.difficulty)

    def seal(self, header: BlockHeader, clock: SimClock) -> BlockHeader:
        clock.advance(self.block_interval)
        header.timestamp = clock.now()
        header.seal = "pow"  # set before the search: the seal is part of the hashed header
        attempts = 0
        header.nonce = 0
        while True:
            attempts += 1
            if self._meets_target(header.block_hash):
                break
            header.nonce += 1
            if attempts > 2_000_000:  # pragma: no cover - guard against misconfiguration
                raise ConsensusError("proof-of-work difficulty too high for simulation")
        self._last_work = attempts
        return header

    def validate_seal(self, block: Block) -> None:
        if not self._meets_target(block.block_hash):
            raise InvalidBlockError(
                f"block #{block.number} hash does not meet difficulty {self.difficulty}"
            )

    def sealing_work(self) -> int:
        return self._last_work


def make_consensus(config: ConsensusConfig) -> ConsensusEngine:
    """Factory selecting the engine named by the configuration."""
    if config.kind == "poa":
        return ProofOfAuthority(config)
    if config.kind == "pow":
        return ProofOfWork(config)
    raise ConsensusError(f"unknown consensus kind {config.kind!r}")
