"""Deterministic Schnorr-style key pairs over a prime-order subgroup.

The simulated blockchain needs account addresses and signatures so that
transaction authenticity can be validated by every node.  We implement a
textbook Schnorr scheme over the multiplicative group modulo a safe prime.
The parameters are small enough to be fast in pure Python yet large enough
that accidental collisions are not a concern in tests or benchmarks.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

# A 256-bit safe prime p = 2q + 1 would be ideal; for simulation speed we use
# a well-known 1536-bit MODP-style prime truncated construction is overkill,
# so we use a fixed 256-bit prime with a generator of a large subgroup.
#: Modulus of the group (a 256-bit prime).
PRIME = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
#: Group generator.
GENERATOR = 5
#: Order bound used for exponents.
ORDER = PRIME - 1


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair.

    Attributes
    ----------
    private_key:
        The secret exponent ``x``.
    public_key:
        ``g^x mod p``.
    """

    private_key: int
    public_key: int

    @property
    def address(self) -> str:
        """The account address derived from the public key."""
        return address_from_public_key(self.public_key)

    def to_dict(self) -> dict:
        """Public representation (the private key is intentionally omitted)."""
        return {"public_key": hex(self.public_key), "address": self.address}


def generate_keypair(seed: int = None, rng: random.Random = None) -> KeyPair:
    """Generate a key pair.

    Parameters
    ----------
    seed:
        Optional deterministic seed.  Two calls with the same seed yield the
        same key pair, which keeps the whole system reproducible.
    rng:
        Optional externally managed random source (takes precedence over
        ``seed``).
    """
    if rng is None:
        rng = random.Random(seed)
    private = rng.randrange(2, ORDER - 1)
    public = pow(GENERATOR, private, PRIME)
    return KeyPair(private_key=private, public_key=public)


def address_from_public_key(public_key: int) -> str:
    """Derive a 40-hex-character address from a public key (keccak-free)."""
    digest = hashlib.sha256(hex(public_key).encode("utf-8")).hexdigest()
    return "0x" + digest[-40:]
