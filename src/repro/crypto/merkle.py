"""Merkle trees over transaction hashes.

Each block commits to its transaction list through a Merkle root, and light
verification of "transaction X is in block B" is possible through
:class:`MerkleProof` without holding the full transaction list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import hash_pair, sha256_hex

#: Root of an empty tree — hashing an empty byte string keeps it well-defined.
EMPTY_ROOT = sha256_hex(b"")


@dataclass(frozen=True)
class MerkleProof:
    """A membership proof for one leaf of a Merkle tree.

    Attributes
    ----------
    leaf:
        The leaf hash being proven.
    index:
        Position of the leaf in the original sequence.
    path:
        Sibling hashes from the leaf to the root, each tagged with the side
        (``"left"`` or ``"right"``) the sibling sits on.
    """

    leaf: str
    index: int
    path: Tuple[Tuple[str, str], ...]

    def compute_root(self) -> str:
        """Recompute the root implied by this proof."""
        current = self.leaf
        for side, sibling in self.path:
            if side == "left":
                current = hash_pair(sibling, current)
            else:
                current = hash_pair(current, sibling)
        return current

    def verify(self, expected_root: str) -> bool:
        """Return ``True`` iff the proof reconstructs ``expected_root``."""
        return self.compute_root() == expected_root


class MerkleTree:
    """A binary Merkle tree built over a sequence of leaf hashes.

    Odd layers duplicate their last element (the Bitcoin convention), so any
    non-empty number of leaves is supported.
    """

    def __init__(self, leaves: Sequence[str]):
        self._leaves: List[str] = list(leaves)
        self._layers: List[List[str]] = self._build_layers(self._leaves)

    @staticmethod
    def _build_layers(leaves: Sequence[str]) -> List[List[str]]:
        if not leaves:
            return [[EMPTY_ROOT]]
        layers: List[List[str]] = [list(leaves)]
        current = list(leaves)
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
            current = [
                hash_pair(current[i], current[i + 1]) for i in range(0, len(current), 2)
            ]
            layers.append(current)
        return layers

    @property
    def root(self) -> str:
        """The Merkle root committing to all leaves."""
        return self._layers[-1][0]

    @property
    def leaves(self) -> Tuple[str, ...]:
        return tuple(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Build a membership proof for the leaf at ``index``."""
        if not self._leaves:
            raise IndexError("cannot build a proof over an empty tree")
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path = []
        position = index
        for layer in self._layers[:-1]:
            padded = layer if len(layer) % 2 == 0 else layer + [layer[-1]]
            if position % 2 == 0:
                sibling = padded[position + 1]
                path.append(("right", sibling))
            else:
                sibling = padded[position - 1]
                path.append(("left", sibling))
            position //= 2
        return MerkleProof(leaf=self._leaves[index], index=index, path=tuple(path))

    @staticmethod
    def root_of(leaves: Sequence[str]) -> str:
        """Convenience: the Merkle root of ``leaves`` without keeping the tree."""
        return MerkleTree(leaves).root
