"""Schnorr signatures over canonicalised payloads.

Used by the ledger to authenticate transactions: every node re-verifies the
signature of each transaction before accepting a block, mirroring how a real
Ethereum-style chain validates sender authenticity.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import canonical_json
from repro.crypto.keys import GENERATOR, KeyPair, ORDER, PRIME


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(commitment, response)``."""

    commitment: int
    response: int

    def to_dict(self) -> dict:
        return {"commitment": hex(self.commitment), "response": hex(self.response)}

    @staticmethod
    def from_dict(payload: dict) -> "Signature":
        return Signature(
            commitment=int(payload["commitment"], 16),
            response=int(payload["response"], 16),
        )


def _challenge(commitment: int, public_key: int, message: bytes) -> int:
    """Fiat–Shamir challenge binding the commitment, key and message."""
    material = f"{commitment:x}|{public_key:x}|".encode("utf-8") + message
    return int(hashlib.sha256(material).hexdigest(), 16) % ORDER


def _deterministic_nonce(private_key: int, message: bytes) -> int:
    """RFC-6979-style deterministic nonce so signing never needs fresh entropy."""
    key = private_key.to_bytes((private_key.bit_length() + 7) // 8 or 1, "big")
    digest = hmac.new(key, message, hashlib.sha256).digest()
    nonce = int.from_bytes(digest, "big") % (ORDER - 2)
    return nonce + 1


def sign(keypair: KeyPair, payload: Any) -> Signature:
    """Sign a JSON-serialisable payload with ``keypair``."""
    message = canonical_json(payload).encode("utf-8")
    nonce = _deterministic_nonce(keypair.private_key, message)
    commitment = pow(GENERATOR, nonce, PRIME)
    challenge = _challenge(commitment, keypair.public_key, message)
    response = (nonce + challenge * keypair.private_key) % ORDER
    return Signature(commitment=commitment, response=response)


def verify(public_key: int, payload: Any, signature: Signature) -> bool:
    """Verify ``signature`` over ``payload`` for ``public_key``."""
    message = canonical_json(payload).encode("utf-8")
    challenge = _challenge(signature.commitment, public_key, message)
    left = pow(GENERATOR, signature.response, PRIME)
    right = (signature.commitment * pow(public_key, challenge, PRIME)) % PRIME
    return left == right
