"""Canonical hashing of structured payloads.

Blocks, transactions and contract state snapshots are hashed from arbitrary
JSON-serialisable Python structures.  To make the hash deterministic across
runs and processes we serialise with sorted keys and explicit separators.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to a canonical JSON string.

    Keys are sorted and whitespace removed so the same logical value always
    yields the same byte string (and therefore the same hash).

    >>> canonical_json({"b": 1, "a": 2})
    '{"a":2,"b":1}'
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_json_default)


def _json_default(value: Any) -> Any:
    """Fallback serialiser for values ``json`` cannot encode natively."""
    if isinstance(value, Mapping):
        # Non-dict mappings (e.g. mappingproxy views) serialise as objects.
        return dict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, bytes):
        return value.hex()
    if hasattr(value, "to_dict"):
        return value.to_dict()
    raise TypeError(f"cannot canonicalise value of type {type(value).__name__}")


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def hash_payload(payload: Any) -> str:
    """Hash an arbitrary JSON-serialisable payload canonically.

    >>> hash_payload({"a": 1}) == hash_payload({"a": 1})
    True
    >>> hash_payload({"a": 1}) == hash_payload({"a": 2})
    False
    """
    return sha256_hex(canonical_json(payload).encode("utf-8"))


def hash_pair(left: str, right: str) -> str:
    """Hash the concatenation of two hex digests (Merkle tree node)."""
    return sha256_hex((left + right).encode("utf-8"))


def short_hash(payload: Any, length: int = 12) -> str:
    """A truncated hash useful for compact identifiers and display."""
    if length <= 0:
        raise ValueError("length must be positive")
    return hash_payload(payload)[:length]
