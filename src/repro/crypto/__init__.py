"""Cryptographic primitives used by the simulated ledger.

The module provides deterministic, dependency-free stand-ins for the
primitives a real blockchain deployment would use:

* :mod:`repro.crypto.hashing` — canonical SHA-256 hashing of structured data.
* :mod:`repro.crypto.merkle` — Merkle trees with membership proofs.
* :mod:`repro.crypto.keys` — Schnorr-style key pairs over a prime-order group.
* :mod:`repro.crypto.signatures` — signing and verification of payloads.

These are *simulation-grade*: they are honest implementations of the textbook
constructions, adequate for reproducing the paper's protocols, and are not
intended to resist a real adversary.
"""

from repro.crypto.hashing import sha256_hex, hash_payload, short_hash
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.keys import KeyPair, generate_keypair, address_from_public_key
from repro.crypto.signatures import Signature, sign, verify

__all__ = [
    "sha256_hex",
    "hash_payload",
    "short_hash",
    "MerkleTree",
    "MerkleProof",
    "KeyPair",
    "generate_keypair",
    "address_from_public_key",
    "Signature",
    "sign",
    "verify",
]
