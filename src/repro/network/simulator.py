"""Assembly of the simulated network.

A :class:`NetworkSimulator` owns the simulated clock, the transport, the
gossip mesh of blockchain nodes, and the registry of pairwise data channels.
The core system (:mod:`repro.core.system`) builds one simulator and attaches
the application-level peers (doctor, patient, researcher, ...) to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.config import LedgerConfig, NetworkConfig
from repro.contracts.base import Contract
from repro.ledger.block import Block
from repro.ledger.clock import SimClock
from repro.ledger.sharding import ShardRouter
from repro.ledger.transaction import Transaction
from repro.network.channels import ChannelRegistry
from repro.network.gossip import GossipProtocol
from repro.network.node import BlockchainNode
from repro.network.transport import SimTransport


class NetworkSimulator:
    """Clock + transport + blockchain nodes + pairwise data channels."""

    def __init__(self, ledger_config: LedgerConfig = LedgerConfig(),
                 network_config: NetworkConfig = NetworkConfig(),
                 contract_classes: Tuple[Type[Contract], ...] = ()):
        self.clock = SimClock()
        self.ledger_config = ledger_config
        self.network_config = network_config
        self.contract_classes = tuple(contract_classes)
        self.transport = SimTransport(self.clock, network_config)
        #: Shared routing of metadata ids to consensus lanes; the gossip
        #: layer uses it for per-shard tx-batch topics and the gateway for
        #: per-shard queue-depth metrics.
        self.router = ShardRouter(ledger_config.consensus_shards)
        self.gossip = GossipProtocol(self.transport, router=self.router)
        self.channels = ChannelRegistry(self.clock, latency=network_config.base_latency)

    # -------------------------------------------------------------------- nodes

    def add_node(self, name: str, is_miner: bool = False) -> BlockchainNode:
        """Create a blockchain node and attach it to the gossip mesh.

        A node added after blocks have already been produced first syncs its
        replica from an existing node, so late-joining peers observe the same
        contract state as everyone else.
        """
        existing = list(self.gossip.nodes)
        node = BlockchainNode(
            name=name,
            clock=self.clock,
            config=self.ledger_config,
            contract_classes=self.contract_classes,
            is_miner=is_miner,
            router=self.router,
        )
        if existing and existing[0].chain.height > 0:
            node.sync_with(existing[0])
        self.gossip.register_node(node)
        return node

    def node(self, name: str) -> BlockchainNode:
        return self.gossip.node(name)

    @property
    def nodes(self) -> Tuple[BlockchainNode, ...]:
        return self.gossip.nodes

    # -------------------------------------------------------------- transactions

    def submit_transaction(self, via_node: str, transaction: Transaction) -> str:
        """Submit a signed transaction through a trusted node and gossip it."""
        self.gossip.broadcast_transaction(via_node, transaction)
        return transaction.tx_hash

    def submit_transaction_batch(self, submissions: List[Tuple[str, Transaction]]) -> List[str]:
        """Submit many signed ``(via node, transaction)`` pairs in one gossip round.

        Each transaction is first ingested at its submitting peer's own node
        (keeping that peer's nonce accounting exact), then the whole batch is
        flooded as a single ``tx-batch`` message per link — one latency charge
        per link instead of one per transaction.  Used by the gateway's
        batched ledger commits.
        """
        if not submissions:
            return []
        for via_node, transaction in submissions:
            self.gossip.node(via_node).receive_transaction(transaction)
        origin = submissions[0][0]
        self.gossip.broadcast_transaction_batch(
            origin, [transaction for _via, transaction in submissions])
        return [transaction.tx_hash for _via, transaction in submissions]

    def mine(self, miner_name: Optional[str] = None) -> List[Block]:
        """Produce blocks from pending transactions and propagate them."""
        return self.gossip.mine_and_propagate(miner_name)

    def submit_and_mine(self, via_node: str, transaction: Transaction) -> List[Block]:
        """Submit one transaction and immediately mine it into a block."""
        self.submit_transaction(via_node, transaction)
        return self.mine()

    # -------------------------------------------------------------------- checks

    def in_consensus(self) -> bool:
        return self.gossip.in_consensus()

    def statistics(self) -> Dict[str, object]:
        """A summary of network and chain activity, used by benchmarks."""
        any_node = self.nodes[0] if self.nodes else None
        return {
            "now": self.clock.now(),
            "transport": self.transport.statistics,
            "channel_bytes": sum(c.bytes_transferred() for c in self.channels.channels),
            "chain_height": any_node.chain.height if any_node else 0,
            "chain_storage_bytes": any_node.chain.storage_bytes() if any_node else 0,
            "in_consensus": self.in_consensus(),
        }
