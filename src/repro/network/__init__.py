"""A simulated peer-to-peer network.

The paper's architecture (Fig. 2) needs three kinds of communication:

1. blockchain gossip — transactions and blocks propagate to every node;
2. contract notifications — peers learn that shared data they participate in
   was changed;
3. pairwise data channels — the actual shared data ("send updated data" /
   "request updated data") travels *only* between the two sharing peers,
   never through the chain or a third party.

Everything is simulated deterministically: a seeded transport applies
configurable latency and drop, and every delivered message is recorded so the
exposure benchmark (§V claim) can audit exactly which peer saw which data.

* :mod:`repro.network.message` — message envelopes.
* :mod:`repro.network.transport` — the seeded, logged transport.
* :mod:`repro.network.node` — blockchain nodes holding chain replicas.
* :mod:`repro.network.gossip` — transaction/block propagation.
* :mod:`repro.network.channels` — pairwise shared-data channels.
* :mod:`repro.network.simulator` — assembles clock, transport and nodes.
"""

from repro.network.message import Message
from repro.network.transport import SimTransport
from repro.network.node import BlockchainNode
from repro.network.gossip import GossipProtocol
from repro.network.channels import DataChannel, ChannelRegistry
from repro.network.simulator import NetworkSimulator

__all__ = [
    "Message",
    "SimTransport",
    "BlockchainNode",
    "GossipProtocol",
    "DataChannel",
    "ChannelRegistry",
    "NetworkSimulator",
]
