"""Transaction and block gossip.

A minimal flooding protocol: when a client submits a transaction it is
broadcast to every node; when the miner seals a block it is broadcast to
every node.  Nodes deduplicate by hash, so the simulation tolerates redundant
delivery the way a real gossip mesh does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ledger.block import Block
from repro.ledger.sharding import ShardRouter
from repro.ledger.transaction import Transaction
from repro.network.node import BlockchainNode
from repro.network.transport import SimTransport


class GossipProtocol:
    """Floods transactions and blocks to all registered nodes.

    With a sharded ledger pipeline (``router.num_shards > 1``) transaction
    batches are flooded on per-shard *topics*: one ``tx-batch`` message per
    shard per link, so a node (or, in a real deployment, a lane worker) can
    subscribe to just the shards it produces blocks for.  Message counts per
    topic are tracked in :attr:`topic_messages`.
    """

    def __init__(self, transport: SimTransport, router: Optional[ShardRouter] = None):
        self.transport = transport
        self.router = router
        self._nodes: Dict[str, BlockchainNode] = {}
        #: topic name -> gossip messages sent on it (``tx-batch`` when
        #: unsharded, ``tx-batch/shard-<n>`` per lane when sharded).
        self.topic_messages: Dict[str, int] = {}

    def register_node(self, node: BlockchainNode) -> None:
        """Attach a node to the gossip mesh."""
        self._nodes[node.name] = node
        self.transport.register(node.name, node.handle_message)

    @property
    def nodes(self) -> Tuple[BlockchainNode, ...]:
        return tuple(self._nodes.values())

    def node(self, name: str) -> BlockchainNode:
        return self._nodes[name]

    @property
    def miner_nodes(self) -> Tuple[BlockchainNode, ...]:
        return tuple(node for node in self._nodes.values() if node.is_miner)

    # ------------------------------------------------------------------ gossip

    def broadcast_transaction(self, origin: str, transaction: Transaction) -> int:
        """Gossip a transaction from ``origin`` to every other node."""
        if origin in self._nodes:
            self._nodes[origin].receive_transaction(transaction)
        messages = self.transport.broadcast(
            origin, "tx", transaction.to_dict(), exclude=()
        )
        self.transport.flush()
        return len(messages)

    def broadcast_transaction_batch(self, origin: str,
                                    transactions: Sequence[Transaction]) -> int:
        """Gossip a whole batch as one ``tx-batch`` message per peer link.

        The gateway's batched commit hands all of a batch's transactions over
        together: one message per link (instead of one per transaction) means
        one latency charge per link, and the receiving node ingests the batch
        through :meth:`BlockchainNode.receive_transactions` /
        :meth:`~repro.ledger.mempool.Mempool.submit_batch`.
        """
        transactions = list(transactions)
        if not transactions:
            return 0
        if origin in self._nodes:
            self._nodes[origin].receive_transactions(transactions)
        if self.router is not None and self.router.num_shards > 1:
            return self._broadcast_sharded_batch(origin, transactions)
        messages = self.transport.broadcast(
            origin, "tx-batch",
            {"transactions": [tx.to_dict() for tx in transactions]},
        )
        self.topic_messages["tx-batch"] = (
            self.topic_messages.get("tx-batch", 0) + len(messages))
        self.transport.flush()
        return len(messages)

    def _broadcast_sharded_batch(self, origin: str,
                                 transactions: Sequence[Transaction]) -> int:
        """Flood a batch split into per-shard topic messages.

        Receivers route each transaction through their own (identical)
        :class:`~repro.ledger.sharding.ShardRouter`; the ``shard`` field in
        the payload is the topic marker a selective subscriber keys on.
        """
        by_shard: Dict[int, List[Transaction]] = {}
        for tx in transactions:
            by_shard.setdefault(self.router.shard_of_transaction(tx), []).append(tx)
        total = 0
        for shard in sorted(by_shard):
            messages = self.transport.broadcast(
                origin, "tx-batch",
                {"shard": shard,
                 "transactions": [tx.to_dict() for tx in by_shard[shard]]},
            )
            topic = f"tx-batch/shard-{shard}"
            self.topic_messages[topic] = self.topic_messages.get(topic, 0) + len(messages)
            total += len(messages)
        self.transport.flush()
        return total

    def broadcast_block(self, origin: str, block: Block) -> int:
        """Gossip a sealed block from ``origin`` to every other node."""
        messages = self.transport.broadcast(origin, "block", block.to_dict())
        self.transport.flush()
        return len(messages)

    # ------------------------------------------------------------------ mining

    def mine_and_propagate(self, miner_name: Optional[str] = None) -> List[Block]:
        """Have a miner drain its mempool and gossip every block it seals.

        Draining proceeds interval by interval: a sharded miner seals one
        block per lane with pending work inside each simulated block
        interval, an unsharded miner exactly one (the seed behaviour).
        """
        miners = [self._nodes[miner_name]] if miner_name else list(self.miner_nodes)
        mined: List[Block] = []
        for node in miners:
            if node.miner is None:
                continue
            while True:
                blocks = node.miner.mine_interval()
                if not blocks:
                    break
                for block in blocks:
                    mined.append(block)
                    self.broadcast_block(node.name, block)
        return mined

    # ------------------------------------------------------------------ checks

    def in_consensus(self) -> bool:
        """True when every node's replica has the same height and state root."""
        nodes = list(self._nodes.values())
        if len(nodes) < 2:
            return True
        heights = {node.chain.height for node in nodes}
        roots = {node.state_root() for node in nodes}
        return len(heights) == 1 and len(roots) == 1
