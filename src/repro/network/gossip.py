"""Transaction and block gossip.

A minimal flooding protocol: when a client submits a transaction it is
broadcast to every node; when the miner seals a block it is broadcast to
every node.  Nodes deduplicate by hash, so the simulation tolerates redundant
delivery the way a real gossip mesh does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ledger.block import Block
from repro.ledger.transaction import Transaction
from repro.network.node import BlockchainNode
from repro.network.transport import SimTransport


class GossipProtocol:
    """Floods transactions and blocks to all registered nodes."""

    def __init__(self, transport: SimTransport):
        self.transport = transport
        self._nodes: Dict[str, BlockchainNode] = {}

    def register_node(self, node: BlockchainNode) -> None:
        """Attach a node to the gossip mesh."""
        self._nodes[node.name] = node
        self.transport.register(node.name, node.handle_message)

    @property
    def nodes(self) -> Tuple[BlockchainNode, ...]:
        return tuple(self._nodes.values())

    def node(self, name: str) -> BlockchainNode:
        return self._nodes[name]

    @property
    def miner_nodes(self) -> Tuple[BlockchainNode, ...]:
        return tuple(node for node in self._nodes.values() if node.is_miner)

    # ------------------------------------------------------------------ gossip

    def broadcast_transaction(self, origin: str, transaction: Transaction) -> int:
        """Gossip a transaction from ``origin`` to every other node."""
        if origin in self._nodes:
            self._nodes[origin].receive_transaction(transaction)
        messages = self.transport.broadcast(
            origin, "tx", transaction.to_dict(), exclude=()
        )
        self.transport.flush()
        return len(messages)

    def broadcast_transaction_batch(self, origin: str,
                                    transactions: Sequence[Transaction]) -> int:
        """Gossip a whole batch as one ``tx-batch`` message per peer link.

        The gateway's batched commit hands all of a batch's transactions over
        together: one message per link (instead of one per transaction) means
        one latency charge per link, and the receiving node ingests the batch
        through :meth:`BlockchainNode.receive_transactions` /
        :meth:`~repro.ledger.mempool.Mempool.submit_batch`.
        """
        transactions = list(transactions)
        if not transactions:
            return 0
        if origin in self._nodes:
            self._nodes[origin].receive_transactions(transactions)
        messages = self.transport.broadcast(
            origin, "tx-batch",
            {"transactions": [tx.to_dict() for tx in transactions]},
        )
        self.transport.flush()
        return len(messages)

    def broadcast_block(self, origin: str, block: Block) -> int:
        """Gossip a sealed block from ``origin`` to every other node."""
        messages = self.transport.broadcast(origin, "block", block.to_dict())
        self.transport.flush()
        return len(messages)

    # ------------------------------------------------------------------ mining

    def mine_and_propagate(self, miner_name: Optional[str] = None) -> List[Block]:
        """Have a miner drain its mempool and gossip every block it seals."""
        miners = [self._nodes[miner_name]] if miner_name else list(self.miner_nodes)
        mined: List[Block] = []
        for node in miners:
            if node.miner is None:
                continue
            while True:
                block = node.miner.mine_block()
                if block is None:
                    break
                mined.append(block)
                self.broadcast_block(node.name, block)
        return mined

    # ------------------------------------------------------------------ checks

    def in_consensus(self) -> bool:
        """True when every node's replica has the same height and state root."""
        nodes = list(self._nodes.values())
        if len(nodes) < 2:
            return True
        heights = {node.chain.height for node in nodes}
        roots = {node.state_root() for node in nodes}
        return len(heights) == 1 and len(roots) == 1
