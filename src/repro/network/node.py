"""Blockchain nodes.

Each node keeps its own chain replica, mempool and contract runtime.  Nodes
receive gossiped transactions and blocks over the transport; applying a block
re-executes its transactions locally, so every honest node reaches the same
world state — the consensus property the paper relies on ("each node will
conduct the smart contract locally").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.config import LedgerConfig
from repro.contracts.base import Contract
from repro.contracts.runtime import ContractRuntime
from repro.errors import InvalidBlockError, InvalidTransactionError
from repro.ledger.block import Block
from repro.ledger.chain import Blockchain
from repro.ledger.clock import SimClock
from repro.ledger.events import LogEntry
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner
from repro.ledger.sharding import ShardedMempool, ShardRouter
from repro.ledger.transaction import Transaction
from repro.network.message import Message


class BlockchainNode:
    """One full node of the permissioned network."""

    def __init__(self, name: str, clock: SimClock, config: LedgerConfig = LedgerConfig(),
                 contract_classes: Tuple[Type[Contract], ...] = (),
                 is_miner: bool = False, router: Optional[ShardRouter] = None):
        self.name = name
        self.clock = clock
        self.runtime = ContractRuntime()
        for contract_class in contract_classes:
            self.runtime.register_contract_class(contract_class)
        self.chain = Blockchain(config, executor=self.runtime)
        # consensus_shards == 1 keeps the plain single pool: the unsharded
        # pipeline stays byte-identical to the pre-sharding behaviour.  The
        # router is normally the simulator's shared instance so every node,
        # the gossip topics and the gateway metrics agree on lane routing.
        self.mempool = (
            ShardedMempool(router or ShardRouter(config.consensus_shards))
            if config.consensus_shards > 1 else Mempool()
        )
        self.is_miner = is_miner
        self.miner: Optional[Miner] = (
            Miner(self.chain, self.mempool, clock, proposer=name) if is_miner else None
        )
        self._event_subscribers: List[Callable[[LogEntry], None]] = []
        self.chain.events.subscribe(self._dispatch_event)
        self._seen_transactions: set = set()
        self._seen_blocks: set = set()

    # ---------------------------------------------------------------- messaging

    def handle_message(self, message: Message) -> None:
        """Transport entry point for gossiped transactions and blocks."""
        if message.kind == "tx":
            transaction = Transaction.from_dict(message.payload)
            self.receive_transaction(transaction)
        elif message.kind == "tx-batch":
            self.receive_transactions(
                Transaction.from_dict(payload)
                for payload in message.payload.get("transactions", ())
            )
        elif message.kind == "block":
            block = Block.from_dict(message.payload)
            self.receive_block(block)

    def handle_envelope(self, envelope) -> None:
        """Runtime-boundary entry point: dispatch a typed
        :class:`~repro.runtime.envelope.Envelope` as gossip.

        A node placed behind a :class:`~repro.runtime.transport.Transport`
        receives envelopes instead of :class:`Message` objects; the kinds
        and payload shapes are identical, so this adapter reuses
        :meth:`handle_message` and the envelope's ``sent_at`` timestamp.
        """
        self.handle_message(Message(
            sender=envelope.sender,
            recipient=self.name,
            kind=envelope.kind,
            payload=dict(envelope.payload or {}),
            sent_at=envelope.sent_at,
        ))

    def receive_transaction(self, transaction: Transaction) -> bool:
        """Add a gossiped transaction to the local mempool (idempotent)."""
        if transaction.tx_hash in self._seen_transactions:
            return False
        self._seen_transactions.add(transaction.tx_hash)
        try:
            self.mempool.submit(transaction)
            return True
        except InvalidTransactionError:
            return False

    def receive_transactions(self, transactions: Iterable[Transaction]) -> int:
        """Batch entry point for a gossiped ``tx-batch`` message (idempotent).

        Hands the unseen transactions to the mempool's batch submission, so
        one invalid transaction does not block the rest of the batch.
        Returns how many were newly accepted.
        """
        fresh = [tx for tx in transactions if tx.tx_hash not in self._seen_transactions]
        self._seen_transactions.update(tx.tx_hash for tx in fresh)
        accepted, _rejected = self.mempool.submit_batch(fresh)
        return len(accepted)

    def receive_block(self, block: Block) -> bool:
        """Validate and apply a gossiped block to the local chain replica."""
        if block.block_hash in self._seen_blocks:
            return False
        self._seen_blocks.add(block.block_hash)
        if block.number != self.chain.height + 1:
            # Out-of-order or already-known block; the simulation gossips in
            # order so anything else indicates a stale duplicate.
            return False
        try:
            self.chain.append_block(block)
        except InvalidBlockError:
            return False
        self.mempool.remove(block.transaction_hashes())
        return True

    def sync_with(self, peer: "BlockchainNode") -> int:
        """Catch up with a peer's replica by replaying its missing blocks.

        A node added after genesis (a hospital joining an existing sharing
        network) bootstraps this way; deterministic contract execution makes
        the replay reach the same state root as the peer.  Returns how many
        blocks were applied.
        """
        applied = 0
        for number in range(self.chain.height + 1, peer.chain.height + 1):
            block = peer.chain.block_by_number(number)
            self._seen_blocks.add(block.block_hash)
            self.chain.append_block(block)
            self.mempool.remove(block.transaction_hashes())
            applied += 1
        return applied

    # ------------------------------------------------------------------- events

    def _dispatch_event(self, entry: LogEntry) -> None:
        for subscriber in self._event_subscribers:
            subscriber(entry)

    def subscribe_events(self, callback: Callable[[LogEntry], None]) -> None:
        """Subscribe to contract events observed by this node."""
        self._event_subscribers.append(callback)

    # -------------------------------------------------------------------- state

    def state_root(self) -> str:
        return self.chain.state.state_root()

    def contract_at(self, address: str):
        return self.chain.state.contract_at(address)

    def static_call(self, contract_address: str, method: str, caller: Optional[str] = None,
                    **args):
        """Read-only contract query against this node's replica."""
        return self.runtime.static_call(
            self.chain.state, contract_address, method, caller=caller or self.name, **args
        )

    def __repr__(self) -> str:
        return f"BlockchainNode({self.name!r}, height={self.chain.height})"
