"""Message envelopes exchanged over the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

_MESSAGE_COUNTER = itertools.count(1)


@dataclass
class Message:
    """One point-to-point message.

    Attributes
    ----------
    sender / recipient:
        Logical peer names (e.g. ``"doctor"``) or node addresses.
    kind:
        Message type, e.g. ``"tx"``, ``"block"``, ``"data_request"``,
        ``"data_response"``, ``"notification"``.
    payload:
        Arbitrary JSON-serialisable content.
    sent_at / delivered_at:
        Simulated timestamps filled by the transport.
    dropped:
        True when the transport decided to drop the message.
    attempt:
        Delivery attempt number; a retransmission of a dropped message is a
        fresh envelope with ``attempt`` bumped.
    """

    sender: str
    recipient: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    dropped: bool = False
    attempt: int = 1
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    @property
    def latency(self) -> Optional[float]:
        """Delivery latency in simulated seconds (None if not delivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def size_bytes(self) -> int:
        """Approximate serialised size of the payload."""
        from repro.crypto.hashing import canonical_json

        return len(canonical_json(self.payload).encode("utf-8"))

    def to_dict(self) -> dict:
        return {
            "message_id": self.message_id,
            "sender": self.sender,
            "recipient": self.recipient,
            "kind": self.kind,
            "payload": dict(self.payload),
            "sent_at": self.sent_at,
            "delivered_at": self.delivered_at,
            "dropped": self.dropped,
            "attempt": self.attempt,
        }
