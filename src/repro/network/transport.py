"""The seeded, logged message transport.

Handlers are registered per peer name; :meth:`SimTransport.send` enqueues a
message and :meth:`SimTransport.flush` delivers pending messages in timestamp
order, applying latency and (optionally) message drops from a seeded RNG.
Every message — delivered or dropped — is kept in the transport log, which
the exposure benchmark audits.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.chaos import NULL_INJECTOR, RetryPolicy
from repro.config import NetworkConfig
from repro.errors import UnknownPeerError
from repro.ledger.clock import SimClock
from repro.network.message import Message

#: A handler receives the delivered message.
MessageHandler = Callable[[Message], None]


class SimTransport:
    """Delivers messages between registered peers with simulated latency.

    Chaos hooks (all default-off):

    * a :class:`~repro.chaos.FaultInjector` can drop messages
      (``transport.drop``), add latency (``transport.delay``) and open
      ``peer.crash`` windows during which a peer's *inbound* messages are
      parked in per-recipient FIFO order and replayed — reliably and in
      order, modelling restart catch-up — once the window closes;
    * a :class:`~repro.chaos.RetryPolicy` turns the silent-loss drop path
      into retransmission: a dropped message is re-enqueued as a fresh
      envelope with a deterministic backoff until the policy's attempt
      budget is spent.
    """

    def __init__(self, clock: SimClock, config: NetworkConfig = NetworkConfig()):
        self.clock = clock
        self.config = config
        self._rng = random.Random(config.seed)
        self._handlers: Dict[str, MessageHandler] = {}
        self._queue: List[Message] = []
        self._log: List[Message] = []
        self._delivered_count = 0
        self._dropped_count = 0
        self.injector = NULL_INJECTOR
        self.retry_policy: Optional[RetryPolicy] = None
        self._retry_rng = random.Random(config.seed + 0x5EED)
        self._parked: Dict[str, List[Message]] = {}
        self._retransmit_count = 0
        self._lost_count = 0
        self._wire_codec = None
        self._wire_messages = 0
        self._wire_bytes = 0

    def configure_chaos(self, injector=None,
                        retry_policy: Optional[RetryPolicy] = None) -> None:
        """Attach a fault injector and/or retransmission policy."""
        if injector is not None:
            self.injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy

    def configure_wire_codec(self, codec) -> None:
        """Round-trip every delivered payload through a wire codec.

        ``codec`` is a :class:`~repro.runtime.codec.WireCodec` or registry
        name (``None`` disables the seam — the default, which leaves
        delivery byte-identical to the seed).  With a codec attached, each
        payload is encoded and decoded at the delivery boundary, proving
        the traffic fits the codec's wire model and measuring its encoded
        size (``wire_messages``/``wire_bytes`` in :attr:`statistics`)
        before any peer is moved out of process.
        """
        if codec is None:
            self._wire_codec = None
            return
        from repro.runtime.codec import get_codec

        self._wire_codec = get_codec(codec)

    # ------------------------------------------------------------- registration

    def register(self, name: str, handler: MessageHandler) -> None:
        """Register (or replace) the handler for peer ``name``."""
        self._handlers[name] = handler

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(self._handlers)

    # ------------------------------------------------------------------ sending

    def send(self, sender: str, recipient: str, kind: str,
             payload: Optional[Mapping[str, Any]] = None) -> Message:
        """Queue a message for delivery; returns the envelope."""
        if recipient not in self._handlers:
            raise UnknownPeerError(f"unknown recipient {recipient!r}")
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=dict(payload or {}),
            sent_at=self.clock.now(),
        )
        self._queue.append(message)
        self._log.append(message)
        return message

    def broadcast(self, sender: str, kind: str, payload: Optional[Mapping[str, Any]] = None,
                  exclude: Tuple[str, ...] = ()) -> List[Message]:
        """Send the same message to every registered peer except ``sender``/``exclude``."""
        messages = []
        for name in self._handlers:
            if name == sender or name in exclude:
                continue
            messages.append(self.send(sender, name, kind, payload))
        return messages

    # ----------------------------------------------------------------- delivery

    def _latency_for(self, message: Message) -> float:
        jitter = self._rng.uniform(0, self.config.latency_jitter)
        return self.config.base_latency + jitter

    def flush(self, advance_clock: bool = True) -> int:
        """Deliver every queued message in order; returns how many were delivered.

        Delivery of one message may enqueue new ones (a handler replying);
        those are delivered too, so a call to ``flush`` runs the network to
        quiescence.  Messages to a peer inside a ``peer.crash`` window are
        parked rather than delivered; they do not count as delivered until a
        later flush finds the window closed and replays them in order.
        """
        delivered = 0
        while True:
            if not self._queue and not self._release_parked():
                break
            while self._queue:
                message = self._queue.pop(0)
                if (message.attempt > 0
                        and self.injector.active("peer.crash",
                                                 message.recipient)):
                    # The recipient's replica is offline: park the message
                    # for in-order replay when the crash window closes.
                    self._parked.setdefault(message.recipient, []).append(message)
                    continue
                if message.attempt > 0 and self._should_drop(message):
                    message.dropped = True
                    self._dropped_count += 1
                    self._retransmit(message, advance_clock)
                    continue
                latency = self._latency_for(message)
                if message.attempt > 0:
                    latency += self.injector.delay("transport.delay",
                                                   message.recipient)
                if advance_clock:
                    self.clock.advance(latency)
                message.delivered_at = self.clock.now()
                handler = self._handlers.get(message.recipient)
                if handler is None:
                    raise UnknownPeerError(f"recipient {message.recipient!r} vanished")
                if self._wire_codec is not None:
                    # The in-process rehearsal of a real wire: the handler
                    # sees exactly what a remote peer would decode.
                    data = self._wire_codec.encode(message.payload)
                    self._wire_messages += 1
                    self._wire_bytes += len(data)
                    message.payload = self._wire_codec.decode(data)
                handler(message)
                delivered += 1
                self._delivered_count += 1
        return delivered

    def _should_drop(self, message: Message) -> bool:
        if (self.config.drop_rate > 0
                and self._rng.random() < self.config.drop_rate):
            return True
        return self.injector.should("transport.drop", message.recipient)

    def _retransmit(self, message: Message, advance_clock: bool) -> None:
        """Re-enqueue a dropped message as a fresh attempt (or give up).

        Without a retry policy this is the seed's silent-loss behaviour.
        The backoff advances the sim clock, so retransmission schedules are
        deterministic and visible in delivery timestamps.
        """
        policy = self.retry_policy
        if policy is None or message.attempt >= policy.max_attempts:
            if policy is not None:
                self._lost_count += 1
            return
        backoff = policy.backoff(message.attempt, self._retry_rng)
        if advance_clock:
            self.clock.advance(backoff)
        clone = Message(
            sender=message.sender,
            recipient=message.recipient,
            kind=message.kind,
            payload=dict(message.payload),
            sent_at=self.clock.now(),
            attempt=message.attempt + 1,
        )
        self._queue.append(clone)
        self._log.append(clone)
        self._retransmit_count += 1

    def _release_parked(self) -> bool:
        """Replay parked messages for peers whose crash window has closed.

        Replayed messages are marked ``attempt=0``: restart catch-up is a
        reliable, in-order channel (like ``BlockchainNode.sync_with``), so
        they skip the drop/delay/crash probes — a replayed block that
        dropped behind its successor would be rejected as out of order and
        lost for good.
        """
        released = False
        for recipient in list(self._parked):
            if self.injector.active("peer.crash", recipient):
                continue
            replay = self._parked.pop(recipient)
            for message in replay:
                message.attempt = 0
            self._queue = replay + self._queue
            released = bool(replay) or released
        return released

    # --------------------------------------------------------------------- log

    @property
    def log(self) -> Tuple[Message, ...]:
        """Every message ever sent through this transport."""
        return tuple(self._log)

    @property
    def statistics(self) -> Dict[str, Any]:
        stats = {
            "sent": len(self._log),
            "delivered": self._delivered_count,
            "dropped": self._dropped_count,
            "pending": len(self._queue),
            "retransmits": self._retransmit_count,
            "lost": self._lost_count,
            "parked": sum(len(v) for v in self._parked.values()),
        }
        if self._wire_codec is not None:
            # Only surfaced when the seam is on, so seed-era callers that
            # compare the full dict see exactly the keys they always did.
            stats["wire_codec"] = self._wire_codec.name
            stats["wire_messages"] = self._wire_messages
            stats["wire_bytes"] = self._wire_bytes
        return stats

    def messages_seen_by(self, peer: str) -> Tuple[Message, ...]:
        """Messages delivered to ``peer`` (what that peer has been exposed to)."""
        return tuple(m for m in self._log if m.recipient == peer and m.delivered_at is not None)

    def messages_of_kind(self, kind: str) -> Tuple[Message, ...]:
        return tuple(m for m in self._log if m.kind == kind)

    def bytes_transferred(self) -> int:
        """Total payload bytes of delivered messages."""
        return sum(m.size_bytes() for m in self._log if m.delivered_at is not None)
