"""The seeded, logged message transport.

Handlers are registered per peer name; :meth:`SimTransport.send` enqueues a
message and :meth:`SimTransport.flush` delivers pending messages in timestamp
order, applying latency and (optionally) message drops from a seeded RNG.
Every message — delivered or dropped — is kept in the transport log, which
the exposure benchmark audits.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.config import NetworkConfig
from repro.errors import UnknownPeerError
from repro.ledger.clock import SimClock
from repro.network.message import Message

#: A handler receives the delivered message.
MessageHandler = Callable[[Message], None]


class SimTransport:
    """Delivers messages between registered peers with simulated latency."""

    def __init__(self, clock: SimClock, config: NetworkConfig = NetworkConfig()):
        self.clock = clock
        self.config = config
        self._rng = random.Random(config.seed)
        self._handlers: Dict[str, MessageHandler] = {}
        self._queue: List[Message] = []
        self._log: List[Message] = []
        self._delivered_count = 0
        self._dropped_count = 0

    # ------------------------------------------------------------- registration

    def register(self, name: str, handler: MessageHandler) -> None:
        """Register (or replace) the handler for peer ``name``."""
        self._handlers[name] = handler

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(self._handlers)

    # ------------------------------------------------------------------ sending

    def send(self, sender: str, recipient: str, kind: str,
             payload: Optional[Mapping[str, Any]] = None) -> Message:
        """Queue a message for delivery; returns the envelope."""
        if recipient not in self._handlers:
            raise UnknownPeerError(f"unknown recipient {recipient!r}")
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=dict(payload or {}),
            sent_at=self.clock.now(),
        )
        self._queue.append(message)
        self._log.append(message)
        return message

    def broadcast(self, sender: str, kind: str, payload: Optional[Mapping[str, Any]] = None,
                  exclude: Tuple[str, ...] = ()) -> List[Message]:
        """Send the same message to every registered peer except ``sender``/``exclude``."""
        messages = []
        for name in self._handlers:
            if name == sender or name in exclude:
                continue
            messages.append(self.send(sender, name, kind, payload))
        return messages

    # ----------------------------------------------------------------- delivery

    def _latency_for(self, message: Message) -> float:
        jitter = self._rng.uniform(0, self.config.latency_jitter)
        return self.config.base_latency + jitter

    def flush(self, advance_clock: bool = True) -> int:
        """Deliver every queued message in order; returns how many were delivered.

        Delivery of one message may enqueue new ones (a handler replying);
        those are delivered too, so a call to ``flush`` runs the network to
        quiescence.
        """
        delivered = 0
        while self._queue:
            message = self._queue.pop(0)
            if self.config.drop_rate > 0 and self._rng.random() < self.config.drop_rate:
                message.dropped = True
                self._dropped_count += 1
                continue
            latency = self._latency_for(message)
            if advance_clock:
                self.clock.advance(latency)
            message.delivered_at = self.clock.now()
            handler = self._handlers.get(message.recipient)
            if handler is None:
                raise UnknownPeerError(f"recipient {message.recipient!r} vanished")
            handler(message)
            delivered += 1
            self._delivered_count += 1
        return delivered

    # --------------------------------------------------------------------- log

    @property
    def log(self) -> Tuple[Message, ...]:
        """Every message ever sent through this transport."""
        return tuple(self._log)

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "sent": len(self._log),
            "delivered": self._delivered_count,
            "dropped": self._dropped_count,
            "pending": len(self._queue),
        }

    def messages_seen_by(self, peer: str) -> Tuple[Message, ...]:
        """Messages delivered to ``peer`` (what that peer has been exposed to)."""
        return tuple(m for m in self._log if m.recipient == peer and m.delivered_at is not None)

    def messages_of_kind(self, kind: str) -> Tuple[Message, ...]:
        return tuple(m for m in self._log if m.kind == kind)

    def bytes_transferred(self) -> int:
        """Total payload bytes of delivered messages."""
        return sum(m.size_bytes() for m in self._log if m.delivered_at is not None)
