"""Pairwise shared-data channels.

The paper insists that "data transfer only exists between sharing peers" and
that modifications on data shared by two nodes are never disclosed to a third
party.  A :class:`DataChannel` is that pairwise pipe: it can carry a data
request, a full shared-table snapshot, or a row-level diff — and it records
everything it carried so exposure can be audited per channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ChannelClosedError, UnknownPeerError
from repro.ledger.clock import SimClock
from repro.relational.diff import TableDiff
from repro.relational.table import Table


@dataclass
class ChannelTransfer:
    """One payload carried by a channel."""

    sender: str
    recipient: str
    kind: str                      # "request" | "snapshot" | "diff"
    shared_table: str
    payload: Dict[str, Any]
    timestamp: float
    size_bytes: int


class DataChannel:
    """A bidirectional channel between exactly two sharing peers."""

    def __init__(self, peer_a: str, peer_b: str, clock: SimClock, latency: float = 0.05):
        self.peers = frozenset({peer_a, peer_b})
        if len(self.peers) != 2:
            raise UnknownPeerError("a data channel needs two distinct peers")
        self.clock = clock
        self.latency = latency
        self.open = True
        self._transfers: List[ChannelTransfer] = []

    def _check(self, sender: str, recipient: str) -> None:
        if not self.open:
            raise ChannelClosedError("the data channel has been closed")
        if sender not in self.peers or recipient not in self.peers:
            raise UnknownPeerError(
                f"peers {sender!r}/{recipient!r} do not both belong to this channel"
            )

    def _record(self, sender: str, recipient: str, kind: str, shared_table: str,
                payload: Mapping[str, Any]) -> ChannelTransfer:
        from repro.crypto.hashing import canonical_json

        self.clock.advance(self.latency)
        transfer = ChannelTransfer(
            sender=sender,
            recipient=recipient,
            kind=kind,
            shared_table=shared_table,
            payload=dict(payload),
            timestamp=self.clock.now(),
            size_bytes=len(canonical_json(dict(payload)).encode("utf-8")),
        )
        self._transfers.append(transfer)
        return transfer

    # ------------------------------------------------------------------- sends

    def request_data(self, sender: str, recipient: str, shared_table: str,
                     since_update: Optional[int] = None) -> ChannelTransfer:
        """Ask the other peer for the newest contents of a shared table."""
        self._check(sender, recipient)
        return self._record(sender, recipient, "request", shared_table,
                            {"shared_table": shared_table, "since_update": since_update})

    def send_snapshot(self, sender: str, recipient: str, table: Table) -> ChannelTransfer:
        """Send a full snapshot of the shared table."""
        self._check(sender, recipient)
        return self._record(sender, recipient, "snapshot", table.name, table.to_dict())

    def send_diff(self, sender: str, recipient: str, diff: TableDiff) -> ChannelTransfer:
        """Send only the row-level changes of the shared table."""
        self._check(sender, recipient)
        return self._record(sender, recipient, "diff", diff.table_name, diff.to_dict())

    def close(self) -> None:
        self.open = False

    # ----------------------------------------------------------------- queries

    @property
    def transfers(self) -> Tuple[ChannelTransfer, ...]:
        return tuple(self._transfers)

    def bytes_transferred(self) -> int:
        return sum(t.size_bytes for t in self._transfers)

    def tables_seen_by(self, peer: str) -> Tuple[str, ...]:
        """Shared tables whose contents were delivered to ``peer`` over this channel."""
        seen = []
        for transfer in self._transfers:
            if transfer.recipient == peer and transfer.kind in ("snapshot", "diff"):
                if transfer.shared_table not in seen:
                    seen.append(transfer.shared_table)
        return tuple(seen)


class ChannelRegistry:
    """All pairwise channels of the system, keyed by the unordered peer pair."""

    def __init__(self, clock: SimClock, latency: float = 0.05):
        self.clock = clock
        self.latency = latency
        self._channels: Dict[frozenset, DataChannel] = {}

    def channel_between(self, peer_a: str, peer_b: str) -> DataChannel:
        """Return (creating if needed) the channel between two peers."""
        key = frozenset({peer_a, peer_b})
        if len(key) != 2:
            raise UnknownPeerError("a data channel needs two distinct peers")
        if key not in self._channels:
            self._channels[key] = DataChannel(peer_a, peer_b, self.clock, self.latency)
        return self._channels[key]

    def has_channel(self, peer_a: str, peer_b: str) -> bool:
        return frozenset({peer_a, peer_b}) in self._channels

    @property
    def channels(self) -> Tuple[DataChannel, ...]:
        return tuple(self._channels.values())

    def all_transfers(self) -> Tuple[ChannelTransfer, ...]:
        transfers: List[ChannelTransfer] = []
        for channel in self._channels.values():
            transfers.extend(channel.transfers)
        return tuple(sorted(transfers, key=lambda t: t.timestamp))

    def exposure_report(self) -> Dict[str, Tuple[str, ...]]:
        """For each peer, the shared tables whose data it received over any channel."""
        report: Dict[str, List[str]] = {}
        for channel in self._channels.values():
            for peer in channel.peers:
                for table in channel.tables_seen_by(peer):
                    report.setdefault(peer, [])
                    if table not in report[peer]:
                        report[peer].append(table)
        return {peer: tuple(tables) for peer, tables in report.items()}
