"""Synthetic workloads.

The paper defers experiments on real patient data to future work; the
reproduction substitutes synthetic, trivially de-identified records with the
paper's exact schema, plus generators for update streams and larger peer
topologies used by the throughput and scaling benchmarks.
"""

from repro.workloads.generator import MedicalRecordGenerator
from repro.workloads.updates import UpdateEvent, UpdateStreamGenerator
from repro.workloads.topology import TopologySpec, build_topology_system
from repro.workloads.traffic import (
    TenantProfile,
    TimedRequest,
    TrafficGenerator,
    default_tenant_profiles,
)

__all__ = [
    "MedicalRecordGenerator",
    "UpdateEvent",
    "UpdateStreamGenerator",
    "TopologySpec",
    "build_topology_system",
    "TenantProfile",
    "TimedRequest",
    "TrafficGenerator",
    "default_tenant_profiles",
]
