"""Multi-tenant open-loop traffic for the gateway.

An open-loop generator models tenants that submit requests on their own
schedule regardless of how fast the system answers — the arrival process a
serving layer actually faces.  Each :class:`TenantProfile` describes one
tenant's rate and read/write mix; :class:`TrafficGenerator` turns a set of
profiles into a deterministic, time-ordered stream of
:class:`TimedRequest`'s that a load test replays against the gateway.

:func:`replay_open_loop` replays such a trace through the *async* transport:
every arrival is admitted at its simulated arrival time without awaiting the
response, so the commit pump's consensus rounds interleave with admission —
the open-loop behaviour a synchronous driver cannot produce.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.system import MedicalDataSharingSystem
from repro.gateway.requests import GatewayRequest, ReadViewRequest, UpdateEntryRequest
from repro.workloads.updates import UpdateStreamGenerator


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape.

    ``request_rate`` is in requests per simulated second (open loop);
    ``read_fraction`` is the probability a request is a view read rather than
    an entry update; ``metadata_ids`` restricts the tenant to some of its
    agreements (default: all the peer participates in).
    """

    peer: str
    request_rate: float = 1.0
    read_fraction: float = 0.5
    metadata_ids: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        object.__setattr__(self, "metadata_ids", tuple(self.metadata_ids))


@dataclass(frozen=True)
class TimedRequest:
    """One request with its open-loop arrival time (simulated seconds)."""

    arrival_time: float
    tenant: str
    request: GatewayRequest

    def to_dict(self) -> dict:
        return {"arrival_time": self.arrival_time, "tenant": self.tenant,
                "request": self.request.to_dict()}


class TrafficGenerator:
    """Deterministic open-loop request streams over a sharing system."""

    def __init__(self, system: MedicalDataSharingSystem, seed: int = 23):
        self.system = system
        self.seed = seed
        self._updates = UpdateStreamGenerator(system, seed=seed)

    def _tenant_tables(self, profile: TenantProfile) -> Tuple[str, ...]:
        tables = profile.metadata_ids or self.system.peer(profile.peer).agreement_ids
        if not tables:
            raise ValueError(f"tenant {profile.peer!r} participates in no agreement")
        return tuple(tables)

    def open_loop(self, tenants: Sequence[TenantProfile], duration: float,
                  start_time: float = 0.0) -> List[TimedRequest]:
        """Generate every tenant's arrivals over ``duration`` simulated seconds.

        Inter-arrival times are exponential (Poisson arrivals) from a
        per-tenant seeded stream, so the merged trace is bursty and
        deterministic.  The result is sorted by arrival time — replay it in
        order, advancing the simulated clock to each arrival.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        arrivals: List[TimedRequest] = []
        for profile in tenants:
            # A string seed hashes deterministically (unlike tuples under
            # per-process hash randomisation), keeping traces reproducible.
            rng = random.Random(f"{self.seed}:{profile.peer}")
            tables = self._tenant_tables(profile)
            now = start_time
            while True:
                now += rng.expovariate(profile.request_rate)
                if now >= start_time + duration:
                    break
                metadata_id = tables[rng.randrange(len(tables))]
                if rng.random() < profile.read_fraction:
                    request: GatewayRequest = ReadViewRequest(metadata_id)
                else:
                    event = self._updates.event_for(metadata_id, peer=profile.peer)
                    request = UpdateEntryRequest(metadata_id=metadata_id,
                                                 key=event.key, updates=event.updates)
                arrivals.append(TimedRequest(arrival_time=now, tenant=profile.peer,
                                             request=request))
        arrivals.sort(key=lambda item: (item.arrival_time, item.tenant))
        return arrivals


async def replay_open_loop(arrivals: Sequence[TimedRequest],
                           submit: Callable[[TimedRequest], "asyncio.Future"],
                           clock) -> List["asyncio.Future"]:
    """Replay a timed trace open-loop through an async transport.

    For each arrival the simulated clock is advanced to its arrival time and
    ``submit`` is called *without awaiting the returned future* — exactly how
    an open-loop tenant behaves: it sends on schedule whether or not earlier
    requests have finished.  A cooperative yield after every admission lets
    the commit pump (and any in-flight executor commit completing) run
    between arrivals.  Returns the response futures in arrival order; gather
    them (typically after ``await gateway.drain()``) for the responses.
    """
    futures: List["asyncio.Future"] = []
    for timed in arrivals:
        clock.advance_to(timed.arrival_time)
        futures.append(submit(timed))
        await asyncio.sleep(0)
    return futures


def default_tenant_profiles(system: MedicalDataSharingSystem,
                            request_rate: float = 1.0,
                            read_fraction: float = 0.5,
                            roles: Tuple[str, ...] = ("Patient",)) -> List[TenantProfile]:
    """One profile per peer of the given roles (the typical loadtest shape:
    every patient is a tenant hammering its own shared table)."""
    profiles = []
    for peer in system.peers:
        if peer.role in roles and peer.agreement_ids:
            profiles.append(TenantProfile(peer=peer.name, request_rate=request_rate,
                                          read_fraction=read_fraction))
    return profiles
