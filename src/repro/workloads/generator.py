"""Synthetic medical-record generation.

Records follow the paper's a0..a6 schema.  Values are synthetic but shaped
like the paper's examples (medication names, dosage phrases, mechanism
labels), so examples and benchmark output stay readable.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import FULL_RECORD_COLUMNS

_MEDICATIONS = (
    "Ibuprofen", "Wellbutrin", "Amoxicillin", "Metformin", "Lisinopril",
    "Atorvastatin", "Omeprazole", "Amlodipine", "Gabapentin", "Sertraline",
    "Levothyroxine", "Azithromycin", "Hydrochlorothiazide", "Prednisone",
    "Citalopram", "Fluoxetine", "Tramadol", "Trazodone", "Clopidogrel",
    "Montelukast",
)

_CITIES = (
    "Sapporo", "Osaka", "Tokyo", "Kyoto", "Nagoya", "Fukuoka", "Sendai",
    "Hiroshima", "Yokohama", "Kobe", "Nara", "Kanazawa",
)

_DOSAGE_TEMPLATES = (
    "one tablet every {h}h",
    "{mg} mg twice daily",
    "{mg} mg once daily",
    "two tablets every {h}h",
    "{mg} mg every morning",
)


class MedicalRecordGenerator:
    """Deterministic generator of full medical records (a0..a6)."""

    def __init__(self, seed: int = 42, first_patient_id: int = 188):
        self._rng = random.Random(seed)
        self._next_patient_id = first_patient_id

    def _dosage(self) -> str:
        template = self._rng.choice(_DOSAGE_TEMPLATES)
        return template.format(h=self._rng.choice((4, 6, 8, 12)),
                               mg=self._rng.choice((50, 100, 200, 250, 500)))

    def record(self, patient_id: Optional[int] = None,
               medication: Optional[str] = None) -> Dict[str, object]:
        """Generate one full record."""
        if patient_id is None:
            patient_id = self._next_patient_id
            self._next_patient_id += 1
        medication = medication or self._rng.choice(_MEDICATIONS)
        clinical_index = self._rng.randrange(1, 10_000)
        mechanism_index = _MEDICATIONS.index(medication) + 1 if medication in _MEDICATIONS \
            else self._rng.randrange(100, 999)
        return {
            "patient_id": patient_id,
            "medication_name": medication,
            "clinical_data": f"CliD{clinical_index}",
            "address": self._rng.choice(_CITIES),
            "dosage": self._dosage(),
            "mechanism_of_action": f"MeA{mechanism_index}",
            "mode_of_action": f"MoA{mechanism_index}",
        }

    def records(self, count: int, distinct_medications: Optional[int] = None) -> List[Dict[str, object]]:
        """Generate ``count`` records, optionally bounding the medication variety.

        Bounding the variety makes the functional dependency medication →
        mechanism realistic for the D23/D32 view (many patients per
        medication).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        medications: Sequence[str] = _MEDICATIONS
        if distinct_medications is not None:
            medications = _MEDICATIONS[:max(1, min(distinct_medications, len(_MEDICATIONS)))]
        generated = []
        for _ in range(count):
            generated.append(self.record(medication=self._rng.choice(medications)))
        return generated

    @staticmethod
    def column_names() -> Tuple[str, ...]:
        return FULL_RECORD_COLUMNS
