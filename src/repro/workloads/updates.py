"""Update-stream generation.

Benchmarks need streams of shared-data operations with a controllable mix
(which peer updates, which attribute, how often conflicting updates hit the
same shared table).  :class:`UpdateStreamGenerator` produces those streams
deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.sharing import SharingAgreement
from repro.core.system import MedicalDataSharingSystem


@dataclass(frozen=True)
class UpdateEvent:
    """One intended shared-data update."""

    peer: str
    metadata_id: str
    key: Tuple[object, ...]
    updates: Dict[str, object]

    def to_dict(self) -> dict:
        return {
            "peer": self.peer,
            "metadata_id": self.metadata_id,
            "key": list(self.key),
            "updates": dict(self.updates),
        }


class UpdateStreamGenerator:
    """Generates streams of valid (permission-respecting) update events."""

    def __init__(self, system: MedicalDataSharingSystem, seed: int = 17):
        self.system = system
        self._rng = random.Random(seed)
        self._counter = 0

    def _writable_attributes(self, agreement: SharingAgreement, peer: str) -> Tuple[str, ...]:
        """Attributes ``peer`` may update through ``agreement``, excluding keys.

        Two kinds of columns are excluded:

        * the view's own alignment key (changing it is a row rename, not an
          entry-level field update);
        * columns that act as the alignment key of *another* shared view the
          same peer derives from the same base table — renaming such a column
          cannot be propagated losslessly through that functional view (the
          classic view-update limitation), so a realistic workload avoids it.
        """
        role = agreement.role_of(peer)
        spec = agreement.definition_for(peer).view_spec
        excluded = set(spec.view_key)
        peer_object = self.system.peer(peer)
        for other_id in peer_object.agreements_sharing_source(spec.source_table):
            if other_id == agreement.metadata_id:
                continue
            other_spec = peer_object.agreement(other_id).definition_for(peer).view_spec
            excluded.update(other_spec.view_key)
        return tuple(
            attribute for attribute in agreement.writable_columns(role)
            if attribute not in excluded
        )

    def event_for(self, metadata_id: str, peer: Optional[str] = None,
                  attribute: Optional[str] = None) -> UpdateEvent:
        """Build one update event targeting ``metadata_id``.

        The peer and attribute are chosen (seeded-randomly when omitted) such
        that the contract will accept the update, so throughput benchmarks
        measure the protocol rather than a stream of rejections.
        """
        agreement = self.system.agreement(metadata_id)
        candidates = []
        for candidate in agreement.peers:
            writable = self._writable_attributes(agreement, candidate)
            if writable:
                candidates.append((candidate, writable))
        if not candidates:
            raise ValueError(f"no peer can write any attribute of {metadata_id!r}")
        if peer is None:
            peer, writable = candidates[self._rng.randrange(len(candidates))]
        else:
            match = [entry for entry in candidates if entry[0] == peer]
            if not match:
                raise ValueError(f"peer {peer!r} cannot write any attribute of {metadata_id!r}")
            writable = match[0][1]
        if attribute is None:
            attribute = writable[self._rng.randrange(len(writable))]
        shared = self.system.peer(peer).shared_table(metadata_id)
        if len(shared) == 0:
            raise ValueError(f"shared table {metadata_id!r} is empty on peer {peer!r}")
        rows = list(shared)
        row = rows[self._rng.randrange(len(rows))]
        key = row.key(shared.schema.primary_key)
        self._counter += 1
        return UpdateEvent(
            peer=peer,
            metadata_id=metadata_id,
            key=key,
            updates={attribute: f"updated-{attribute}-{self._counter}"},
        )

    def stream(self, count: int, metadata_ids: Optional[Sequence[str]] = None,
               conflict_fraction: float = 0.0) -> List[UpdateEvent]:
        """Generate ``count`` events across the given shared tables.

        ``conflict_fraction`` is the fraction of events that intentionally
        target the same shared table as the previous event (used by the
        serialisation ablation, E9).
        """
        if not 0.0 <= conflict_fraction <= 1.0:
            raise ValueError("conflict_fraction must be in [0, 1]")
        metadata_ids = list(metadata_ids or self.system.agreement_ids)
        if not metadata_ids:
            raise ValueError("the system has no established agreements")
        events: List[UpdateEvent] = []
        previous_id: Optional[str] = None
        for _ in range(count):
            if previous_id is not None and self._rng.random() < conflict_fraction:
                metadata_id = previous_id
            else:
                metadata_id = metadata_ids[self._rng.randrange(len(metadata_ids))]
            events.append(self.event_for(metadata_id))
            previous_id = metadata_id
        return events
