"""Larger peer topologies.

The paper's scenario has three peers; the motivation section talks about
hospitals, many patients and researchers.  :func:`build_topology_system`
builds a hub topology with one (or more) doctors, N patients and M
researchers, each with realistic local tables and pairwise sharing
agreements, so benchmarks can scale the number of agreements and concurrent
updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bx.dsl import ViewSpec
from repro.config import SystemConfig
from repro.core.records import (
    doctor_schema,
    patient_schema,
    researcher_schema,
    schema_for_attributes,
)
from repro.core.sharing import SharingAgreement
from repro.core.system import MedicalDataSharingSystem
from repro.relational.predicates import Eq
from repro.workloads.generator import MedicalRecordGenerator


@dataclass(frozen=True)
class TopologySpec:
    """Shape of a generated sharing network.

    ``first_patient_id`` sets the base of the sequential patient-id range;
    benchmarks that exercise consensus sharding pick a base whose metadata
    ids spread evenly over the shard hash.
    """

    patients: int = 5
    researchers: int = 1
    distinct_medications: int = 8
    seed: int = 42
    first_patient_id: int = 188

    def __post_init__(self) -> None:
        if self.patients < 1:
            raise ValueError("a topology needs at least one patient")
        if self.researchers < 0:
            raise ValueError("researchers must be non-negative")
        if self.distinct_medications < 1:
            raise ValueError("distinct_medications must be at least 1")
        if self.first_patient_id < 0:
            raise ValueError("first_patient_id must be non-negative")


def _patient_agreement(patient_name: str, patient_id: int, metadata_id: str) -> SharingAgreement:
    shared_columns = ("patient_id", "medication_name", "clinical_data", "dosage")
    patient_spec = ViewSpec(source_table="D1", view_name=f"D13_{patient_id}",
                            columns=shared_columns, view_key=("patient_id",))
    doctor_spec = ViewSpec(source_table="D3", view_name=f"D31_{patient_id}",
                           columns=shared_columns, view_key=("patient_id",),
                           where=Eq("patient_id", patient_id))
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
        peer_b=patient_name, role_b="Patient", spec_b=patient_spec,
        write_permission={
            "patient_id": ("Doctor",),
            "medication_name": ("Doctor",),
            "dosage": ("Doctor",),
            "clinical_data": ("Patient", "Doctor"),
        },
        authority_role="Doctor",
        initiator="doctor",
    )


def _researcher_agreement(researcher_name: str, metadata_id: str) -> SharingAgreement:
    shared_columns = ("medication_name", "mechanism_of_action")
    researcher_spec = ViewSpec(source_table="D2", view_name=f"D23_{researcher_name}",
                               columns=shared_columns, view_key=("medication_name",))
    doctor_spec = ViewSpec(source_table="D3", view_name=f"D32_{researcher_name}",
                           columns=shared_columns, view_key=("medication_name",))
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a=researcher_name, role_a="Researcher", spec_a=researcher_spec,
        peer_b="doctor", role_b="Doctor", spec_b=doctor_spec,
        write_permission={
            "medication_name": ("Doctor", "Researcher"),
            "mechanism_of_action": ("Researcher",),
        },
        authority_role="Researcher",
        initiator=researcher_name,
    )


#: Reference table the join-backed doctor views enrich from.
JOIN_REFERENCE_TABLE = "medications"
#: Metadata id of the hospital's whole-table agreement in the join topology
#: (the fan-out driver: one batched hospital update touches many patients).
HOSPITAL_TABLE_ID = "DH&D3H"


def guideline_for(medication_name: str) -> str:
    """The (deterministic) prescribing-guideline tag of a medication — the
    enrichment value the join-backed views pull from the reference table."""
    return f"GL-{medication_name}"


def _join_patient_agreement(patient_name: str, patient_id: int,
                            metadata_id: str) -> SharingAgreement:
    """Doctor ↔ patient agreement whose doctor side is *join-backed*:
    σ_{patient_id}(D3) ⋈ medications, enriched with the guideline column.

    The patient side carries the same shared columns as plain ``D1``
    columns, so incoming cascade diffs (which may touch any shared column)
    reflect through an ordinary keyed projection."""
    shared_columns = ("patient_id", "medication_name", "clinical_data",
                      "dosage", "mechanism_of_action", "guideline")
    patient_spec = ViewSpec(source_table="D1", view_name=f"D13_{patient_id}",
                            columns=shared_columns, view_key=("patient_id",))
    doctor_spec = ViewSpec(source_table="D3", view_name=f"D31_{patient_id}",
                           columns=shared_columns, view_key=("patient_id",),
                           where=Eq("patient_id", patient_id),
                           join_table=JOIN_REFERENCE_TABLE,
                           join_on=("medication_name",),
                           join_columns=("guideline",))
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a="doctor", role_a="Doctor", spec_a=doctor_spec,
        peer_b=patient_name, role_b="Patient", spec_b=patient_spec,
        write_permission={
            "patient_id": ("Doctor",),
            "medication_name": ("Doctor",),
            "dosage": ("Doctor",),
            "clinical_data": ("Patient", "Doctor"),
            "mechanism_of_action": ("Doctor",),
            "guideline": ("Doctor",),
        },
        authority_role="Doctor",
        initiator="doctor",
    )


def _hospital_agreement(metadata_id: str = HOSPITAL_TABLE_ID) -> SharingAgreement:
    """Hospital ↔ doctor agreement over the *whole* D3, keyed by patient id.

    A batched hospital update (one edit per affected patient) lands as one
    multi-row diff on the doctor's base table and fans out as one cascade
    with one leg per affected per-patient view — the cascade-heavy workload
    the parallel-cascade benchmark drives."""
    shared_columns = ("patient_id", "medication_name", "mechanism_of_action")
    hospital_spec = ViewSpec(source_table="DH", view_name="DH3",
                             columns=shared_columns, view_key=("patient_id",))
    doctor_spec = ViewSpec(source_table="D3", view_name="D3H",
                           columns=shared_columns, view_key=("patient_id",))
    return SharingAgreement.build(
        metadata_id=metadata_id,
        peer_a="hospital", role_a="Hospital", spec_a=hospital_spec,
        peer_b="doctor", role_b="Doctor", spec_b=doctor_spec,
        write_permission={
            "patient_id": ("Doctor",),
            "medication_name": ("Doctor",),
            "mechanism_of_action": ("Hospital", "Doctor"),
        },
        authority_role="Hospital",
        initiator="hospital",
    )


def build_join_topology_system(spec: TopologySpec = TopologySpec(),
                               config: Optional[SystemConfig] = None,
                               ) -> MedicalDataSharingSystem:
    """A topology whose doctor-side per-patient views are join-backed.

    Peers and tables:

    * **doctor** — ``D3`` plus the ``medications`` reference table
      (primary key ``medication_name``, enrichment column ``guideline``);
    * **hospital** — ``DH``, a whole-table replica of the shared D3 columns,
      shared with the doctor keyed by patient id (:data:`HOSPITAL_TABLE_ID`);
    * ``spec.patients`` **patients** — an extended plain ``D1`` that carries
      ``mechanism_of_action`` and ``guideline`` as ordinary columns, shared
      through the join-backed per-patient agreements.

    A hospital-side batched ``mechanism_of_action`` update per medication
    reaches every patient on that medication through one cascade — each leg
    translated by the keyed-join delta rules — which is exactly the fan-out
    shape ``benchmarks/bench_parallel_cascade.py`` measures.
    ``spec.researchers`` is ignored: the functional D23/D32 view is not
    delta-translatable and would hide the join legs' zero-fallback signal.
    """
    generator = MedicalRecordGenerator(seed=spec.seed,
                                       first_patient_id=spec.first_patient_id)
    records = generator.records(spec.patients,
                                distinct_medications=spec.distinct_medications)

    system = MedicalDataSharingSystem(config or SystemConfig.private_chain())
    system.add_peer("doctor", "Doctor")
    system.add_peer("hospital", "Hospital")

    doctor_columns = ("patient_id", "medication_name", "clinical_data",
                      "dosage", "mechanism_of_action")
    system.peer("doctor").database.create_table(
        "D3", doctor_schema(),
        [{c: record[c] for c in doctor_columns} for record in records])
    medications = sorted({record["medication_name"] for record in records})
    system.peer("doctor").database.create_table(
        JOIN_REFERENCE_TABLE,
        schema_for_attributes(["medication_name", "guideline"],
                              primary_key=["medication_name"]),
        [{"medication_name": m, "guideline": guideline_for(m)}
         for m in medications])

    hospital_columns = ("patient_id", "medication_name", "mechanism_of_action")
    system.peer("hospital").database.create_table(
        "DH",
        schema_for_attributes(list(hospital_columns), primary_key=["patient_id"]),
        [{c: record[c] for c in hospital_columns} for record in records])

    patient_schema_ext = schema_for_attributes(
        ["patient_id", "medication_name", "clinical_data", "address",
         "dosage", "mechanism_of_action", "guideline"],
        primary_key=["patient_id"])
    patient_columns = tuple(patient_schema_ext.column_names)
    patient_names = []
    for record in records:
        patient_id = record["patient_id"]
        name = f"patient-{patient_id}"
        patient_names.append((patient_id, name))
        system.add_peer(name, "Patient")
        row = {c: record.get(c) for c in patient_columns}
        row["guideline"] = guideline_for(record["medication_name"])
        system.peer(name).database.create_table("D1", patient_schema_ext, [row])

    system.deploy_contracts("doctor")
    system.establish_sharing(_hospital_agreement())
    for patient_id, name in patient_names:
        system.establish_sharing(
            _join_patient_agreement(name, patient_id,
                                    metadata_id=f"D13&D31:{patient_id}"))
    return system


def patients_by_medication(system: MedicalDataSharingSystem) -> Dict[str, List[int]]:
    """Patient ids grouped by their current medication (from the doctor's
    ``D3``) — the fan-out sets a hospital-side per-medication update hits."""
    groups: Dict[str, List[int]] = {}
    for row in system.peer("doctor").database.table("D3"):
        groups.setdefault(row["medication_name"], []).append(row["patient_id"])
    return {medication: sorted(ids) for medication, ids in sorted(groups.items())}


def build_topology_system(spec: TopologySpec = TopologySpec(),
                          config: Optional[SystemConfig] = None) -> MedicalDataSharingSystem:
    """Build a doctor-centred topology with ``spec.patients`` patients and
    ``spec.researchers`` researchers, sharing established and contracts live."""
    generator = MedicalRecordGenerator(seed=spec.seed,
                                       first_patient_id=spec.first_patient_id)
    # One full record per patient peer (patient_id keys D1/D3), with the
    # medication variety bounded so several patients share each medication —
    # that is what makes the D23/D32 functional view non-trivial.
    full_records = generator.records(spec.patients,
                                     distinct_medications=spec.distinct_medications)
    records_by_patient: Dict[int, List[dict]] = {}
    all_records: List[dict] = []
    patient_ids: List[int] = []
    for record in full_records:
        patient_id = record["patient_id"]
        patient_ids.append(patient_id)
        records_by_patient[patient_id] = [record]
        all_records.append(record)

    system = MedicalDataSharingSystem(config or SystemConfig.private_chain())
    system.add_peer("doctor", "Doctor")

    doctor_columns = ("patient_id", "medication_name", "clinical_data", "dosage",
                      "mechanism_of_action")
    doctor_rows = [{c: record[c] for c in doctor_columns} for record in all_records]
    system.peer("doctor").database.create_table("D3", doctor_schema(), doctor_rows)

    patient_columns = ("patient_id", "medication_name", "clinical_data", "address", "dosage")
    patient_names = []
    for patient_id in patient_ids:
        name = f"patient-{patient_id}"
        patient_names.append(name)
        system.add_peer(name, "Patient")
        rows = [{c: record[c] for c in patient_columns}
                for record in records_by_patient[patient_id]]
        system.peer(name).database.create_table("D1", patient_schema(), rows)

    researcher_columns = ("medication_name", "mechanism_of_action", "mode_of_action")
    researcher_names = []
    seen_medications: Dict[str, dict] = {}
    for record in all_records:
        seen_medications[record["medication_name"]] = {
            c: record[c] for c in researcher_columns
        }
    for index in range(spec.researchers):
        name = f"researcher-{index + 1}"
        researcher_names.append(name)
        system.add_peer(name, "Researcher")
        system.peer(name).database.create_table("D2", researcher_schema(),
                                                 list(seen_medications.values()))

    system.deploy_contracts("doctor")
    for patient_id, name in zip(patient_ids, patient_names):
        system.establish_sharing(
            _patient_agreement(name, patient_id, metadata_id=f"D13&D31:{patient_id}")
        )
    for name in researcher_names:
        system.establish_sharing(
            _researcher_agreement(name, metadata_id=f"D23&D32:{name}")
        )
    return system
