"""Shared exception hierarchy for the reproduction library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
applications embedding the library can catch a single base class, while tests
can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A schema definition or schema compatibility constraint was violated."""


class ConstraintViolation(RelationalError):
    """A table constraint (primary key, not-null, type) was violated."""


class UnknownColumnError(RelationalError):
    """A query or update referenced a column that does not exist."""


class UnknownTableError(RelationalError):
    """A database operation referenced a table that does not exist."""


class DuplicateTableError(RelationalError):
    """A table with the same name already exists in the database."""


class RowNotFoundError(RelationalError):
    """A keyed lookup did not match any row."""


class TransactionError(RelationalError):
    """A transaction was used incorrectly (double commit, no active txn, ...)."""


class DiffConflictError(RelationalError):
    """A :class:`~repro.relational.diff.TableDiff` cannot be applied to a table.

    Raised when a diff disagrees with the table it is applied to: an insert
    for a key that already exists, an update/delete for a key that does not,
    or an update change whose ``after`` image lacks one of its
    ``changed_columns``.
    """


class WalTruncatedError(RelationalError):
    """A WAL read asked for entries below the recorded checkpoint sequence.

    After :meth:`~repro.relational.wal.WriteAheadLog.truncate` the discarded
    prefix is only recoverable from the checkpoint snapshot; silently
    returning an incomplete tail would make "replay from empty" look complete
    when it is not.
    """


class WalCorruptionError(RelationalError):
    """An on-disk WAL segment is damaged beyond the torn tail a crash can
    legitimately leave (undecodable or out-of-order entries mid-stream)."""


class RecoveryError(RelationalError):
    """A durable-state directory could not be recovered (missing snapshot,
    unreplayable entry, manifest/WAL disagreement)."""


# ---------------------------------------------------------------------------
# Bidirectional transformations
# ---------------------------------------------------------------------------

class BXError(ReproError):
    """Base class for errors raised by :mod:`repro.bx`."""


class LensLawViolation(BXError):
    """A lens failed the GetPut or PutGet round-tripping law on given data."""


class PutConflictError(BXError):
    """A ``put`` could not embed the view into the source unambiguously."""


class ViewShapeError(BXError):
    """A view passed to ``put`` is incompatible with the lens' view schema."""


class UnknownLensError(BXError):
    """A BX registry lookup failed."""


class DeltaUnsupported(BXError):
    """A diff cannot be translated incrementally through a transformation.

    Raised by ``get_delta``/``put_delta`` when no sound row-level translation
    exists (e.g. functional projections whose support counts change, join
    multiplicity, selection predicates over hidden columns).  Callers fall
    back to the full ``get``/``put`` recomputation.
    """


# ---------------------------------------------------------------------------
# Ledger / blockchain
# ---------------------------------------------------------------------------

class LedgerError(ReproError):
    """Base class for errors raised by :mod:`repro.ledger`."""


class InvalidBlockError(LedgerError):
    """A block failed validation (hash linkage, Merkle root, consensus seal)."""


class InvalidTransactionError(LedgerError):
    """A transaction failed validation (signature, nonce, payload)."""


class ForkError(LedgerError):
    """A chain reorganisation could not be applied."""


class ConsensusError(LedgerError):
    """A consensus engine rejected a block or could not produce one."""


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------

class ContractError(ReproError):
    """Base class for errors raised by :mod:`repro.contracts`."""


class ContractNotFoundError(ContractError):
    """A call referenced a contract address with no deployed contract."""


class ContractRevert(ContractError):
    """A contract aborted execution; state changes of the call are discarded."""


class PermissionDenied(ContractRevert):
    """The caller lacks the permission required by the sharing contract."""


class ContractSpecViolation(ContractError):
    """An executable specification check of a contract failed (§IV.2)."""


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for errors raised by :mod:`repro.network`."""


class UnknownPeerError(NetworkError):
    """A message was addressed to a peer not registered in the transport."""


class ChannelClosedError(NetworkError):
    """A data channel between two peers was used after being closed."""


# ---------------------------------------------------------------------------
# Core sharing architecture
# ---------------------------------------------------------------------------

class SharingError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class AgreementError(SharingError):
    """A sharing agreement is malformed or inconsistent with local schemas."""


class UpdateRejected(SharingError):
    """An update on shared data was rejected (permission, conflict, stale)."""


class SynchronizationError(SharingError):
    """Source/view synchronisation failed or produced inconsistent data."""


class WorkflowError(SharingError):
    """The multi-step update workflow could not be completed."""


# ---------------------------------------------------------------------------
# Gateway (the multi-tenant serving layer)
# ---------------------------------------------------------------------------

class GatewayError(ReproError):
    """Base class for errors raised by :mod:`repro.gateway`."""


class SessionError(GatewayError):
    """A gateway session is invalid, closed, or not authorised for a request."""


class RateLimitExceeded(GatewayError):
    """A tenant exceeded its per-session request rate (backpressure)."""


class CircuitOpenError(GatewayError):
    """A circuit breaker refused the request without attempting the work."""


# ---------------------------------------------------------------------------
# Runtime (message-passing boundary, wire codecs, process fleet)
# ---------------------------------------------------------------------------

class RuntimeBoundaryError(ReproError):
    """Base class for errors raised by :mod:`repro.runtime`."""


class CodecError(RuntimeBoundaryError):
    """A wire codec could not encode or decode a payload.

    Raised for values outside the deterministic wire model (unsupported
    types, non-string mapping keys) and for malformed byte streams
    (unknown tags, truncated frames, trailing garbage).
    """


class EnvelopeError(RuntimeBoundaryError):
    """An envelope violated the message discipline (bad kind, missing
    sequence, wrong schema version)."""


class FleetError(RuntimeBoundaryError):
    """Base class for multi-process fleet failures."""


class FleetProtocolError(FleetError):
    """A worker and the coordinator disagreed on the request/reply protocol
    (out-of-sequence reply, unexpected kind, undecodable frame)."""


class WorkerCrashError(FleetError):
    """A worker process died before delivering its reply.

    Carries enough context (worker name, exit code) for the coordinator to
    decide between failing the run and recovering the worker's durable
    state through the WAL path.
    """

    def __init__(self, worker: str, exitcode: "int | None" = None,
                 message: "str | None" = None) -> None:
        self.worker = worker
        self.exitcode = exitcode
        detail = message or (
            f"worker {worker!r} exited with code {exitcode!r} "
            "before replying"
        )
        super().__init__(detail)


# ---------------------------------------------------------------------------
# Chaos (deterministic fault injection)
# ---------------------------------------------------------------------------

class ChaosError(ReproError):
    """Base class for errors raised by :mod:`repro.chaos` itself (a malformed
    fault plan, an unknown fault kind, ...)."""


class InjectedFault(ReproError):
    """A fault deliberately raised by a :class:`~repro.chaos.FaultInjector`.

    Terminal by default: retry machinery treats it like any other
    :class:`ReproError` unless it is one of the retryable subclasses below.
    """


class TransientFault(InjectedFault):
    """An injected fault that models a *transient* condition (a consensus
    round that would succeed if retried).  Retryable under the default
    :class:`~repro.chaos.RetryPolicy`."""


class InjectedDiskError(InjectedFault, OSError):
    """An injected storage-layer ``OSError`` (WAL append or fsync failure).

    Inherits :class:`OSError` so code that guards real disk failures treats
    it identically, and :class:`InjectedFault` (hence :class:`ReproError`)
    so the pipeline's existing error boundaries contain it.
    """
