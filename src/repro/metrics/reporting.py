"""Plain-text rendering of benchmark results.

The benchmark harness prints the same rows/series the paper's figures would
carry; these helpers keep that output aligned and readable both in pytest
output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[object, object], x_label: str = "x", y_label: str = "y",
                  title: str = "") -> str:
    """Render an (x → y) series as a two-column table (one figure data series)."""
    rows = [(x, y) for x, y in series.items()]
    return format_table((x_label, y_label), rows, title=title)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
