"""Metric collectors used by benchmarks and examples.

All metrics are computed over *simulated* time (the ledger's
:class:`~repro.ledger.clock.SimClock`), so results are deterministic and
independent of the host machine.
"""

from __future__ import annotations

import bisect
import statistics
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.system import MedicalDataSharingSystem
from repro.core.workflow import WorkflowTrace

if TYPE_CHECKING:  # avoid a cycle: workloads → gateway → metrics.collectors
    from repro.workloads.updates import UpdateEvent

#: Fixed log-scale histogram bucket upper bounds (simulated seconds):
#: 1 ms doubling up to ~37 h.  Fixed bounds keep distributions from
#: different runs (and different collectors in one registry) comparable.
HISTOGRAM_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    0.001 * (2 ** i) for i in range(28))


@dataclass
class LatencyCollector:
    """Collects end-to-end latencies of workflow runs."""

    samples: List[float] = field(default_factory=list)

    def record(self, trace: WorkflowTrace) -> None:
        self.samples.append(trace.elapsed)

    def record_value(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    def percentile(self, q: float, default: Optional[float] = 0.0) -> Optional[float]:
        """The ``q``-th percentile with linear interpolation between ranks.

        Small sample counts interpolate instead of snapping to an element, so
        e.g. the p95 of ``[1, 2, ..., 10]`` is 9.55 rather than a raw sample.

        With no samples, returns ``default`` (0.0 for report-friendly
        summaries).  Callers making *decisions* on the value — admission
        control comparing a percentile against a target — must pass
        ``default=None`` and treat it as "no evidence", not as "fast":
        reading an empty window as 0.0 latency would wave every write
        through exactly when nothing has been measured yet.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        if not self.samples:
            return default
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def histogram_buckets(self) -> Dict[str, int]:
        """Sample counts per fixed log-scale bucket (upper-bound keyed).

        A sample lands in the first bucket whose bound is >= its value;
        samples beyond the last bound count under ``"+inf"``.  Empty buckets
        are omitted, so the dict stays small however wide the bounds range.
        """
        counts: Dict[str, int] = {}
        overflow = 0
        for value in self.samples:
            index = bisect.bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)
            if index >= len(HISTOGRAM_BUCKET_BOUNDS):
                overflow += 1
                continue
            key = repr(HISTOGRAM_BUCKET_BOUNDS[index])
            counts[key] = counts.get(key, 0) + 1
        buckets = {key: counts[key]
                   for key in sorted(counts, key=float)}
        if overflow:
            buckets["+inf"] = overflow
        return buckets

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


class PeakGauge:
    """A thread-safe gauge tracking a current value and its high-water mark.

    The gateway uses it for in-flight commit rounds and outstanding writes —
    quantities that rise and fall as admission interleaves with commits, where
    the *peak* is what proves the interleaving actually happened.
    """

    def __init__(self, value: int = 0):
        self._value = value
        self._peak = value
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    @property
    def peak(self) -> int:
        return self._peak

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            if self._value > self._peak:
                self._peak = self._value
            return self._value

    def decrement(self, amount: int = 1) -> int:
        with self._lock:
            self._value -= amount
            return self._value

    def record(self, value: int) -> int:
        """Set the current value outright (still tracking the peak)."""
        with self._lock:
            self._value = value
            if value > self._peak:
                self._peak = value
            return self._value

    def to_dict(self) -> Dict[str, int]:
        return {"current": self._value, "peak": self._peak}


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of pushing a stream of updates through the system."""

    updates_attempted: int
    updates_accepted: int
    updates_rejected: int
    simulated_seconds: float
    blocks_created: int

    @property
    def throughput(self) -> float:
        """Accepted updates per simulated second."""
        if self.simulated_seconds <= 0:
            return 0.0
        return self.updates_accepted / self.simulated_seconds

    def to_dict(self) -> dict:
        return {
            "updates_attempted": self.updates_attempted,
            "updates_accepted": self.updates_accepted,
            "updates_rejected": self.updates_rejected,
            "simulated_seconds": self.simulated_seconds,
            "blocks_created": self.blocks_created,
            "throughput": self.throughput,
        }


def measure_throughput(system: MedicalDataSharingSystem,
                       events: Sequence[UpdateEvent]) -> ThroughputResult:
    """Apply a stream of update events and measure accepted updates per second."""
    from repro.errors import UpdateRejected

    start = system.simulator.clock.now()
    start_height = system.simulator.nodes[0].chain.height if system.simulator.nodes else 0
    accepted = 0
    rejected = 0
    for event in events:
        try:
            trace = system.coordinator.update_shared_entry(
                event.peer, event.metadata_id, event.key, event.updates
            )
            if trace.succeeded:
                accepted += 1
            else:
                rejected += 1
        except UpdateRejected:
            rejected += 1
    elapsed = system.simulator.clock.now() - start
    end_height = system.simulator.nodes[0].chain.height if system.simulator.nodes else 0
    return ThroughputResult(
        updates_attempted=len(events),
        updates_accepted=accepted,
        updates_rejected=rejected,
        simulated_seconds=elapsed,
        blocks_created=end_height - start_height,
    )


@dataclass(frozen=True)
class ExposureReport:
    """Attributes visible to each role under two sharing designs."""

    fine_grained: Dict[str, Tuple[str, ...]]
    full_record: Dict[str, Tuple[str, ...]]

    def unnecessary_attributes(self) -> Dict[str, Tuple[str, ...]]:
        """Attributes each role sees under full-record sharing but not under
        the fine-grained views (i.e. data exposed without need)."""
        result: Dict[str, Tuple[str, ...]] = {}
        for role, full_columns in self.full_record.items():
            needed = set(self.fine_grained.get(role, ()))
            result[role] = tuple(column for column in full_columns if column not in needed)
        return result

    def exposure_counts(self) -> Dict[str, Dict[str, int]]:
        roles = sorted(set(self.fine_grained) | set(self.full_record))
        return {
            role: {
                "fine_grained": len(self.fine_grained.get(role, ())),
                "full_record": len(self.full_record.get(role, ())),
                "unnecessary": len(self.unnecessary_attributes().get(role, ())),
            }
            for role in roles
        }


def exposure_report(fine_grained: Mapping[str, Sequence[str]],
                    full_record: Mapping[str, Sequence[str]]) -> ExposureReport:
    """Build an :class:`ExposureReport` from per-role attribute lists."""
    return ExposureReport(
        fine_grained={role: tuple(columns) for role, columns in fine_grained.items()},
        full_record={role: tuple(columns) for role, columns in full_record.items()},
    )


@dataclass(frozen=True)
class StorageComparison:
    """Per-node storage under metadata-on-chain vs data-on-chain designs."""

    record_count: int
    metadata_on_chain_bytes: int
    data_on_chain_bytes: int

    @property
    def ratio(self) -> float:
        """How many times larger the data-on-chain design is."""
        if self.metadata_on_chain_bytes <= 0:
            return float("inf")
        return self.data_on_chain_bytes / self.metadata_on_chain_bytes

    def to_dict(self) -> dict:
        return {
            "record_count": self.record_count,
            "metadata_on_chain_bytes": self.metadata_on_chain_bytes,
            "data_on_chain_bytes": self.data_on_chain_bytes,
            "ratio": self.ratio,
        }
