"""Metric collection and reporting for the benchmark harness."""

from repro.metrics.collectors import (
    HISTOGRAM_BUCKET_BOUNDS,
    ExposureReport,
    LatencyCollector,
    PeakGauge,
    StorageComparison,
    ThroughputResult,
    exposure_report,
    measure_throughput,
)
from repro.metrics.reporting import format_table, format_series

__all__ = [
    "HISTOGRAM_BUCKET_BOUNDS",
    "LatencyCollector",
    "PeakGauge",
    "ThroughputResult",
    "ExposureReport",
    "StorageComparison",
    "exposure_report",
    "measure_throughput",
    "format_table",
    "format_series",
]
