"""Metric collection and reporting for the benchmark harness."""

from repro.metrics.collectors import (
    ExposureReport,
    LatencyCollector,
    StorageComparison,
    ThroughputResult,
    exposure_report,
    measure_throughput,
)
from repro.metrics.reporting import format_table, format_series

__all__ = [
    "LatencyCollector",
    "ThroughputResult",
    "ExposureReport",
    "StorageComparison",
    "exposure_report",
    "measure_throughput",
    "format_table",
    "format_series",
]
