"""An in-memory relational engine: each peer's "local database".

The paper assumes that every sharing peer (patient, doctor, researcher) keeps
its full data and every shared data piece in a local relational database and
that shared pieces are *views* obtained by querying a few attributes of the
local base table.  This subpackage provides that substrate:

* :mod:`repro.relational.schema` — typed columns and table schemas.
* :mod:`repro.relational.row` — immutable rows.
* :mod:`repro.relational.predicates` — composable row predicates.
* :mod:`repro.relational.table` — tables with primary keys and constraints.
* :mod:`repro.relational.query` — a small relational-algebra query AST.
* :mod:`repro.relational.index` — secondary hash indexes.
* :mod:`repro.relational.diff` — row-level deltas between table states.
* :mod:`repro.relational.wal` — a write-ahead log of applied operations.
* :mod:`repro.relational.durability` — on-disk WAL segments, checkpoints
  and crash recovery.
* :mod:`repro.relational.replication` — WAL-shipping read replicas with
  bounded, measured staleness.
* :mod:`repro.relational.transactions` — snapshot transactions with rollback.
* :mod:`repro.relational.database` — a named collection of tables and views.
"""

from repro.relational.schema import Column, DataType, Schema
from repro.relational.row import Row
from repro.relational.predicates import (
    And,
    Between,
    Contains,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.table import Table
from repro.relational.query import Project, Query, Rename, Select, Join, execute_query
from repro.relational.index import HashIndex
from repro.relational.diff import RowChange, TableDiff, diff_tables
from repro.relational.wal import WriteAheadLog, WalEntry
from repro.relational.transactions import TransactionManager
from repro.relational.database import Database
from repro.relational.persistence import (
    atomic_write_text,
    databases_identical,
    load_database,
    save_database,
)
from repro.relational.durability import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    CheckpointResult,
    JsonlWalBackend,
    RecoveryResult,
    checkpoint_database,
    open_durable_database,
    recover,
)
from repro.relational.replication import (
    DiffNotice,
    ReadReplica,
    ReplicaRouter,
    ReplicationError,
    RoutedRead,
    SegmentShipper,
    ShippedBatch,
)

__all__ = [
    "Column",
    "DataType",
    "Schema",
    "Row",
    "Predicate",
    "TruePredicate",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "In",
    "Between",
    "Contains",
    "IsNull",
    "And",
    "Or",
    "Not",
    "Table",
    "Query",
    "Project",
    "Select",
    "Rename",
    "Join",
    "execute_query",
    "HashIndex",
    "RowChange",
    "TableDiff",
    "diff_tables",
    "WriteAheadLog",
    "WalEntry",
    "TransactionManager",
    "Database",
    "save_database",
    "load_database",
    "databases_identical",
    "atomic_write_text",
    "FSYNC_ALWAYS",
    "FSYNC_BATCH",
    "FSYNC_NEVER",
    "JsonlWalBackend",
    "CheckpointResult",
    "RecoveryResult",
    "checkpoint_database",
    "open_durable_database",
    "recover",
    "DiffNotice",
    "ReadReplica",
    "ReplicaRouter",
    "ReplicationError",
    "RoutedRead",
    "SegmentShipper",
    "ShippedBatch",
]
