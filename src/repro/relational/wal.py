"""A write-ahead log of database operations.

Every mutating operation executed through a :class:`~repro.relational.database.Database`
is appended to a WAL entry.  The log serves three purposes in the reproduction:

* recovery — a database can be rebuilt by replaying the log from empty (or,
  after a checkpoint, from the checkpoint snapshot plus the entries since);
* local audit — the peer-side complement to the on-chain audit trail;
* benchmarking — operation counts per experiment are read from the log.

The log itself is in-memory; attaching a *backend* (see
:class:`repro.relational.durability.JsonlWalBackend`) mirrors every appended
entry to disk so the log survives a process crash.  Checkpointing truncates
the in-memory prefix but records the ``checkpoint_sequence`` at which it was
cut, so a reader asking for entries below it gets a typed
:class:`~repro.errors.WalTruncatedError` instead of a silently incomplete
tail.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import WalTruncatedError


@dataclass(frozen=True)
class WalEntry:
    """One logged operation.

    Attributes
    ----------
    sequence:
        Monotonically increasing sequence number.
    operation:
        ``"create_table" | "insert" | "update" | "delete" | "replace" |
        "apply_diff" | "drop_table" | "create_index" | "register_view" |
        "response"``.
    table:
        Target table name.
    payload:
        Operation-specific data (row values, key, updates, schema, ...).
    transaction_id:
        Identifier of the enclosing transaction, if any.
    """

    sequence: int
    operation: str
    table: str
    payload: Mapping[str, Any]
    transaction_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "operation": self.operation,
            "table": self.table,
            "payload": dict(self.payload),
            "transaction_id": self.transaction_id,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "WalEntry":
        return WalEntry(
            sequence=int(payload["sequence"]),
            operation=payload["operation"],
            table=payload["table"],
            payload=dict(payload.get("payload", {})),
            transaction_id=payload.get("transaction_id"),
        )


class WriteAheadLog:
    """An append-only operation log, optionally mirrored to a disk backend.

    ``backend`` is any object with ``append(entry)``, ``sync()``,
    ``truncate(checkpoint_sequence)`` and ``close()`` — in practice a
    :class:`~repro.relational.durability.JsonlWalBackend`.  Without one the
    log is purely in-memory (the seed behaviour).
    """

    def __init__(self, backend: Optional["WalBackend"] = None) -> None:  # noqa: F821
        self._entries: List[WalEntry] = []
        self._next_sequence = 1
        self._checkpoint_sequence = 0
        self._backend = backend

    @property
    def backend(self) -> Optional["WalBackend"]:  # noqa: F821
        return self._backend

    def attach_backend(self, backend: "WalBackend") -> None:  # noqa: F821
        """Mirror future appends to ``backend`` (used after recovery)."""
        self._backend = backend

    @property
    def durable(self) -> bool:
        """True when entries are mirrored to a disk backend."""
        return self._backend is not None

    @property
    def checkpoint_sequence(self) -> int:
        """The sequence number up to (and including) which the log was
        truncated by the last checkpoint; ``0`` when never truncated."""
        return self._checkpoint_sequence

    @property
    def last_sequence(self) -> int:
        """The sequence number of the most recently appended entry (or of the
        checkpoint cut, when everything since was truncated)."""
        return self._next_sequence - 1

    def append(self, operation: str, table: str, payload: Mapping[str, Any],
               transaction_id: Optional[int] = None) -> WalEntry:
        """Append one entry (mirroring it to the backend) and return it."""
        entry = WalEntry(
            sequence=self._next_sequence,
            operation=operation,
            table=table,
            payload=dict(payload),
            transaction_id=transaction_id,
        )
        self._next_sequence += 1
        self._entries.append(entry)
        if self._backend is not None:
            self._backend.append(entry)
        return entry

    def sync(self) -> None:
        """Force buffered backend writes to stable storage (fsync)."""
        if self._backend is not None:
            self._backend.sync()

    def close(self) -> None:
        if self._backend is not None:
            self._backend.close()

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """Silence the log: appends inside the context are dropped entirely.

        Recovery replays operations through the normal ``Database`` methods;
        those appends would duplicate entries that already exist on disk, so
        the replay loop runs inside this context and the recovered log state
        is restored afterwards via :meth:`restore`.
        """
        original_append = self.append

        def _dropped(operation: str, table: str, payload: Mapping[str, Any],
                     transaction_id: Optional[int] = None) -> WalEntry:
            return WalEntry(0, operation, table, dict(payload), transaction_id)

        self.append = _dropped  # type: ignore[method-assign]
        try:
            yield
        finally:
            self.append = original_append  # type: ignore[method-assign]

    def restore(self, entries: List[WalEntry], checkpoint_sequence: int) -> None:
        """Install recovered log state: the surviving on-disk entries and the
        checkpoint sequence they follow.  The next append continues after the
        highest sequence seen."""
        self._entries = list(entries)
        self._checkpoint_sequence = checkpoint_sequence
        top = max((entry.sequence for entry in entries), default=checkpoint_sequence)
        self._next_sequence = max(top, checkpoint_sequence) + 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[WalEntry, ...]:
        return tuple(self._entries)

    def entries_for_table(self, table: str) -> Tuple[WalEntry, ...]:
        """All entries targeting ``table``."""
        return tuple(entry for entry in self._entries if entry.table == table)

    def entries_since(self, sequence: int) -> Tuple[WalEntry, ...]:
        """All entries with a sequence number strictly greater than ``sequence``.

        Raises :class:`~repro.errors.WalTruncatedError` when ``sequence`` lies
        below the recorded checkpoint: the truncated prefix is gone, so the
        returned tail would silently miss operations.
        """
        if sequence < self._checkpoint_sequence:
            raise WalTruncatedError(
                f"entries since {sequence} were truncated at checkpoint "
                f"sequence {self._checkpoint_sequence}; replay from the "
                f"checkpoint snapshot instead"
            )
        return tuple(entry for entry in self._entries if entry.sequence > sequence)

    def operation_counts(self) -> Dict[str, int]:
        """How many times each operation kind appears in the log."""
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.operation] = counts.get(entry.operation, 0) + 1
        return counts

    def truncate(self, checkpoint_sequence: Optional[int] = None) -> int:
        """Discard entries up to ``checkpoint_sequence`` (default: all of
        them), recording where the cut happened.

        Returns the recorded checkpoint sequence.  Used after a checkpoint
        snapshot has captured the truncated prefix; a durable backend drops
        the segment files that hold only truncated entries.
        """
        if checkpoint_sequence is None:
            checkpoint_sequence = self.last_sequence
        if checkpoint_sequence < self._checkpoint_sequence:
            raise WalTruncatedError(
                f"cannot move the checkpoint backwards "
                f"({checkpoint_sequence} < {self._checkpoint_sequence})"
            )
        self._entries = [entry for entry in self._entries
                         if entry.sequence > checkpoint_sequence]
        self._checkpoint_sequence = checkpoint_sequence
        self._next_sequence = max(self._next_sequence, checkpoint_sequence + 1)
        if self._backend is not None:
            self._backend.truncate(checkpoint_sequence)
        return checkpoint_sequence
