"""A write-ahead log of database operations.

Every mutating operation executed through a :class:`~repro.relational.database.Database`
is appended to a WAL entry.  The log serves three purposes in the reproduction:

* recovery — a database can be rebuilt by replaying the log from empty;
* local audit — the peer-side complement to the on-chain audit trail;
* benchmarking — operation counts per experiment are read from the log.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class WalEntry:
    """One logged operation.

    Attributes
    ----------
    sequence:
        Monotonically increasing sequence number.
    operation:
        ``"create_table" | "insert" | "update" | "delete" | "replace" |
        "apply_diff" | "drop_table"``.
    table:
        Target table name.
    payload:
        Operation-specific data (row values, key, updates, schema, ...).
    transaction_id:
        Identifier of the enclosing transaction, if any.
    """

    sequence: int
    operation: str
    table: str
    payload: Mapping[str, Any]
    transaction_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "operation": self.operation,
            "table": self.table,
            "payload": dict(self.payload),
            "transaction_id": self.transaction_id,
        }


class WriteAheadLog:
    """An append-only, in-memory operation log."""

    def __init__(self) -> None:
        self._entries: List[WalEntry] = []
        self._counter = itertools.count(1)

    def append(self, operation: str, table: str, payload: Mapping[str, Any],
               transaction_id: Optional[int] = None) -> WalEntry:
        """Append one entry and return it."""
        entry = WalEntry(
            sequence=next(self._counter),
            operation=operation,
            table=table,
            payload=dict(payload),
            transaction_id=transaction_id,
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[WalEntry, ...]:
        return tuple(self._entries)

    def entries_for_table(self, table: str) -> Tuple[WalEntry, ...]:
        """All entries targeting ``table``."""
        return tuple(entry for entry in self._entries if entry.table == table)

    def entries_since(self, sequence: int) -> Tuple[WalEntry, ...]:
        """All entries with a sequence number strictly greater than ``sequence``."""
        return tuple(entry for entry in self._entries if entry.sequence > sequence)

    def operation_counts(self) -> Dict[str, int]:
        """How many times each operation kind appears in the log."""
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.operation] = counts.get(entry.operation, 0) + 1
        return counts

    def truncate(self) -> None:
        """Discard all entries (used after checkpointing in tests)."""
        self._entries = []
