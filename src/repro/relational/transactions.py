"""Snapshot transactions over a database.

The peer-side protocol of Fig. 4 says a user "tries to execute the operation
locally" before requesting permission on-chain; if the smart contract denies
permission the local attempt must be rolled back.  :class:`TransactionManager`
provides exactly that: snapshot-begin, commit and rollback over all tables of
one :class:`~repro.relational.database.Database`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import TransactionError
from repro.relational.table import Table


@dataclass
class _TransactionRecord:
    transaction_id: int
    snapshots: Dict[str, Table]
    active: bool = True


class TransactionManager:
    """Manages snapshot transactions for a set of named tables.

    The manager is deliberately simple: one active transaction at a time per
    database (peers in the paper serialise their own local operations), with
    nested ``begin`` rejected explicitly.
    """

    def __init__(self, tables: Dict[str, Table],
                 on_restore: Optional[Callable[[str, Table], None]] = None):
        self._tables = tables
        self._counter = itertools.count(1)
        self._current: Optional[_TransactionRecord] = None
        self._committed = 0
        self._rolled_back = 0
        #: Called with ``(name, table)`` after a rollback restored a table
        #: whose contents had actually changed — the database journals the
        #: restore so WAL replay reproduces the rolled-back state.
        self._on_restore = on_restore

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.active

    @property
    def statistics(self) -> Dict[str, int]:
        return {"committed": self._committed, "rolled_back": self._rolled_back}

    def begin(self) -> int:
        """Start a transaction; returns its id."""
        if self.in_transaction:
            raise TransactionError("a transaction is already active")
        snapshots = {name: table.snapshot() for name, table in self._tables.items()}
        self._current = _TransactionRecord(
            transaction_id=next(self._counter), snapshots=snapshots
        )
        return self._current.transaction_id

    def commit(self) -> int:
        """Commit the active transaction; returns its id."""
        if not self.in_transaction:
            raise TransactionError("no active transaction to commit")
        record = self._current
        record.active = False
        self._current = None
        self._committed += 1
        return record.transaction_id

    def rollback(self) -> int:
        """Roll back the active transaction, restoring all snapshots."""
        if not self.in_transaction:
            raise TransactionError("no active transaction to roll back")
        record = self._current
        # Deactivate before restoring so the journalled restores carry no
        # transaction id (they happen *after* the transaction, logically).
        self._current = None
        for name, snapshot in record.snapshots.items():
            if name in self._tables:
                changed = self._tables[name] != snapshot
                self._tables[name].replace_all(row.to_dict() for row in snapshot)
                if changed and self._on_restore is not None:
                    self._on_restore(name, self._tables[name])
        record.active = False
        self._rolled_back += 1
        return record.transaction_id

    def current_transaction_id(self) -> Optional[int]:
        """The id of the active transaction, or None."""
        return self._current.transaction_id if self.in_transaction else None

    def register_table(self, name: str, table: Table) -> None:
        """Track a table created after the manager was constructed."""
        self._tables[name] = table
        if self.in_transaction:
            # A table created inside a transaction starts from an empty snapshot
            # so rollback removes the inserted rows.
            self._current.snapshots[name] = table.snapshot()
