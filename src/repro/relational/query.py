"""A small relational-algebra query AST.

Views in the paper ("querying a few but not all attributes on the base
table") are expressed as query trees over base tables.  The same query trees
are used to *define* lenses declaratively in :mod:`repro.bx.dsl`, so a view
definition written once serves both the forward query and the backward
update propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownTableError
from repro.relational.predicates import Predicate, TruePredicate
from repro.relational.schema import Schema
from repro.relational.table import Table


class Query:
    """Base class of query AST nodes."""

    def execute(self, tables: Dict[str, Table]) -> Table:
        """Evaluate this query against a mapping of table name → table."""
        raise NotImplementedError

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        """The schema the query produces (without materialising rows)."""
        return self.execute(tables).schema

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: dict) -> "Query":
        kind = payload["kind"]
        if kind == "scan":
            return Scan(payload["table"])
        if kind == "project":
            return Project(Query.from_dict(payload["child"]), tuple(payload["columns"]),
                           distinct=payload.get("distinct", True))
        if kind == "select":
            return Select(Query.from_dict(payload["child"]),
                          Predicate.from_dict(payload["predicate"]))
        if kind == "rename":
            return Rename(Query.from_dict(payload["child"]), dict(payload["mapping"]))
        if kind == "join":
            return Join(Query.from_dict(payload["left"]), Query.from_dict(payload["right"]),
                        tuple(payload["on"]))
        raise ValueError(f"unknown query kind {kind!r}")


@dataclass(frozen=True)
class Scan(Query):
    """Read an entire base table."""

    table: str

    def execute(self, tables: Dict[str, Table]) -> Table:
        if self.table not in tables:
            raise UnknownTableError(f"unknown table {self.table!r}")
        return tables[self.table].snapshot()

    def to_dict(self) -> dict:
        return {"kind": "scan", "table": self.table}


@dataclass(frozen=True)
class Project(Query):
    """Project a child query onto a subset of columns."""

    child: Query
    columns: Tuple[str, ...]
    distinct: bool = True

    def execute(self, tables: Dict[str, Table]) -> Table:
        return self.child.execute(tables).project(list(self.columns), distinct=self.distinct)

    def to_dict(self) -> dict:
        return {
            "kind": "project",
            "child": self.child.to_dict(),
            "columns": list(self.columns),
            "distinct": self.distinct,
        }


@dataclass(frozen=True)
class Select(Query):
    """Filter a child query by a predicate."""

    child: Query
    predicate: Predicate = field(default_factory=TruePredicate)

    def execute(self, tables: Dict[str, Table]) -> Table:
        if isinstance(self.child, Scan):
            # Filter the base table directly instead of a fresh snapshot: an
            # equality predicate on an indexed column is then answered from
            # the table's secondary index rather than a full scan.
            if self.child.table not in tables:
                raise UnknownTableError(f"unknown table {self.child.table!r}")
            return tables[self.child.table].where(self.predicate)
        return self.child.execute(tables).where(self.predicate)

    def to_dict(self) -> dict:
        return {
            "kind": "select",
            "child": self.child.to_dict(),
            "predicate": self.predicate.to_dict(),
        }


@dataclass(frozen=True)
class Rename(Query):
    """Rename columns of a child query."""

    child: Query
    mapping: Dict[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "mapping", dict(self.mapping))

    def execute(self, tables: Dict[str, Table]) -> Table:
        return self.child.execute(tables).rename_columns(self.mapping)

    def to_dict(self) -> dict:
        return {"kind": "rename", "child": self.child.to_dict(), "mapping": dict(self.mapping)}


@dataclass(frozen=True)
class Join(Query):
    """Natural equi-join of two child queries on the given columns."""

    left: Query
    right: Query
    on: Tuple[str, ...]

    def execute(self, tables: Dict[str, Table]) -> Table:
        left = self.left.execute(tables)
        right = self.right.execute(tables)
        for column in self.on:
            if not left.schema.has_column(column) or not right.schema.has_column(column):
                raise SchemaError(f"join column {column!r} missing from an input")
        # A join can multiply rows per left key, so the result is keyless.
        merged_schema = Schema(columns=left.schema.merge(right.schema).columns, primary_key=())
        right_extra = [c for c in right.schema.column_names if c not in left.schema.column_names]
        index: Dict[Tuple, list] = {}
        for row in right:
            index.setdefault(tuple(row[c] for c in self.on), []).append(row)
        out_rows = []
        for row in left:
            key = tuple(row[c] for c in self.on)
            for match in index.get(key, ()):
                combined = row.to_dict()
                for column in right_extra:
                    combined[column] = match[column]
                out_rows.append(combined)
        return Table(f"{left.name}_join_{right.name}", merged_schema, out_rows)

    def to_dict(self) -> dict:
        return {
            "kind": "join",
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "on": list(self.on),
        }


def execute_query(query: Query, tables: Dict[str, Table], name: Optional[str] = None) -> Table:
    """Evaluate ``query`` and optionally rename the result table."""
    result = query.execute(tables)
    if name is not None:
        result = Table(name, result.schema, (row.to_dict() for row in result))
    return result


def projection_query(table: str, columns: Sequence[str]) -> Query:
    """Convenience constructor for the paper's typical view definition."""
    return Project(Scan(table), tuple(columns))
