"""A small relational-algebra query AST.

Views in the paper ("querying a few but not all attributes on the base
table") are expressed as query trees over base tables.  The same query trees
are used to *define* lenses declaratively in :mod:`repro.bx.dsl`, so a view
definition written once serves both the forward query and the backward
update propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import DeltaUnsupported, SchemaError, UnknownTableError
from repro.relational.diff import TableDiff
from repro.relational.predicates import Predicate, TruePredicate
from repro.relational.schema import Schema
from repro.relational.table import Table


class Query:
    """Base class of query AST nodes."""

    def execute(self, tables: Dict[str, Table]) -> Table:
        """Evaluate this query against a mapping of table name → table."""
        raise NotImplementedError

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        """The schema the query produces (without materialising rows)."""
        raise NotImplementedError

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        """Translate a diff of one base table into the diff of this query's
        result, without re-executing the query.

        Raises :class:`~repro.errors.DeltaUnsupported` when the node cannot
        translate row-by-row (joins, key-erasing projections); callers fall
        back to re-executing the query and diffing.
        """
        raise DeltaUnsupported(
            f"{type(self).__name__} has no incremental evaluation"
        )

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        """Translate a diff of this query's result back into a diff of the
        underlying base table (the update-propagation direction)."""
        raise DeltaUnsupported(
            f"{type(self).__name__} has no incremental update translation"
        )

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: dict) -> "Query":
        kind = payload["kind"]
        if kind == "scan":
            return Scan(payload["table"])
        if kind == "project":
            return Project(Query.from_dict(payload["child"]), tuple(payload["columns"]),
                           distinct=payload.get("distinct", True))
        if kind == "select":
            return Select(Query.from_dict(payload["child"]),
                          Predicate.from_dict(payload["predicate"]))
        if kind == "rename":
            return Rename(Query.from_dict(payload["child"]), dict(payload["mapping"]))
        if kind == "join":
            return Join(Query.from_dict(payload["left"]), Query.from_dict(payload["right"]),
                        tuple(payload["on"]))
        raise ValueError(f"unknown query kind {kind!r}")


@dataclass(frozen=True)
class Scan(Query):
    """Read an entire base table."""

    table: str

    def execute(self, tables: Dict[str, Table]) -> Table:
        if self.table not in tables:
            raise UnknownTableError(f"unknown table {self.table!r}")
        return tables[self.table].snapshot()

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        if self.table not in tables:
            raise UnknownTableError(f"unknown table {self.table!r}")
        return tables[self.table].schema

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        if diff.table_name != self.table:
            return TableDiff(table_name=self.table, changes=())
        return diff

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        return TableDiff(table_name=self.table, changes=view_diff.changes)

    def to_dict(self) -> dict:
        return {"kind": "scan", "table": self.table}


@dataclass(frozen=True)
class Project(Query):
    """Project a child query onto a subset of columns."""

    child: Query
    columns: Tuple[str, ...]
    distinct: bool = True

    def execute(self, tables: Dict[str, Table]) -> Table:
        return self.child.execute(tables).project(list(self.columns), distinct=self.distinct)

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        return self.child.output_schema(tables).project(list(self.columns))

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        from repro.bx.delta import projection_get_change, translate_diff

        child_schema = self.child.output_schema(tables)
        if not child_schema.primary_key or not all(
                k in self.columns for k in child_schema.primary_key):
            raise DeltaUnsupported(
                "projection drops the child's primary key; duplicate collapse "
                "depends on support counts only a full re-execution sees"
            )
        child_diff = self.child.get_delta(tables, diff)
        return translate_diff(
            child_diff, child_diff.table_name,
            lambda change: projection_get_change(change, self.columns, "project"),
        )

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        from repro.bx.delta import projection_put_change, translate_diff
        from repro.bx.lens import DeletePolicy, InsertPolicy

        child_schema = self.child.output_schema(tables)
        if not child_schema.primary_key or not all(
                k in self.columns for k in child_schema.primary_key):
            raise DeltaUnsupported(
                "projection drops the child's primary key; updates cannot be "
                "aligned to child rows"
            )
        child_diff = translate_diff(
            view_diff, view_diff.table_name,
            lambda change: projection_put_change(
                change, child_schema, self.columns,
                DeletePolicy.DELETE, InsertPolicy.INSERT_WITH_NULLS, "project"),
        )
        return self.child.put_delta(tables, child_diff)

    def to_dict(self) -> dict:
        return {
            "kind": "project",
            "child": self.child.to_dict(),
            "columns": list(self.columns),
            "distinct": self.distinct,
        }


@dataclass(frozen=True)
class Select(Query):
    """Filter a child query by a predicate."""

    child: Query
    predicate: Predicate = field(default_factory=TruePredicate)

    def execute(self, tables: Dict[str, Table]) -> Table:
        if isinstance(self.child, Scan):
            # Filter the base table directly instead of a fresh snapshot: an
            # equality predicate on an indexed column is then answered from
            # the table's secondary index rather than a full scan.
            if self.child.table not in tables:
                raise UnknownTableError(f"unknown table {self.child.table!r}")
            return tables[self.child.table].where(self.predicate)
        return self.child.execute(tables).where(self.predicate)

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        return self.child.output_schema(tables)

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        from repro.bx.delta import selection_get_change, translate_diff

        if not self.child.output_schema(tables).primary_key:
            raise DeltaUnsupported("selection delta requires a keyed child")
        child_diff = self.child.get_delta(tables, diff)
        return translate_diff(
            child_diff, child_diff.table_name,
            lambda change: selection_get_change(change, self.predicate),
        )

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        from repro.bx.delta import selection_put_change, translate_diff
        from repro.bx.lens import DeletePolicy, InsertPolicy

        if not self.child.output_schema(tables).primary_key:
            raise DeltaUnsupported("selection delta requires a keyed child")
        child_diff = translate_diff(
            view_diff, view_diff.table_name,
            lambda change: selection_put_change(
                change, self.predicate,
                DeletePolicy.DELETE, InsertPolicy.INSERT_WITH_NULLS, "select"),
        )
        return self.child.put_delta(tables, child_diff)

    def to_dict(self) -> dict:
        return {
            "kind": "select",
            "child": self.child.to_dict(),
            "predicate": self.predicate.to_dict(),
        }


@dataclass(frozen=True)
class Rename(Query):
    """Rename columns of a child query."""

    child: Query
    mapping: Dict[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "mapping", dict(self.mapping))

    def execute(self, tables: Dict[str, Table]) -> Table:
        return self.child.execute(tables).rename_columns(self.mapping)

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        return self.child.output_schema(tables).rename(self.mapping)

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        from repro.bx.delta import renamed_change, translate_diff

        child_diff = self.child.get_delta(tables, diff)
        return translate_diff(
            child_diff, child_diff.table_name,
            lambda change: renamed_change(change, self.mapping),
        )

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        from repro.bx.delta import renamed_change, translate_diff

        reverse = {v: k for k, v in self.mapping.items()}
        child_diff = translate_diff(
            view_diff, view_diff.table_name,
            lambda change: renamed_change(change, reverse),
        )
        return self.child.put_delta(tables, child_diff)

    def to_dict(self) -> dict:
        return {"kind": "rename", "child": self.child.to_dict(), "mapping": dict(self.mapping)}


@dataclass(frozen=True)
class Join(Query):
    """Natural equi-join of two child queries on the given columns.

    Two shapes exist, decided from the children's schemas:

    * **Keyed join** — the left child is keyed and the right child's primary
      key is contained in ``on``.  Every left row then matches at most one
      right row, the result keeps the left primary key, and diffs translate
      row by row (``get_delta``/``put_delta``) when the right child is a
      base-table scan.
    * **Non-keyed join** — anything else.  The result is keyless (a join can
      multiply rows per key) and delta translation raises
      :class:`~repro.errors.DeltaUnsupported`.
    """

    left: Query
    right: Query
    on: Tuple[str, ...]

    def _keyed_primary_key(self, left: Schema, right: Schema) -> Tuple[str, ...]:
        """The result's primary key, or () when the join is not keyed."""
        if (left.primary_key and right.primary_key
                and all(k in self.on for k in right.primary_key)):
            return left.primary_key
        return ()

    def execute(self, tables: Dict[str, Table]) -> Table:
        left = self.left.execute(tables)
        right = self.right.execute(tables)
        for column in self.on:
            if not left.schema.has_column(column) or not right.schema.has_column(column):
                raise SchemaError(f"join column {column!r} missing from an input")
        primary_key = self._keyed_primary_key(left.schema, right.schema)
        merged_schema = Schema(columns=left.schema.merge(right.schema).columns,
                               primary_key=primary_key)
        right_extra = [c for c in right.schema.column_names if c not in left.schema.column_names]
        index: Dict[Tuple, list] = {}
        for row in right:
            index.setdefault(tuple(row[c] for c in self.on), []).append(row)
        out_rows = []
        for row in left:
            key = tuple(row[c] for c in self.on)
            for match in index.get(key, ()):
                combined = row.to_dict()
                for column in right_extra:
                    combined[column] = match[column]
                out_rows.append(combined)
        return Table(f"{left.name}_join_{right.name}", merged_schema, out_rows)

    def output_schema(self, tables: Dict[str, Table]) -> Schema:
        left = self.left.output_schema(tables)
        right = self.right.output_schema(tables)
        for column in self.on:
            if not left.has_column(column) or not right.has_column(column):
                raise SchemaError(f"join column {column!r} missing from an input")
        return Schema(columns=left.merge(right).columns,
                      primary_key=self._keyed_primary_key(left, right))

    # -- keyed-join delta plumbing --------------------------------------------

    def _delta_reference(self, tables: Dict[str, Table]):
        """(reference table, enrichment columns, lookup) for the keyed delta
        path, or a :class:`DeltaUnsupported` explaining why there is none."""
        from repro.bx.delta import DeltaUnsupported as _Unsupported

        left = self.left.output_schema(tables)
        right = self.right.output_schema(tables)
        if not self._keyed_primary_key(left, right):
            raise DeltaUnsupported(
                "a non-keyed join multiplies rows per key; one input change can "
                "touch many output rows, so fall back to re-executing the join"
            )
        if not isinstance(self.right, Scan):
            raise DeltaUnsupported(
                "keyed-join delta needs a base-table reference side (a scan); "
                "a derived right child would have to be re-executed per change"
            )
        if self.right.table not in tables:
            raise UnknownTableError(f"unknown table {self.right.table!r}")
        reference = tables[self.right.table]
        right_extra = tuple(c for c in right.column_names if c not in left.column_names)

        def lookup(image):
            try:
                key = tuple(image[k] for k in reference.schema.primary_key)
            except KeyError as exc:
                raise _Unsupported(
                    f"join: change image lacks join column {exc.args[0]!r}"
                ) from None
            if any(v is None for v in key) or not reference.contains_key(key):
                return None
            candidate = reference.get(key).to_dict()
            for column in self.on:
                if column in image and candidate.get(column, image[column]) != image[column]:
                    return None
            return candidate

        return reference, right_extra, lookup

    def get_delta(self, tables: Dict[str, Table], diff: TableDiff) -> TableDiff:
        from repro.bx.delta import join_get_change, translate_diff

        reference, right_extra, lookup = self._delta_reference(tables)
        if diff.table_name == self.right.table:
            raise DeltaUnsupported(
                "the diff changes the join's reference side; re-execute the join"
            )
        child_diff = self.left.get_delta(tables, diff)
        return translate_diff(
            child_diff, child_diff.table_name,
            lambda change: join_get_change(change, right_extra, lookup, "join"),
        )

    def put_delta(self, tables: Dict[str, Table], view_diff: TableDiff) -> TableDiff:
        from repro.bx.delta import join_put_change, translate_diff
        from repro.bx.lens import DeletePolicy, InsertPolicy

        _, right_extra, lookup = self._delta_reference(tables)
        left_columns = self.left.output_schema(tables).column_names
        child_diff = translate_diff(
            view_diff, view_diff.table_name,
            lambda change: join_put_change(
                change, left_columns, right_extra, lookup,
                DeletePolicy.DELETE, InsertPolicy.INSERT_WITH_NULLS, "join"),
        )
        return self.left.put_delta(tables, child_diff)

    def to_dict(self) -> dict:
        return {
            "kind": "join",
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "on": list(self.on),
        }


def execute_query(query: Query, tables: Dict[str, Table], name: Optional[str] = None) -> Table:
    """Evaluate ``query`` and optionally rename the result table."""
    result = query.execute(tables)
    if name is not None:
        result = Table(name, result.schema, (row.to_dict() for row in result))
    return result


def projection_query(table: str, columns: Sequence[str]) -> Query:
    """Convenience constructor for the paper's typical view definition."""
    return Project(Scan(table), tuple(columns))
