"""Secondary hash indexes over tables.

Indexes are maintained *incrementally*: every :class:`Table` mutation tells
its indexes exactly which row was inserted, replaced or removed, so a lookup
after a point write costs O(changed rows) instead of an O(table) rebuild.
They accelerate the equality look-ups used by the sharing workflow (e.g. find
the record for a given patient id) and are benchmarked in the BX-scaling
experiment.

Only wholesale operations (``replace_all``/``clear``) and mutations the index
cannot order deterministically (a key move inside a keyless table) mark the
index stale for a lazy rebuild on the next read.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import UnknownColumnError
from repro.relational.row import Row
from repro.relational.table import Table


class HashIndex:
    """A hash index mapping column-value tuples to rows of one table.

    Bucket order always equals table row order, so answering an equality
    predicate from the index is observably identical to a full scan.
    """

    def __init__(self, table: Table, columns: Sequence[str]):
        for column in columns:
            if not table.schema.has_column(column):
                raise UnknownColumnError(
                    f"cannot index unknown column {column!r} of table {table.name!r}"
                )
        self.table_name = table.name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._buckets: Dict[Tuple[Any, ...], List[Row]] = {}
        self._table = table
        self._stale = False
        self.rebuild(table)

    def mark_stale(self) -> None:
        """Note a wholesale table change; the next read rebuilds lazily."""
        self._stale = True

    @property
    def is_stale(self) -> bool:
        return self._stale

    def _refresh_if_stale(self) -> None:
        if self._stale:
            self.rebuild(self._table)

    def rebuild(self, table: Table) -> None:
        """Rebuild the index from the table's current contents."""
        if table.name != self.table_name:
            raise ValueError(
                f"index built for table {self.table_name!r} cannot be rebuilt from {table.name!r}"
            )
        self._buckets = {}
        for row in table:
            key = tuple(row[c] for c in self.columns)
            self._buckets.setdefault(key, []).append(row)
        self._table = table
        self._stale = False

    # ------------------------------------------------------- incremental hooks

    def _key_of(self, row: Row) -> Optional[Tuple[Any, ...]]:
        """The bucket key of ``row``, or None when a value is unhashable."""
        key = tuple(row[c] for c in self.columns)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def note_insert(self, row: Row) -> None:
        """The table appended ``row``; append it to its bucket."""
        if self._stale:
            return
        key = self._key_of(row)
        if key is None:
            self.mark_stale()
            return
        self._buckets.setdefault(key, []).append(row)

    def note_delete(self, row: Row) -> None:
        """The table removed ``row``; drop one matching entry from its bucket."""
        if self._stale:
            return
        key = self._key_of(row)
        if key is None:
            self.mark_stale()
            return
        bucket = self._buckets.get(key)
        if not bucket:
            # The index drifted (should not happen); heal via rebuild.
            self.mark_stale()
            return
        try:
            bucket.remove(row)
        except ValueError:
            self.mark_stale()
            return
        if not bucket:
            del self._buckets[key]

    def note_update(self, old_row: Row, new_row: Row) -> None:
        """The table replaced ``old_row`` with ``new_row`` in place."""
        if self._stale:
            return
        old_key = self._key_of(old_row)
        new_key = self._key_of(new_row)
        if old_key is None or new_key is None:
            self.mark_stale()
            return
        if old_key == new_key:
            bucket = self._buckets.get(old_key)
            if not bucket:
                self.mark_stale()
                return
            try:
                bucket[bucket.index(old_row)] = new_row
            except ValueError:
                self.mark_stale()
            return
        # The indexed value changed: move the row between buckets, keeping
        # each bucket sorted by table position so lookups stay scan-ordered.
        self.note_delete(old_row)
        if self._stale:
            return
        position = self._position_of(new_row)
        if position is None:
            self.mark_stale()
            return
        bucket = self._buckets.setdefault(new_key, [])
        insert_at = len(bucket)
        for index, member in enumerate(bucket):
            member_position = self._position_of(member)
            if member_position is None:
                self.mark_stale()
                return
            if member_position > position:
                insert_at = index
                break
        bucket.insert(insert_at, new_row)

    def _position_of(self, row: Row) -> Optional[int]:
        """The row's position in the backing table (keyed tables only)."""
        if not self._table.schema.primary_key:
            return None
        return self._table.position_of_key(row.key(self._table.schema.primary_key))

    # ------------------------------------------------------------------ reads

    def lookup(self, *values: Any) -> List[Row]:
        """Rows whose indexed columns equal ``values``."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"index on {self.columns} expects {len(self.columns)} values, got {len(values)}"
            )
        self._refresh_if_stale()
        return list(self._buckets.get(tuple(values), ()))

    def contains(self, *values: Any) -> bool:
        return bool(self.lookup(*values))

    def __len__(self) -> int:
        self._refresh_if_stale()
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key tuples currently indexed."""
        self._refresh_if_stale()
        return len(self._buckets)
