"""Secondary hash indexes over tables.

Indexes are maintained explicitly by their owner (the :class:`Database`
refreshes them after committed writes).  They accelerate the equality
look-ups used by the sharing workflow (e.g. find the record for a given
patient id) and are benchmarked in the BX-scaling experiment.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import UnknownColumnError
from repro.relational.row import Row
from repro.relational.table import Table


class HashIndex:
    """A hash index mapping column-value tuples to rows of one table."""

    def __init__(self, table: Table, columns: Sequence[str]):
        for column in columns:
            if not table.schema.has_column(column):
                raise UnknownColumnError(
                    f"cannot index unknown column {column!r} of table {table.name!r}"
                )
        self.table_name = table.name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._buckets: Dict[Tuple[Any, ...], List[Row]] = {}
        self._table = table
        self._stale = False
        self.rebuild(table)

    def mark_stale(self) -> None:
        """Note that the backing table mutated; the next read rebuilds lazily."""
        self._stale = True

    @property
    def is_stale(self) -> bool:
        return self._stale

    def _refresh_if_stale(self) -> None:
        if self._stale:
            self.rebuild(self._table)

    def rebuild(self, table: Table) -> None:
        """Rebuild the index from the table's current contents."""
        if table.name != self.table_name:
            raise ValueError(
                f"index built for table {self.table_name!r} cannot be rebuilt from {table.name!r}"
            )
        self._buckets = {}
        for row in table:
            key = tuple(row[c] for c in self.columns)
            self._buckets.setdefault(key, []).append(row)
        self._table = table
        self._stale = False

    def lookup(self, *values: Any) -> List[Row]:
        """Rows whose indexed columns equal ``values``."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"index on {self.columns} expects {len(self.columns)} values, got {len(values)}"
            )
        self._refresh_if_stale()
        return list(self._buckets.get(tuple(values), ()))

    def contains(self, *values: Any) -> bool:
        return bool(self.lookup(*values))

    def __len__(self) -> int:
        self._refresh_if_stale()
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key tuples currently indexed."""
        self._refresh_if_stale()
        return len(self._buckets)
