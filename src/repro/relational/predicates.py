"""Composable row predicates used by selections and lens conditions.

Predicates are small serialisable objects (rather than opaque lambdas) so
that queries, sharing agreements and contract payloads can describe them,
log them in the WAL and reproduce them across peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence, Tuple


class Predicate:
    """Base class for row predicates."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Return True if ``row`` satisfies this predicate."""
        raise NotImplementedError

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return self.evaluate(row)

    # Composition sugar -----------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: dict) -> "Predicate":
        """Rebuild a predicate from its serialised form."""
        kind = payload["kind"]
        builders = {
            "true": lambda p: TruePredicate(),
            "eq": lambda p: Eq(p["column"], p["value"]),
            "ne": lambda p: Ne(p["column"], p["value"]),
            "lt": lambda p: Lt(p["column"], p["value"]),
            "le": lambda p: Le(p["column"], p["value"]),
            "gt": lambda p: Gt(p["column"], p["value"]),
            "ge": lambda p: Ge(p["column"], p["value"]),
            "in": lambda p: In(p["column"], tuple(p["values"])),
            "between": lambda p: Between(p["column"], p["low"], p["high"]),
            "contains": lambda p: Contains(p["column"], p["value"]),
            "isnull": lambda p: IsNull(p["column"]),
            "and": lambda p: And(*[Predicate.from_dict(c) for c in p["children"]]),
            "or": lambda p: Or(*[Predicate.from_dict(c) for c in p["children"]]),
            "not": lambda p: Not(Predicate.from_dict(p["child"])),
        }
        if kind not in builders:
            raise ValueError(f"unknown predicate kind {kind!r}")
        return builders[kind](payload)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def to_dict(self) -> dict:
        return {"kind": "true"}


@dataclass(frozen=True)
class _ColumnValuePredicate(Predicate):
    column: str
    value: Any

    kind = "abstract"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "column": self.column, "value": self.value}


class Eq(_ColumnValuePredicate):
    """``row[column] == value``"""

    kind = "eq"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) == self.value


class Ne(_ColumnValuePredicate):
    """``row[column] != value``"""

    kind = "ne"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) != self.value


class Lt(_ColumnValuePredicate):
    """``row[column] < value`` (None never matches)."""

    kind = "lt"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current < self.value


class Le(_ColumnValuePredicate):
    """``row[column] <= value`` (None never matches)."""

    kind = "le"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current <= self.value


class Gt(_ColumnValuePredicate):
    """``row[column] > value`` (None never matches)."""

    kind = "gt"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current > self.value


class Ge(_ColumnValuePredicate):
    """``row[column] >= value`` (None never matches)."""

    kind = "ge"

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and current >= self.value


@dataclass(frozen=True)
class In(Predicate):
    """``row[column]`` is one of ``values``."""

    column: str
    values: Tuple[Any, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) in self.values

    def to_dict(self) -> dict:
        return {"kind": "in", "column": self.column, "values": list(self.values)}


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= row[column] <= high`` (None never matches)."""

    column: str
    low: Any
    high: Any

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        return current is not None and self.low <= current <= self.high

    def to_dict(self) -> dict:
        return {"kind": "between", "column": self.column, "low": self.low, "high": self.high}


@dataclass(frozen=True)
class Contains(Predicate):
    """``value`` is a substring / member of ``row[column]``."""

    column: str
    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        current = row.get(self.column)
        if current is None:
            return False
        try:
            return self.value in current
        except TypeError:
            return False

    def to_dict(self) -> dict:
        return {"kind": "contains", "column": self.column, "value": self.value}


@dataclass(frozen=True)
class IsNull(Predicate):
    """``row[column] is None``."""

    column: str

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) is None

    def to_dict(self) -> dict:
        return {"kind": "isnull", "column": self.column}


class And(Predicate):
    """Conjunction of child predicates."""

    def __init__(self, *children: Predicate):
        self.children: Tuple[Predicate, ...] = tuple(children)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return all(child.evaluate(row) for child in self.children)

    def to_dict(self) -> dict:
        return {"kind": "and", "children": [c.to_dict() for c in self.children]}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("and", self.children))


class Or(Predicate):
    """Disjunction of child predicates."""

    def __init__(self, *children: Predicate):
        self.children: Tuple[Predicate, ...] = tuple(children)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return any(child.evaluate(row) for child in self.children)

    def to_dict(self) -> dict:
        return {"kind": "or", "children": [c.to_dict() for c in self.children]}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.children == other.children

    def __hash__(self) -> int:
        return hash(("or", self.children))


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.child.evaluate(row)

    def to_dict(self) -> dict:
        return {"kind": "not", "child": self.child.to_dict()}


def columns_referenced(predicate: Predicate) -> Tuple[str, ...]:
    """Return the set of column names a predicate mentions, in first-seen order."""
    seen: list = []

    def visit(node: Predicate) -> None:
        if isinstance(node, (And, Or)):
            for child in node.children:
                visit(child)
        elif isinstance(node, Not):
            visit(node.child)
        elif isinstance(node, TruePredicate):
            return
        else:
            column = getattr(node, "column", None)
            if column is not None and column not in seen:
                seen.append(column)

    visit(predicate)
    return tuple(seen)
