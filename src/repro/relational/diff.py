"""Row-level diffs between two states of a keyed table.

Diffs drive two parts of the reproduction:

* the update workflow transmits *only* what changed between the old and new
  shared view (the "send updated data" message of Fig. 2/Fig. 5);
* the audit trail and benchmarks report how many rows/attributes each
  propagation step touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SchemaError
from repro.relational.table import Table


@dataclass(frozen=True)
class RowChange:
    """One changed row.

    ``kind`` is ``"insert"``, ``"delete"`` or ``"update"``; for updates,
    ``changed_columns`` lists the columns whose values differ.
    """

    kind: str
    key: Tuple[Any, ...]
    before: Optional[Mapping[str, Any]]
    after: Optional[Mapping[str, Any]]
    changed_columns: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "key": list(self.key),
            "before": dict(self.before) if self.before is not None else None,
            "after": dict(self.after) if self.after is not None else None,
            "changed_columns": list(self.changed_columns),
        }

    @staticmethod
    def from_dict(payload: dict) -> "RowChange":
        return RowChange(
            kind=payload["kind"],
            key=tuple(payload["key"]),
            before=payload.get("before"),
            after=payload.get("after"),
            changed_columns=tuple(payload.get("changed_columns", ())),
        )


@dataclass(frozen=True)
class TableDiff:
    """The full set of row changes between two table states."""

    table_name: str
    changes: Tuple[RowChange, ...]

    def __len__(self) -> int:
        return len(self.changes)

    @property
    def is_empty(self) -> bool:
        return not self.changes

    @property
    def inserted(self) -> Tuple[RowChange, ...]:
        return tuple(c for c in self.changes if c.kind == "insert")

    @property
    def deleted(self) -> Tuple[RowChange, ...]:
        return tuple(c for c in self.changes if c.kind == "delete")

    @property
    def updated(self) -> Tuple[RowChange, ...]:
        return tuple(c for c in self.changes if c.kind == "update")

    @property
    def touched_columns(self) -> Tuple[str, ...]:
        """All columns changed by any update, plus all columns of inserts/deletes."""
        seen: List[str] = []
        for change in self.changes:
            if change.kind == "update":
                columns = change.changed_columns
            else:
                source = change.after if change.after is not None else change.before
                columns = tuple(source or ())
            for column in columns:
                if column not in seen:
                    seen.append(column)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "table_name": self.table_name,
            "changes": [change.to_dict() for change in self.changes],
        }

    @staticmethod
    def from_dict(payload: dict) -> "TableDiff":
        return TableDiff(
            table_name=payload["table_name"],
            changes=tuple(RowChange.from_dict(c) for c in payload.get("changes", ())),
        )

    def summary(self) -> Dict[str, int]:
        return {
            "inserted": len(self.inserted),
            "deleted": len(self.deleted),
            "updated": len(self.updated),
        }


def diff_tables(before: Table, after: Table) -> TableDiff:
    """Compute the keyed row-level diff from ``before`` to ``after``.

    Both tables must share the same primary key.  Keyless tables fall back to
    a positional diff where the key is the row index.
    """
    if before.schema.column_names != after.schema.column_names:
        raise SchemaError(
            "cannot diff tables with different columns: "
            f"{before.schema.column_names} vs {after.schema.column_names}"
        )
    changes: List[RowChange] = []
    if before.schema.primary_key and before.schema.primary_key == after.schema.primary_key:
        key_columns = before.schema.primary_key
        old = {row.key(key_columns): row for row in before}
        new = {row.key(key_columns): row for row in after}
        for key in old:
            if key not in new:
                changes.append(RowChange("delete", key, old[key].to_dict(), None))
        for key, row in new.items():
            if key not in old:
                changes.append(RowChange("insert", key, None, row.to_dict()))
            elif old[key] != row:
                changed = tuple(
                    column for column in before.schema.column_names
                    if old[key][column] != row[column]
                )
                changes.append(
                    RowChange("update", key, old[key].to_dict(), row.to_dict(), changed)
                )
    else:
        old_rows = list(before)
        new_rows = list(after)
        for position in range(max(len(old_rows), len(new_rows))):
            old_row = old_rows[position] if position < len(old_rows) else None
            new_row = new_rows[position] if position < len(new_rows) else None
            key = (position,)
            if old_row is None and new_row is not None:
                changes.append(RowChange("insert", key, None, new_row.to_dict()))
            elif new_row is None and old_row is not None:
                changes.append(RowChange("delete", key, old_row.to_dict(), None))
            elif old_row != new_row:
                changed = tuple(
                    column for column in before.schema.column_names
                    if old_row[column] != new_row[column]
                )
                changes.append(
                    RowChange("update", key, old_row.to_dict(), new_row.to_dict(), changed)
                )
    return TableDiff(table_name=before.name, changes=tuple(changes))


def apply_diff(table: Table, diff: TableDiff) -> None:
    """Apply a keyed diff to ``table`` in place.

    The sharing peer that receives "updated data" applies the diff to its own
    copy of the shared table before running the BX ``put``.  Delegates to
    :meth:`Table.apply_diff`, which validates the diff against the current
    contents (raising :class:`~repro.errors.DiffConflictError` on key
    mismatches) and maintains every index incrementally.
    """
    table.apply_diff(diff)
