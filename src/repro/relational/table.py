"""Tables: the unit of storage and the carrier of lens transformations.

A :class:`Table` owns a :class:`~repro.relational.schema.Schema` and a list of
:class:`~repro.relational.row.Row` objects.  Tables enforce type constraints,
nullability and primary-key uniqueness on every mutation, support keyed
lookups/updates/deletes, and can produce independent snapshots so that lenses
and transactions never alias live state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.crypto.hashing import hash_payload
from repro.errors import (
    ConstraintViolation,
    DiffConflictError,
    RowNotFoundError,
    SchemaError,
    UnknownColumnError,
)
from repro.relational.predicates import Eq, Predicate, TruePredicate
from repro.relational.row import Row
from repro.relational.schema import Schema


class Table:
    """A typed, optionally keyed, in-memory table."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Mapping[str, Any]] = ()):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: List[Row] = []
        self._key_index: Dict[Tuple[Any, ...], int] = {}
        #: columns tuple → secondary hash index, maintained in place per write.
        self._secondary_indexes: Dict[Tuple[str, ...], "HashIndex"] = {}  # noqa: F821
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ basics

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        """Two tables are equal when they hold the same rows over the same columns.

        Row order is ignored for keyed tables (the key defines identity) and
        significant for keyless tables.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema.column_names != other.schema.column_names:
            return False
        if self.schema.primary_key and self.schema.primary_key == other.schema.primary_key:
            mine = {row.key(self.schema.primary_key): row for row in self._rows}
            theirs = {row.key(other.schema.primary_key): row for row in other._rows}
            return mine == theirs
        return self._rows == other._rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={list(self.schema.column_names)}, rows={len(self)})"

    @property
    def rows(self) -> Tuple[Row, ...]:
        """An immutable snapshot of the current rows."""
        return tuple(self._rows)

    @property
    def primary_key(self) -> Tuple[str, ...]:
        return self.schema.primary_key

    def fingerprint(self) -> str:
        """A content hash of the table (schema + rows), independent of row order
        for keyed tables."""
        if self.schema.primary_key:
            payload_rows = sorted(
                (row.to_dict() for row in self._rows),
                key=lambda r: repr([r[k] for k in self.schema.primary_key]),
            )
        else:
            payload_rows = [row.to_dict() for row in self._rows]
        return hash_payload({"schema": self.schema.to_dict(), "rows": payload_rows})

    # ------------------------------------------------------------------ checks

    def _validate(self, values: Mapping[str, Any]) -> Row:
        """Validate and normalise a row mapping against the schema."""
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise UnknownColumnError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        normalised: Dict[str, Any] = {}
        for column in self.schema.columns:
            value = values.get(column.name)
            value = column.dtype.coerce(value)
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            if not column.dtype.validates(value):
                raise ConstraintViolation(
                    f"value {value!r} is not a valid {column.dtype.value} "
                    f"for column {column.name!r}"
                )
            normalised[column.name] = value
        return Row(normalised)

    def _key_of(self, row: Mapping[str, Any]) -> Optional[Tuple[Any, ...]]:
        if not self.schema.primary_key:
            return None
        return tuple(row[name] for name in self.schema.primary_key)

    # ----------------------------------------------------------------- indexes

    def add_index(self, columns: Sequence[str]) -> "HashIndex":  # noqa: F821
        """Create (or return) a secondary hash index on ``columns``.

        Point writes maintain the index in place (O(changed rows)); only the
        wholesale ``replace_all``/``clear`` mark it stale for a lazy rebuild
        on the next lookup.
        """
        from repro.relational.index import HashIndex

        key = tuple(columns)
        if key not in self._secondary_indexes:
            self._secondary_indexes[key] = HashIndex(self, key)
        return self._secondary_indexes[key]

    def has_index(self, columns: Sequence[str]) -> bool:
        return tuple(columns) in self._secondary_indexes

    def index_on(self, columns: Sequence[str]) -> "HashIndex":  # noqa: F821
        key = tuple(columns)
        if key not in self._secondary_indexes:
            raise UnknownColumnError(f"no index on {self.name!r}{key!r}")
        return self._secondary_indexes[key]

    @property
    def indexed_columns(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(self._secondary_indexes)

    def _touch_indexes(self) -> None:
        for index in self._secondary_indexes.values():
            index.mark_stale()

    def _indexes_note_insert(self, row: Row) -> None:
        for index in self._secondary_indexes.values():
            index.note_insert(row)

    def _indexes_note_delete(self, row: Row) -> None:
        for index in self._secondary_indexes.values():
            index.note_delete(row)

    def _indexes_note_update(self, old_row: Row, new_row: Row) -> None:
        for index in self._secondary_indexes.values():
            index.note_update(old_row, new_row)

    def position_of_key(self, key: Sequence[Any]) -> Optional[int]:
        """The row position of a primary-key tuple, or None when absent."""
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        return self._key_index.get(key_tuple)

    # ------------------------------------------------------------------ writes

    def insert(self, values: Mapping[str, Any]) -> Row:
        """Insert one row, returning the stored (normalised) row."""
        row = self._validate(values)
        key = self._key_of(row)
        if key is not None:
            if key in self._key_index:
                raise ConstraintViolation(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._key_index[key] = len(self._rows)
        self._rows.append(row)
        self._indexes_note_insert(row)
        return row

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> List[Row]:
        """Insert several rows; fails atomically per row (not per batch)."""
        return [self.insert(row) for row in rows]

    def update_by_key(self, key: Sequence[Any], updates: Mapping[str, Any]) -> Row:
        """Update the row identified by its primary key value(s)."""
        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        if key_tuple not in self._key_index:
            raise RowNotFoundError(f"no row with key {key_tuple!r} in table {self.name!r}")
        position = self._key_index[key_tuple]
        current = self._rows[position]
        candidate = self._validate(current.merged(updates).to_dict())
        new_key = self._key_of(candidate)
        if new_key != key_tuple:
            if new_key in self._key_index:
                raise ConstraintViolation(
                    f"primary key change collides with existing key {new_key!r}"
                )
            del self._key_index[key_tuple]
            self._key_index[new_key] = position
        self._rows[position] = candidate
        self._indexes_note_update(current, candidate)
        return candidate

    def update_where(self, predicate: Predicate, updates: Mapping[str, Any]) -> int:
        """Update every row matching ``predicate``; returns the number updated."""
        count = 0
        for position, row in enumerate(self._rows):
            if not predicate.evaluate(row):
                continue
            candidate = self._validate(row.merged(updates).to_dict())
            old_key = self._key_of(row)
            new_key = self._key_of(candidate)
            if old_key != new_key and new_key is not None:
                if new_key in self._key_index:
                    raise ConstraintViolation(
                        f"primary key change collides with existing key {new_key!r}"
                    )
                if old_key is not None:
                    del self._key_index[old_key]
                self._key_index[new_key] = position
            self._rows[position] = candidate
            self._indexes_note_update(row, candidate)
            count += 1
        return count

    def delete_by_key(self, key: Sequence[Any]) -> Row:
        """Delete the row identified by its primary key value(s)."""
        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        if key_tuple not in self._key_index:
            raise RowNotFoundError(f"no row with key {key_tuple!r} in table {self.name!r}")
        position = self._key_index.pop(key_tuple)
        removed = self._rows.pop(position)
        self._reindex()
        self._indexes_note_delete(removed)
        return removed

    def delete_where(self, predicate: Predicate) -> int:
        """Delete every row matching ``predicate``; returns the number removed."""
        kept: List[Row] = []
        removed: List[Row] = []
        for row in self._rows:
            (removed if predicate.evaluate(row) else kept).append(row)
        self._rows = kept
        self._reindex()
        for row in removed:
            self._indexes_note_delete(row)
        return len(removed)

    def clear(self) -> None:
        """Remove every row."""
        self._rows = []
        self._key_index = {}
        self._touch_indexes()

    def replace_all(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Atomically replace the table contents with ``rows``.

        Used by the lens ``put`` direction: the updated source replaces the
        previous contents in one step.  If any new row is invalid the table is
        left unchanged.
        """
        staged = Table(self.name, self.schema, rows)
        self._rows = list(staged._rows)
        self._key_index = dict(staged._key_index)
        self._touch_indexes()

    def _reindex(self) -> None:
        self._key_index = {}
        if not self.schema.primary_key:
            return
        for position, row in enumerate(self._rows):
            self._key_index[self._key_of(row)] = position

    # -------------------------------------------------------------------- diffs

    def apply_diff(self, diff: "TableDiff") -> None:  # noqa: F821
        """Apply a keyed row-level diff in place, atomically, maintaining
        every index.

        This is the receiving half of the delta-propagation path: instead of
        replacing the whole table, only the rows named by ``diff`` are
        touched, and both the primary-key index and every secondary hash
        index are updated from the same changes.  The diff applies
        all-or-nothing: if any change fails, the already-applied prefix is
        rolled back (matching the seed path, whose whole-table replace never
        installed on failure).

        Raises :class:`~repro.errors.DiffConflictError` when the diff
        disagrees with the current contents: an insert for an existing key,
        an update/delete for a missing key, or an update whose ``after``
        image lacks one of its ``changed_columns``.
        """
        if not self.schema.primary_key:
            raise SchemaError(f"apply_diff requires a keyed table, {self.name!r} has no key")
        #: Inverse operations of the applied prefix, newest last.
        undo: List[Tuple[str, Any, Any]] = []
        try:
            for change in diff.changes:
                self._apply_one_change(change, undo)
        except Exception:
            for kind, key, payload in reversed(undo):
                if kind == "delete":
                    self.delete_by_key(key)
                elif kind == "insert":
                    self.insert(payload)
                else:
                    self.update_by_key(key, payload)
            raise

    def _apply_one_change(self, change: "RowChange",  # noqa: F821
                          undo: List[Tuple[str, Any, Any]]) -> None:
        """Apply one diff change, appending its inverse operation to ``undo``."""
        key_tuple = tuple(change.key)
        if change.kind == "insert":
            after = dict(change.after or {})
            staged = self._validate(after)
            staged_key = self._key_of(staged)
            if staged_key in self._key_index:
                raise DiffConflictError(
                    f"diff inserts key {staged_key!r} which already exists "
                    f"in table {self.name!r}"
                )
            self.insert(after)
            undo.append(("delete", staged_key, None))
        elif change.kind == "delete":
            if key_tuple not in self._key_index:
                raise DiffConflictError(
                    f"diff deletes key {key_tuple!r} which is absent "
                    f"from table {self.name!r}"
                )
            removed = self.delete_by_key(key_tuple)
            undo.append(("insert", key_tuple, removed.to_dict()))
        elif change.kind == "update":
            if key_tuple not in self._key_index:
                raise DiffConflictError(
                    f"diff updates key {key_tuple!r} which is absent "
                    f"from table {self.name!r}"
                )
            after = change.after or {}
            unknown = [c for c in change.changed_columns
                       if not self.schema.has_column(c)]
            if unknown:
                raise UnknownColumnError(
                    f"diff changes unknown column(s) {unknown} of table {self.name!r}"
                )
            missing = [c for c in change.changed_columns if c not in after]
            if missing:
                raise DiffConflictError(
                    f"diff update for key {key_tuple!r} lacks values for "
                    f"changed column(s) {missing}"
                )
            previous = self._rows[self._key_index[key_tuple]]
            updated = self.update_by_key(
                key_tuple, {c: after[c] for c in change.changed_columns})
            undo.append(("update", self._key_of(updated), previous.to_dict()))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown change kind {change.kind!r}")

    def diff_for_update(self, key: Sequence[Any], updates: Mapping[str, Any]) -> "TableDiff":  # noqa: F821
        """The :class:`TableDiff` that ``update_by_key(key, updates)`` would
        cause, computed in O(1) without snapshotting the table.

        Validates exactly like :meth:`update_by_key` (missing key, constraint
        and key-collision checks) but leaves the table untouched.  A key
        change is represented as a delete+insert pair, matching
        :func:`~repro.relational.diff.diff_tables`.
        """
        from repro.relational.diff import RowChange, TableDiff

        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        if key_tuple not in self._key_index:
            raise RowNotFoundError(f"no row with key {key_tuple!r} in table {self.name!r}")
        current = self._rows[self._key_index[key_tuple]]
        candidate = self._validate(current.merged(updates).to_dict())
        changed = tuple(
            column for column in self.schema.column_names
            if current[column] != candidate[column]
        )
        if not changed:
            return TableDiff(table_name=self.name, changes=())
        new_key = self._key_of(candidate)
        if new_key != key_tuple:
            if new_key in self._key_index:
                raise ConstraintViolation(
                    f"primary key change collides with existing key {new_key!r}"
                )
            return TableDiff(table_name=self.name, changes=(
                RowChange("delete", key_tuple, current.to_dict(), None),
                RowChange("insert", new_key, None, candidate.to_dict()),
            ))
        return TableDiff(table_name=self.name, changes=(
            RowChange("update", key_tuple, current.to_dict(), candidate.to_dict(), changed),
        ))

    def diff_for_insert(self, values: Mapping[str, Any]) -> "TableDiff":  # noqa: F821
        """The :class:`TableDiff` that ``insert(values)`` would cause (O(1))."""
        from repro.relational.diff import RowChange, TableDiff

        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        candidate = self._validate(values)
        key = self._key_of(candidate)
        if key in self._key_index:
            raise ConstraintViolation(
                f"duplicate primary key {key!r} in table {self.name!r}"
            )
        return TableDiff(table_name=self.name, changes=(
            RowChange("insert", key, None, candidate.to_dict()),
        ))

    def diff_for_delete(self, key: Sequence[Any]) -> "TableDiff":  # noqa: F821
        """The :class:`TableDiff` that ``delete_by_key(key)`` would cause (O(1))."""
        from repro.relational.diff import RowChange, TableDiff

        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        if key_tuple not in self._key_index:
            raise RowNotFoundError(f"no row with key {key_tuple!r} in table {self.name!r}")
        current = self._rows[self._key_index[key_tuple]]
        return TableDiff(table_name=self.name, changes=(
            RowChange("delete", key_tuple, current.to_dict(), None),
        ))

    # ------------------------------------------------------------------- reads

    def get(self, key: Sequence[Any]) -> Row:
        """Return the row with the given primary key value(s)."""
        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        if key_tuple not in self._key_index:
            raise RowNotFoundError(f"no row with key {key_tuple!r} in table {self.name!r}")
        return self._rows[self._key_index[key_tuple]]

    def contains_key(self, key: Sequence[Any]) -> bool:
        key_tuple = tuple(key) if isinstance(key, (list, tuple)) else (key,)
        return key_tuple in self._key_index

    def select(self, predicate: Predicate = None) -> List[Row]:
        """Return all rows matching ``predicate`` (all rows when omitted).

        An equality predicate on an indexed column is answered from the hash
        index instead of scanning every row.
        """
        predicate = predicate or TruePredicate()
        fast = self._index_fast_path(predicate)
        if fast is not None:
            return fast
        return [row for row in self._rows if predicate.evaluate(row)]

    def _index_fast_path(self, predicate: Predicate) -> Optional[List[Row]]:
        """Answer ``Eq`` predicates from a secondary index when one exists.

        Returns None when no index applies (including unhashable values, which
        fall back to the scan).  Bucket order equals table row order, so the
        fast path is observably identical to the scan.
        """
        if not isinstance(predicate, Eq):
            return None
        key = (predicate.column,)
        if key not in self._secondary_indexes:
            return None
        try:
            return self._secondary_indexes[key].lookup(predicate.value)
        except TypeError:
            return None

    def first(self, predicate: Predicate = None) -> Optional[Row]:
        """The first row matching ``predicate``, or None."""
        predicate = predicate or TruePredicate()
        for row in self._rows:
            if predicate.evaluate(row):
                return row
        return None

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in row order."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(f"unknown column {column!r} in table {self.name!r}")
        return [row[column] for row in self._rows]

    def keys(self) -> List[Tuple[Any, ...]]:
        """All primary-key tuples, in row order."""
        if not self.schema.primary_key:
            raise ConstraintViolation(f"table {self.name!r} has no primary key")
        return [self._key_of(row) for row in self._rows]

    # -------------------------------------------------------------- derivation

    def snapshot(self, name: Optional[str] = None) -> "Table":
        """An independent deep copy of this table."""
        return Table(name or self.name, self.schema, (row.to_dict() for row in self._rows))

    def project(self, columns: Sequence[str], name: Optional[str] = None,
                distinct: bool = True) -> "Table":
        """Relational projection onto ``columns``.

        When ``distinct`` is true (the default — matching relational-algebra
        semantics used by the paper's views such as D2 → D23), duplicate
        projected rows are collapsed.
        """
        projected_schema = self.schema.project(columns)
        seen: Dict[Tuple, None] = {}
        out_rows: List[Dict[str, Any]] = []
        for row in self._rows:
            projected = row.project(columns).to_dict()
            marker = tuple(sorted(projected.items(), key=lambda kv: kv[0]))
            if distinct and marker in seen:
                continue
            seen[marker] = None
            out_rows.append(projected)
        return Table(name or f"{self.name}_proj", projected_schema, out_rows)

    def where(self, predicate: Predicate, name: Optional[str] = None) -> "Table":
        """Relational selection."""
        return Table(name or f"{self.name}_sel", self.schema, (r.to_dict() for r in self.select(predicate)))

    def rename_columns(self, mapping: Dict[str, str], name: Optional[str] = None) -> "Table":
        """Relational rename."""
        renamed_schema = self.schema.rename(mapping)
        return Table(
            name or f"{self.name}_ren",
            renamed_schema,
            (row.rename(mapping).to_dict() for row in self._rows),
        )

    def order_by(self, columns: Sequence[str], reverse: bool = False) -> List[Row]:
        """Rows sorted by the given columns (None sorts first)."""
        for column in columns:
            if not self.schema.has_column(column):
                raise UnknownColumnError(f"unknown column {column!r}")

        def sort_key(row: Row):
            return tuple((row[c] is not None, row[c]) for c in columns)

        return sorted(self._rows, key=sort_key, reverse=reverse)

    def map_rows(self, transform: Callable[[Row], Mapping[str, Any]],
                 name: Optional[str] = None) -> "Table":
        """Apply ``transform`` to every row, producing a new table with the same schema."""
        return Table(name or self.name, self.schema, (transform(row) for row in self._rows))

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "schema": self.schema.to_dict(),
            "rows": [row.to_dict() for row in self._rows],
        }
        if self._secondary_indexes:
            # Persist the column sets (not the buckets — those rebuild) so a
            # reloaded table keeps its Eq fast path.
            payload["indexes"] = [list(columns) for columns in self._secondary_indexes]
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Table":
        table = Table(
            name=payload["name"],
            schema=Schema.from_dict(payload["schema"]),
            rows=payload.get("rows", ()),
        )
        for columns in payload.get("indexes", ()):
            table.add_index(columns)
        return table

    def pretty(self, max_rows: int = 20) -> str:
        """A plain-text rendering of the table, used by examples and reports."""
        names = list(self.schema.column_names)
        rows = [[str(row[c]) if row[c] is not None else "" for c in names]
                for row in self._rows[:max_rows]]
        widths = [len(n) for n in names]
        for row in rows:
            widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        separator = "-+-".join("-" * w for w in widths)
        body = [" | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows]
        lines = [f"{self.name} ({len(self)} rows)", header, separator] + body
        if len(self._rows) > max_rows:
            lines.append(f"... {len(self._rows) - max_rows} more rows")
        return "\n".join(lines)
