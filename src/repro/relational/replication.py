"""WAL-shipping read replicas.

The durability module (PR 5/8) already proves a JSONL WAL tail replays to
byte-identical state; this module turns that invariant into *live followers*:

* the :class:`SegmentShipper` sits on the writer.  At every commit boundary
  it reads the entries appended to each durable peer's WAL since the last
  shipment and publishes them — plus the commit's :class:`TableDiff` notices
  for cache pre-warming — to every attached replica.  Shipping is throttled
  by ``ship_interval`` (simulated seconds), which is the knob that creates
  *measurable* replica staleness;
* each :class:`ReadReplica` holds a follower :class:`Database` per primary
  peer, bootstrapped from the checkpoint manifest's snapshot and replayed
  forward with :func:`~repro.relational.durability.replay_entry` — exactly
  the recovery path, run continuously.  A replica knows the simulated time
  it has *replayed through*, so its staleness against the primary's last
  commit is a measured quantity, not an estimate;
* the :class:`ReplicaRouter` fans ``ReadViewRequest``\\ s across the fleet:
  each replica models a single-threaded service lane (deterministic queueing
  on the simulated clock), the router picks the least-loaded replica whose
  lag is within the configured bound, and falls back to the primary when no
  replica qualifies.  Writes never touch a replica.

Checkpoints on the primary truncate WAL segments; a replica whose cursor
trails the retained WAL (``backend.covers(cursor)`` is false) is
re-bootstrapped from the manifest instead of replaying a silently
incomplete tail — the segment-boundary edge that makes
``read_entries(since=...)`` load-bearing.
"""

from __future__ import annotations

import pathlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.tracer import NULL_TRACER
from repro.relational.database import Database
from repro.relational.durability import read_manifest, replay_entry
from repro.relational.persistence import load_database
from repro.relational.wal import WalEntry


class ReplicationError(ReproError):
    """A replica observed an impossible shipment (gap, unknown peer)."""


@dataclass(frozen=True)
class DiffNotice:
    """One commit's shared-table change, shipped for cache pre-warming."""

    metadata_id: str
    operation: str
    peers: Tuple[str, ...]


@dataclass(frozen=True)
class ShippedBatch:
    """One peer's WAL tail as published by the shipper.

    ``committed_at`` is the primary's simulated time at the shipment — the
    replica's ``replayed_through`` watermark after applying the batch.
    """

    peer: str
    entries: Tuple[WalEntry, ...]
    committed_at: float


class ReadReplica:
    """A read-only follower of every durable primary peer.

    Not a :class:`~repro.core.peer.Peer`: it holds no ledger node, signs
    nothing and accepts no writes — it replays the primary peers' WAL
    entries into follower databases and serves view reads from them.
    """

    def __init__(self, name: str, clock,
                 view_name_for: Callable[[str, str], str],
                 read_service_time: float = 0.0,
                 tracer=None, cache=None):
        self.name = name
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.read_service_time = read_service_time
        self._view_name_for = view_name_for
        #: Optional ViewCache pre-warmed from shipped diff notices.
        self.cache = cache
        if cache is not None:
            cache.clock = clock
        self._databases: Dict[str, Database] = {}
        self._applied: Dict[str, int] = {}
        #: Simulated time this replica has replayed the primary through.
        self.replayed_through = 0.0
        #: The service lane: when this replica next becomes free to serve.
        self.next_free_at = 0.0
        self.reads_served = 0
        self.entries_replayed = 0
        self.bootstraps = 0
        self._lock = threading.RLock()

    # --------------------------------------------------------------- replaying

    def applied_sequence(self, peer: str) -> int:
        with self._lock:
            return self._applied.get(peer, 0)

    @property
    def peer_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._databases))

    def bootstrap(self, peer: str, state_dir, backend=None,
                  now: float = 0.0) -> int:
        """(Re-)seed the follower for ``peer`` from its checkpoint manifest.

        Loads the manifest's snapshot (or starts empty when none exists)
        and, when the peer's live ``backend`` is given, replays the retained
        WAL tail past the checkpoint — the same recipe as
        :func:`~repro.relational.durability.recover`, against the primary's
        live segment files instead of a post-crash copy.  Returns the
        sequence the follower is caught up to.
        """
        state_path = pathlib.Path(state_dir)
        manifest = read_manifest(state_path)
        with self.tracer.span("replica.bootstrap", replica=self.name,
                              peer=peer) as span:
            if manifest is None:
                database = Database(f"{peer}_db")
                applied = 0
            else:
                snapshot_name = manifest.get("snapshot")
                if snapshot_name:
                    database = load_database(state_path / snapshot_name)
                else:
                    database = Database(manifest.get("name", f"{peer}_db"))
                applied = int(manifest.get("checkpoint_sequence", 0))
            replayed = 0
            if backend is not None:
                entries, _ = backend.read_entries(since=applied)
                with database.wal.suspended():
                    for entry in entries:
                        replay_entry(database, entry)
                        applied = entry.sequence
                        replayed += 1
            with self._lock:
                self._databases[peer] = database
                self._applied[peer] = applied
                self.entries_replayed += replayed
                self.bootstraps += 1
                self.replayed_through = max(self.replayed_through, now)
                if self.cache is not None:
                    # Anything cached for this peer predates the re-seed.
                    self.cache.invalidate_all()
            span.annotate(applied=applied, replayed=replayed)
        return applied

    def apply(self, batch: ShippedBatch) -> int:
        """Replay one shipped batch; returns how many entries were applied.

        Entries at or below the follower's applied sequence are skipped
        (shipments to a fleet share one WAL read, so a freshly bootstrapped
        replica may receive a prefix it already holds); a *gap* past the
        cursor means the shipper lost entries and raises.
        """
        with self._lock:
            database = self._databases.get(batch.peer)
            if database is None:
                raise ReplicationError(
                    f"replica {self.name!r} holds no follower for peer "
                    f"{batch.peer!r}; bootstrap it first")
            applied = self._applied[batch.peer]
            fresh = [entry for entry in batch.entries if entry.sequence > applied]
            if fresh and fresh[0].sequence != applied + 1:
                raise ReplicationError(
                    f"replica {self.name!r} gap on peer {batch.peer!r}: "
                    f"applied through {applied}, shipment starts at "
                    f"{fresh[0].sequence}")
            with self.tracer.span("replica.replay", replica=self.name,
                                  peer=batch.peer, entries=len(fresh)) as span:
                with database.wal.suspended():
                    for entry in fresh:
                        replay_entry(database, entry)
                if fresh:
                    self._applied[batch.peer] = fresh[-1].sequence
                    self.entries_replayed += len(fresh)
                self.replayed_through = max(self.replayed_through,
                                            batch.committed_at)
                span.annotate(applied_through=self._applied[batch.peer])
            return len(fresh)

    def prewarm(self, notices: Tuple[DiffNotice, ...]) -> int:
        """Materialise the views a shipment touched into the replica cache."""
        if self.cache is None or not notices:
            return 0
        warmed = 0
        with self._lock:
            for notice in notices:
                for peer in notice.peers:
                    database = self._databases.get(peer)
                    if database is None:
                        continue
                    try:
                        view_name = self._view_name_for(peer, notice.metadata_id)
                        view = database.table(view_name).snapshot()
                    except ReproError:
                        continue  # agreement or table not replayed yet
                    if self.cache.prewarm(peer, notice.metadata_id, view):
                        warmed += 1
        return warmed

    # ------------------------------------------------------------------- reads

    def lag(self, primary_committed_at: float) -> float:
        """Measured staleness: primary's last commit time minus the
        simulated time this replica has replayed through."""
        with self._lock:
            return max(0.0, primary_committed_at - self.replayed_through)

    def read_view(self, peer: str, metadata_id: str):
        """A snapshot of the follower's materialised shared view."""
        with self._lock:
            database = self._databases.get(peer)
            if database is None:
                raise ReplicationError(
                    f"replica {self.name!r} holds no follower for peer {peer!r}")
            if self.cache is not None:
                cached = self.cache.peek(peer, metadata_id)
                if cached is not None:
                    self.cache.hits += 1
                    self.reads_served += 1
                    return cached
                self.cache.misses += 1
            view_name = self._view_name_for(peer, metadata_id)
            view = database.table(view_name).snapshot()
            if self.cache is not None:
                self.cache.prewarm(peer, metadata_id, view)
            self.reads_served += 1
            return view

    def reserve(self, now: float) -> Tuple[float, float]:
        """Occupy the service lane for one read; returns (start, latency)."""
        with self._lock:
            start = max(now, self.next_free_at)
            self.next_free_at = start + self.read_service_time
            return start, (self.next_free_at - now)

    # --------------------------------------------------------------- integrity

    def fingerprints(self) -> Dict[str, Dict[str, str]]:
        """Per-peer per-table content fingerprints, shaped exactly like
        :meth:`MedicalDataSharingSystem.state_fingerprints` for byte-identity
        checks against the primary."""
        with self._lock:
            return {
                peer: {table: database.table(table).fingerprint()
                       for table in sorted(database.table_names)}
                for peer, database in sorted(self._databases.items())
            }

    def statistics(self) -> Dict[str, object]:
        with self._lock:
            return {
                "name": self.name,
                "peers": len(self._databases),
                "applied": dict(sorted(self._applied.items())),
                "replayed_through": self.replayed_through,
                "entries_replayed": self.entries_replayed,
                "reads_served": self.reads_served,
                "bootstraps": self.bootstraps,
                "cache": (self.cache.statistics()
                          if self.cache is not None else None),
            }


class SegmentShipper:
    """Publishes each durable peer's WAL tail to the replica fleet.

    Runs on the writer at commit boundaries.  One WAL read per peer per
    shipment is shared by every replica (they almost always hold the same
    cursor); a replica whose cursor fell behind the retained WAL — a
    checkpoint truncated segments it still needed — is re-bootstrapped from
    the manifest snapshot before the tail is applied.
    """

    def __init__(self, system, clock, ship_interval: float = 0.0,
                 tracer=None, registry=None):
        self.system = system
        self.clock = clock
        self.ship_interval = ship_interval
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry
        self.replicas: List[ReadReplica] = []
        self._last_ship: Optional[float] = None
        self._pending_notices: List[DiffNotice] = []
        self.shipments = 0
        self.entries_shipped = 0
        self.rebootstraps = 0
        self._lock = threading.Lock()
        state_dir = system.config.durability.state_dir
        if state_dir is None:
            raise ReplicationError(
                "WAL shipping requires durable peers: set "
                "durability.state_dir before enabling replicas")
        self._peers_root = pathlib.Path(state_dir) / "peers"

    def peer_state_dir(self, peer: str) -> pathlib.Path:
        return self._peers_root / peer

    # ------------------------------------------------------------------- fleet

    def attach(self, replica: ReadReplica) -> ReadReplica:
        """Add a replica and bootstrap it to the primary's current state."""
        now = self.clock.now()
        for peer_name in self.system.peer_names:
            backend = self.system.peer(peer_name).database.wal.backend
            if backend is None:
                continue
            replica.bootstrap(peer_name, self.peer_state_dir(peer_name),
                              backend=backend, now=now)
        with self._lock:
            if replica not in self.replicas:
                self.replicas.append(replica)
        return replica

    def detach(self, replica: ReadReplica) -> None:
        with self._lock:
            if replica in self.replicas:
                self.replicas.remove(replica)

    # ---------------------------------------------------------------- shipping

    def on_shared_diff(self, metadata_id: str, operation: str,
                       peers: Tuple[str, ...], diff=None) -> None:
        """The :meth:`UpdateCoordinator.subscribe_shared_diff` listener:
        queue the touched view for pre-warming at the next shipment.  May
        fire from executor threads under parallel cascades."""
        with self._lock:
            self._pending_notices.append(
                DiffNotice(metadata_id=metadata_id, operation=operation,
                           peers=tuple(peers)))

    def ship(self, force: bool = False) -> int:
        """Publish new WAL entries to every replica; returns entries shipped.

        Throttled by ``ship_interval`` unless ``force``d (quiesce/drain
        ships unconditionally so the fleet converges).
        """
        with self._lock:
            replicas = list(self.replicas)
            if not replicas:
                self._pending_notices.clear()
                return 0
        now = self.clock.now()
        if (not force and self.ship_interval > 0.0
                and self._last_ship is not None
                and now - self._last_ship < self.ship_interval):
            return 0
        self._last_ship = now
        with self._lock:
            notices = tuple(dict.fromkeys(self._pending_notices))
            self._pending_notices.clear()
        shipped = 0
        with self.tracer.span("replica.ship", replicas=len(replicas)) as span:
            for peer_name in self.system.peer_names:
                backend = self.system.peer(peer_name).database.wal.backend
                if backend is None:
                    continue
                state_dir = self.peer_state_dir(peer_name)
                # A fully-truncated WAL trivially "covers" every cursor (no
                # retained segments to miss), so the checkpoint manifest is
                # the authority on whether a cursor lost entries to
                # truncation — read lazily, only when the WAL is empty.
                checkpoint_floor: Optional[int] = None
                if backend.first_sequence() is None:
                    manifest = read_manifest(state_dir)
                    checkpoint_floor = (
                        int(manifest.get("checkpoint_sequence", 0))
                        if manifest is not None else 0)
                cursors = []
                for replica in replicas:
                    cursor = replica.applied_sequence(peer_name)
                    if (peer_name not in replica.peer_names
                            or not backend.covers(cursor)
                            or (checkpoint_floor is not None
                                and cursor < checkpoint_floor)):
                        # The cursor trails the retained WAL (segments it
                        # needed were truncated at a checkpoint): replaying
                        # the tail would silently skip (cursor, checkpoint].
                        replica.bootstrap(peer_name, state_dir,
                                          backend=backend, now=now)
                        self.rebootstraps += 1
                        cursor = replica.applied_sequence(peer_name)
                    cursors.append(cursor)
                floor = min(cursors)
                entries, _ = backend.read_entries(since=floor)
                batch = ShippedBatch(peer=peer_name, entries=tuple(entries),
                                     committed_at=now)
                for replica in replicas:
                    shipped += replica.apply(batch)
            for replica in replicas:
                replica.prewarm(notices)
            span.annotate(entries=shipped, notices=len(notices))
        self.shipments += 1
        self.entries_shipped += shipped
        return shipped

    def statistics(self) -> Dict[str, object]:
        return {
            "replicas": len(self.replicas),
            "ship_interval": self.ship_interval,
            "shipments": self.shipments,
            "entries_shipped": self.entries_shipped,
            "rebootstraps": self.rebootstraps,
        }


@dataclass
class RoutedRead:
    """How one read was served by the router."""

    view: object
    source: str
    staleness: float
    latency: float
    replica: Optional[str] = None


class ReplicaRouter:
    """Bounded-staleness read fan-out across the replica fleet.

    Picks the least-loaded replica (earliest free service lane, name as the
    deterministic tie-break) whose measured lag against the primary's last
    commit is within ``max_lag``; returns ``None`` when no replica
    qualifies, and the caller serves from the primary instead.
    """

    def __init__(self, shipper: SegmentShipper, clock,
                 max_lag: float = 30.0, registry=None):
        self.shipper = shipper
        self.clock = clock
        self.max_lag = max_lag
        self.replica_reads = 0
        self.primary_fallbacks = 0
        #: Simulated time of the primary's newest commit — the staleness
        #: reference every routed read is measured against.
        self.last_commit_at = 0.0
        self._lock = threading.Lock()
        if registry is not None:
            registry.gauge("replica_fleet_size",
                           fn=lambda: len(self.shipper.replicas))
            registry.gauge("replica_reads", fn=lambda: self.replica_reads)
            registry.gauge("replica_primary_fallbacks",
                           fn=lambda: self.primary_fallbacks)
            registry.gauge("replica_max_lag",
                           fn=lambda: self.max_lag)
            registry.gauge(
                "replica_lag_max",
                fn=lambda: max((replica.lag(self.last_commit_at)
                                for replica in self.shipper.replicas),
                               default=0.0))

    def record_commit(self, committed_at: float) -> None:
        with self._lock:
            if committed_at > self.last_commit_at:
                self.last_commit_at = committed_at

    def route(self, peer: str, metadata_id: str) -> Optional[RoutedRead]:
        """Serve one view read from the fleet, or ``None`` to use the primary."""
        now = self.clock.now()
        with self._lock:
            reference = self.last_commit_at
        candidates = sorted(
            ((replica.next_free_at, replica.name, replica)
             for replica in self.shipper.replicas
             if replica.lag(reference) <= self.max_lag
             and peer in replica.peer_names),
            key=lambda item: (item[0], item[1]))
        for _, _, replica in candidates:
            try:
                view = replica.read_view(peer, metadata_id)
            except ReproError:
                continue
            _, latency = replica.reserve(now)
            with self._lock:
                self.replica_reads += 1
            return RoutedRead(view=view, source="replica",
                              staleness=replica.lag(reference),
                              latency=latency, replica=replica.name)
        with self._lock:
            self.primary_fallbacks += 1
        return None

    def statistics(self) -> Dict[str, object]:
        return {
            "max_lag": self.max_lag,
            "replica_reads": self.replica_reads,
            "primary_fallbacks": self.primary_fallbacks,
            "last_commit_at": self.last_commit_at,
            "lags": {replica.name: replica.lag(self.last_commit_at)
                     for replica in self.shipper.replicas},
            "shipper": self.shipper.statistics(),
            "replicas": [replica.statistics()
                         for replica in self.shipper.replicas],
        }
