"""A named collection of tables, views and indexes: a peer's local database.

The database layer ties together tables, the WAL, transactions, indexes and
registered view definitions.  Every peer in :mod:`repro.core` owns exactly one
:class:`Database` (its "full database and many data pieces shared with other
users", Fig. 2).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    DuplicateTableError,
    UnknownTableError,
)
from repro.relational.index import HashIndex
from repro.relational.predicates import Predicate
from repro.relational.query import Query, execute_query
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.transactions import TransactionManager
from repro.relational.wal import WriteAheadLog


class Database:
    """An in-memory multi-table database with logged mutations.

    Every mutation appends a *replayable* WAL entry (the payload carries
    enough data to re-apply the operation on a recovered copy).  Passing a
    ``wal_backend`` (see :mod:`repro.relational.durability`) mirrors the log
    to disk so the database survives a process crash.
    """

    def __init__(self, name: str, wal_backend: Optional[object] = None):
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, Query] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = {}
        self.wal = WriteAheadLog(backend=wal_backend)
        self.transactions = TransactionManager(self._tables,
                                               on_restore=self._log_rollback_restore)

    def _log_rollback_restore(self, table_name: str, table: Table) -> None:
        """Journal a transaction rollback's table restore as a replayable
        ``replace`` — without it, replaying the log would reproduce the
        rolled-back writes."""
        self.wal.append("replace", table_name,
                        {"rows": len(table), "reason": "rollback",
                         **self._rows_payload(table)})

    def _rows_payload(self, table: Table) -> Dict[str, Any]:
        """``{"row_data": [...]}`` for replay when the WAL is durable, else
        empty — a purely in-memory log must not retain an O(table) copy per
        wholesale operation (the seed kept these entries O(1))."""
        if not self.wal.durable:
            return {}
        return {"row_data": [row.to_dict() for row in table]}

    # ----------------------------------------------------------------- tables

    def create_table(self, name: str, schema: Schema,
                     rows: Iterable[Mapping[str, Any]] = ()) -> Table:
        """Create a base table; fails if the name already exists."""
        if name in self._tables:
            raise DuplicateTableError(f"table {name!r} already exists in database {self.name!r}")
        table = Table(name, schema, rows)
        self._tables[name] = table
        self.transactions.register_table(name, table)
        self.wal.append("create_table", name,
                        {"schema": schema.to_dict(), "rows": len(table),
                         **self._rows_payload(table)},
                        self.transactions.current_transaction_id())
        return table

    def drop_table(self, name: str) -> None:
        """Drop a base table."""
        if name not in self._tables:
            raise UnknownTableError(f"unknown table {name!r}")
        del self._tables[name]
        self._indexes = {key: idx for key, idx in self._indexes.items() if key[0] != name}
        self.wal.append("drop_table", name, {}, self.transactions.current_transaction_id())

    def table(self, name: str) -> Table:
        """Look up one base table by name."""
        if name not in self._tables:
            raise UnknownTableError(f"unknown table {name!r} in database {self.name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    @property
    def tables(self) -> Dict[str, Table]:
        """A shallow copy of the name → table mapping."""
        return dict(self._tables)

    # ------------------------------------------------------------------ writes

    def insert(self, table_name: str, values: Mapping[str, Any]) -> None:
        """Insert one row into a table (logged)."""
        table = self.table(table_name)
        row = table.insert(values)
        self.wal.append("insert", table_name, {"row": row.to_dict()},
                        self.transactions.current_transaction_id())

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert several rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    def update_by_key(self, table_name: str, key: Sequence[Any],
                      updates: Mapping[str, Any]) -> None:
        """Update one keyed row (logged)."""
        table = self.table(table_name)
        table.update_by_key(key, updates)
        # The entry records the operation, not its effect: key + updates is
        # what replay re-applies, and the hot append path stays lean.
        self.wal.append(
            "update", table_name,
            {"key": list(key) if isinstance(key, (list, tuple)) else [key],
             "updates": dict(updates)},
            self.transactions.current_transaction_id(),
        )

    def update_where(self, table_name: str, predicate: Predicate,
                     updates: Mapping[str, Any]) -> int:
        """Update matching rows (logged); returns the count."""
        table = self.table(table_name)
        count = table.update_where(predicate, updates)
        self.wal.append(
            "update", table_name,
            {"predicate": predicate.to_dict(), "updates": dict(updates), "count": count},
            self.transactions.current_transaction_id(),
        )
        return count

    def delete_by_key(self, table_name: str, key: Sequence[Any]) -> None:
        """Delete one keyed row (logged)."""
        table = self.table(table_name)
        table.delete_by_key(key)
        self.wal.append(
            "delete", table_name,
            {"key": list(key) if isinstance(key, (list, tuple)) else [key]},
            self.transactions.current_transaction_id(),
        )

    def delete_where(self, table_name: str, predicate: Predicate) -> int:
        """Delete matching rows (logged); returns the count."""
        table = self.table(table_name)
        count = table.delete_where(predicate)
        self.wal.append(
            "delete", table_name,
            {"predicate": predicate.to_dict(), "count": count},
            self.transactions.current_transaction_id(),
        )
        return count

    def replace_table(self, table_name: str, rows: Iterable[Mapping[str, Any]]) -> None:
        """Atomically replace a table's contents (used by BX ``put``; logged)."""
        table = self.table(table_name)
        table.replace_all(rows)
        self.wal.append("replace", table_name,
                        {"rows": len(table), **self._rows_payload(table)},
                        self.transactions.current_transaction_id())

    def apply_table_diff(self, table_name: str, diff: "TableDiff") -> None:  # noqa: F821
        """Apply a keyed row-level diff to a table in place (logged).

        The delta-propagation path uses this instead of :meth:`replace_table`
        so only the changed rows are touched and secondary indexes stay fresh
        without a rebuild.
        """
        table = self.table(table_name)
        table.apply_diff(diff)
        self.wal.append("apply_diff", table_name,
                        {"changes": len(diff.changes), **diff.summary(),
                         "diff": diff.to_dict()},
                        self.transactions.current_transaction_id())

    # ------------------------------------------------------------------- reads

    def query(self, query: Query, name: Optional[str] = None) -> Table:
        """Evaluate a query AST over this database's base tables."""
        return execute_query(query, self._tables, name=name)

    def select(self, table_name: str, predicate: Predicate = None) -> List:
        """Shorthand row selection from one table."""
        return self.table(table_name).select(predicate)

    # ------------------------------------------------------------------- views

    def register_view(self, name: str, definition: Query) -> None:
        """Register a named view definition (not materialised; logged so a
        recovered database keeps views registered since the last checkpoint)."""
        self._views[name] = definition
        self.wal.append("register_view", name, {"query": definition.to_dict()},
                        self.transactions.current_transaction_id())

    def view(self, name: str) -> Table:
        """Materialise a registered view."""
        if name not in self._views:
            raise UnknownTableError(f"unknown view {name!r} in database {self.name!r}")
        return self.query(self._views[name], name=name)

    def view_definition(self, name: str) -> Query:
        if name not in self._views:
            raise UnknownTableError(f"unknown view {name!r} in database {self.name!r}")
        return self._views[name]

    @property
    def view_names(self) -> Tuple[str, ...]:
        return tuple(self._views)

    # ----------------------------------------------------------------- indexes

    def create_index(self, table_name: str, columns: Sequence[str]) -> HashIndex:
        """Create (or return an existing) hash index on ``columns``.

        The index is attached to the table itself, so equality selections on
        the indexed columns (``Table.select`` and the query AST's ``Select``
        over a ``Scan``) use it instead of scanning.
        """
        key = (table_name, tuple(columns))
        if key not in self._indexes:
            self._indexes[key] = self.table(table_name).add_index(columns)
            self.wal.append("create_index", table_name,
                            {"columns": list(columns)},
                            self.transactions.current_transaction_id())
        return self._indexes[key]

    def index(self, table_name: str, columns: Sequence[str]) -> HashIndex:
        key = (table_name, tuple(columns))
        if key not in self._indexes:
            raise UnknownTableError(f"no index on {table_name!r}{tuple(columns)!r}")
        return self._indexes[key]


    # ---------------------------------------------------------------- recovery

    def checkpoint(self, state_dir) -> "CheckpointResult":  # noqa: F821
        """Atomically snapshot this database into ``state_dir`` and truncate
        the WAL, recording the checkpoint sequence (see
        :func:`repro.relational.durability.checkpoint_database`)."""
        from repro.relational.durability import checkpoint_database

        return checkpoint_database(self, state_dir)

    def storage_bytes(self) -> int:
        """An approximate storage footprint (serialised size of all tables)."""
        from repro.crypto.hashing import canonical_json

        return sum(len(canonical_json(t.to_dict()).encode("utf-8")) for t in self._tables.values())

    def snapshot(self) -> Dict[str, Table]:
        """Independent snapshots of every base table."""
        return {name: table.snapshot() for name, table in self._tables.items()}
