"""Immutable rows.

Rows are lightweight mappings from column name to value.  They are immutable
so that snapshots, diffs and lens transformations can share them safely.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import UnknownColumnError


class Row(Mapping[str, Any]):
    """An immutable mapping of column names to values."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]):
        self._values: Dict[str, Any] = dict(values)

    # -- Mapping protocol -------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise UnknownColumnError(f"row has no column {key!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Row({inner})"

    # -- derivation -------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Row":
        """Return a row containing only the given columns."""
        return Row({name: self[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Row":
        """Return a row with columns renamed according to ``mapping``."""
        return Row({mapping.get(name, name): value for name, value in self._values.items()})

    def merged(self, updates: Mapping[str, Any]) -> "Row":
        """Return a new row with ``updates`` applied over this row's values."""
        merged = dict(self._values)
        merged.update(updates)
        return Row(merged)

    def key(self, key_columns: Sequence[str]) -> Tuple[Any, ...]:
        """The tuple of values of the given key columns."""
        return tuple(self[name] for name in key_columns)

    def to_dict(self) -> Dict[str, Any]:
        """A plain mutable dict copy of this row."""
        return dict(self._values)
