"""Saving and loading a peer's local database.

A peer's database (its full tables, the materialised shared pieces, the
registered view definitions and the secondary-index column sets) can be
serialised to a single JSON document so a client can stop and later resume
with the same local state — the paper's "medical data always stay in each
peer's local database" needs that data to survive restarts.

The format is deliberately plain JSON: human-inspectable, diffable, and free
of any pickling of code objects.  Writes are atomic: the document lands in a
temp file in the target directory and is ``os.replace``d into place, so a
crash mid-write can never corrupt the previous copy.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

from repro.errors import RelationalError
from repro.relational.database import Database
from repro.relational.query import Query
from repro.relational.schema import Schema

#: Format marker so future layout changes can be detected on load.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def atomic_write_text(path: PathLike, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems) and is fsynced before the rename, so after a crash
    the path holds either the previous content or the complete new content —
    never a torn mix.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.parent / f".{target.name}.tmp.{os.getpid()}"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
    finally:
        if temp.exists():
            temp.unlink()
    return target


def database_to_dict(database: Database) -> dict:
    """Serialise a database (tables + views + index columns) to a plain dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": database.name,
        "tables": [database.table(name).to_dict() for name in database.table_names],
        "views": {
            name: database.view_definition(name).to_dict() for name in database.view_names
        },
    }


def database_from_dict(payload: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output.

    Secondary indexes are re-registered from each table's persisted
    ``indexes`` column sets, so a reloaded peer keeps its Eq fast path
    without callers having to remember to re-``add_index``.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise RelationalError(
            f"unsupported database format version {version!r} (expected {FORMAT_VERSION})"
        )
    database = Database(payload["name"])
    for table_payload in payload.get("tables", ()):
        # Built from the raw payload (not Table.from_dict) so rows are
        # materialised and index buckets built exactly once, on the table
        # the database keeps.
        name = table_payload["name"]
        database.create_table(name, Schema.from_dict(table_payload["schema"]),
                              table_payload.get("rows", ()))
        for columns in table_payload.get("indexes", ()):
            database.create_index(name, columns)
    for view_name, view_payload in payload.get("views", {}).items():
        database.register_view(view_name, Query.from_dict(view_payload))
    return database


def save_database(database: Database, path: PathLike) -> pathlib.Path:
    """Atomically write the database to ``path`` as JSON; returns the path."""
    document = json.dumps(database_to_dict(database), indent=2, sort_keys=True)
    return atomic_write_text(path, document)


def load_database(path: PathLike) -> Database:
    """Read a database previously written by :func:`save_database`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise RelationalError(f"no database file at {source}")
    payload = json.loads(source.read_text(encoding="utf-8"))
    return database_from_dict(payload)


def databases_identical(first: Database, second: Database) -> bool:
    """True when the two databases hold the same tables *and* views.

    View definitions are part of a peer's state (recovery tests that ignored
    them could pass while views were silently lost), so both the set of view
    names and each definition's serialised form must match.
    """
    if set(first.table_names) != set(second.table_names):
        return False
    for name in first.table_names:
        if first.table(name) != second.table(name):
            return False
    if set(first.view_names) != set(second.view_names):
        return False
    for name in first.view_names:
        if first.view_definition(name).to_dict() != second.view_definition(name).to_dict():
            return False
    return True
