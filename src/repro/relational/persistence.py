"""Saving and loading a peer's local database.

A peer's database (its full tables, the materialised shared pieces, and the
registered view definitions) can be serialised to a single JSON document so a
client can stop and later resume with the same local state — the paper's
"medical data always stay in each peer's local database" needs that data to
survive restarts.

The format is deliberately plain JSON: human-inspectable, diffable, and free
of any pickling of code objects.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.errors import RelationalError
from repro.relational.database import Database
from repro.relational.query import Query
from repro.relational.schema import Schema
from repro.relational.table import Table

#: Format marker so future layout changes can be detected on load.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def database_to_dict(database: Database) -> dict:
    """Serialise a database (tables + view definitions) to a plain dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": database.name,
        "tables": [database.table(name).to_dict() for name in database.table_names],
        "views": {
            name: database.view_definition(name).to_dict() for name in database.view_names
        },
    }


def database_from_dict(payload: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise RelationalError(
            f"unsupported database format version {version!r} (expected {FORMAT_VERSION})"
        )
    database = Database(payload["name"])
    for table_payload in payload.get("tables", ()):
        table = Table.from_dict(table_payload)
        database.create_table(table.name, table.schema, (row.to_dict() for row in table))
    for view_name, view_payload in payload.get("views", {}).items():
        database.register_view(view_name, Query.from_dict(view_payload))
    return database


def save_database(database: Database, path: PathLike) -> pathlib.Path:
    """Write the database to ``path`` as JSON; returns the path written."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(database_to_dict(database), indent=2, sort_keys=True),
                      encoding="utf-8")
    return target


def load_database(path: PathLike) -> Database:
    """Read a database previously written by :func:`save_database`."""
    source = pathlib.Path(path)
    if not source.exists():
        raise RelationalError(f"no database file at {source}")
    payload = json.loads(source.read_text(encoding="utf-8"))
    return database_from_dict(payload)


def databases_identical(first: Database, second: Database) -> bool:
    """True when the two databases hold the same tables with the same contents."""
    if set(first.table_names) != set(second.table_names):
        return False
    for name in first.table_names:
        if first.table(name) != second.table(name):
            return False
    return True
