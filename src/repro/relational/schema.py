"""Typed columns and table schemas.

A :class:`Schema` describes the shape of a table: ordered, named, typed
columns, a primary-key subset and nullability.  Schemas are immutable value
objects; deriving a projected or renamed schema returns a new object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError


class DataType(Enum):
    """Column data types supported by the engine."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"

    def validates(self, value: object) -> bool:
        """Return True if ``value`` is acceptable for this type."""
        if value is None:
            return True  # nullability is enforced separately
        if self is DataType.STRING:
            return isinstance(value, str)
        if self is DataType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.BOOLEAN:
            return isinstance(value, bool)
        if self is DataType.DATE:
            return isinstance(value, str)
        return False

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this type where a loss-free conversion exists."""
        if value is None:
            return None
        if self is DataType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        return value


@dataclass(frozen=True)
class Column:
    """A single named, typed column.

    Attributes
    ----------
    name:
        Column name, e.g. ``"patient_id"``.
    dtype:
        The :class:`DataType` of values stored in the column.
    nullable:
        Whether ``None`` is an allowed value.
    description:
        Optional human-readable documentation (e.g. the paper's ``a0..a6``
        attribute labels).
    """

    name: str
    dtype: DataType = DataType.STRING
    nullable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column with a different name."""
        return Column(
            name=new_name,
            dtype=self.dtype,
            nullable=self.nullable,
            description=self.description,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype.value,
            "nullable": self.nullable,
            "description": self.description,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Column":
        return Column(
            name=payload["name"],
            dtype=DataType(payload.get("dtype", "string")),
            nullable=payload.get("nullable", True),
            description=payload.get("description", ""),
        )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns with an optional primary key.

    Attributes
    ----------
    columns:
        The ordered column definitions.
    primary_key:
        Names of the columns forming the primary key (may be empty).
    """

    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        for key in self.primary_key:
            if key not in names:
                raise SchemaError(f"primary key column {key!r} not in schema")
        for key in self.primary_key:
            column = self.column(key)
            if column.nullable:
                # Primary-key columns are implicitly NOT NULL; normalise that.
                object.__setattr__(
                    self,
                    "columns",
                    tuple(
                        c.renamed(c.name) if c.name != key else Column(
                            name=c.name,
                            dtype=c.dtype,
                            nullable=False,
                            description=c.description,
                        )
                        for c in self.columns
                    ),
                )

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def build(
        columns: Sequence,  # Sequence[Column | tuple | str]
        primary_key: Iterable[str] = (),
    ) -> "Schema":
        """Build a schema from flexible column specs.

        Each entry of ``columns`` may be a :class:`Column`, a ``(name, dtype)``
        tuple, or a bare column-name string (defaults to STRING type).
        """
        normalised: List[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                normalised.append(spec)
            elif isinstance(spec, tuple):
                name, dtype = spec[0], spec[1]
                nullable = spec[2] if len(spec) > 2 else True
                if isinstance(dtype, str):
                    dtype = DataType(dtype)
                normalised.append(Column(name=name, dtype=dtype, nullable=nullable))
            elif isinstance(spec, str):
                normalised.append(Column(name=spec))
            else:
                raise SchemaError(f"cannot build a column from {spec!r}")
        return Schema(columns=tuple(normalised), primary_key=tuple(primary_key))

    # -- inspection ------------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up one column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise UnknownColumnError(f"unknown column {name!r}; schema has {self.column_names}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_column(name)

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str], primary_key: Optional[Sequence[str]] = None) -> "Schema":
        """Return a schema containing only ``names`` (in the given order).

        The primary key is retained when all of its columns survive the
        projection, unless an explicit ``primary_key`` is supplied.
        """
        for name in names:
            if not self.has_column(name):
                raise UnknownColumnError(f"cannot project unknown column {name!r}")
        columns = tuple(self.column(name) for name in names)
        if primary_key is not None:
            key = tuple(primary_key)
        elif self.primary_key and all(k in names for k in self.primary_key):
            key = self.primary_key
        else:
            key = ()
        return Schema(columns=columns, primary_key=key)

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Return a schema with columns renamed according to ``mapping``."""
        for old in mapping:
            if not self.has_column(old):
                raise UnknownColumnError(f"cannot rename unknown column {old!r}")
        columns = tuple(
            column.renamed(mapping.get(column.name, column.name)) for column in self.columns
        )
        key = tuple(mapping.get(name, name) for name in self.primary_key)
        return Schema(columns=columns, primary_key=key)

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the columns in ``names``."""
        remaining = [c.name for c in self.columns if c.name not in set(names)]
        return self.project(remaining)

    def is_projection_of(self, other: "Schema") -> bool:
        """True if every column of this schema appears (same type) in ``other``."""
        for column in self.columns:
            if not other.has_column(column.name):
                return False
            if other.column(column.name).dtype is not column.dtype:
                return False
        return True

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas (columns of ``other`` appended, no duplicates)."""
        columns = list(self.columns)
        for column in other.columns:
            if self.has_column(column.name):
                existing = self.column(column.name)
                if existing.dtype is not column.dtype:
                    raise SchemaError(
                        f"conflicting types for column {column.name!r}: "
                        f"{existing.dtype} vs {column.dtype}"
                    )
            else:
                columns.append(column)
        key = self.primary_key or other.primary_key
        return Schema(columns=tuple(columns), primary_key=key)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "columns": [column.to_dict() for column in self.columns],
            "primary_key": list(self.primary_key),
        }

    @staticmethod
    def from_dict(payload: dict) -> "Schema":
        return Schema(
            columns=tuple(Column.from_dict(c) for c in payload["columns"]),
            primary_key=tuple(payload.get("primary_key", ())),
        )
