"""On-disk durability for a peer's database: WAL segments, checkpoints, recovery.

The paper's deployment model keeps each peer's data in its local database;
that only makes sense if the data survives a process restart.  This module
provides the durable substrate:

* :class:`JsonlWalBackend` — an append-only, segmented JSONL mirror of a
  :class:`~repro.relational.wal.WriteAheadLog`.  Each entry is one JSON line;
  segments rotate at a size threshold; an ``fsync_policy`` knob trades
  durability for latency (``always`` fsyncs per append, ``batch`` fsyncs on
  explicit commit boundaries, ``never`` leaves flushing to the OS).
* :func:`checkpoint_database` — an atomic snapshot (temp file +
  ``os.replace`` via :func:`~repro.relational.persistence.save_database`)
  plus WAL truncation that records the checkpoint sequence in a manifest.
* :func:`recover` — loads the latest snapshot and replays the WAL entries
  past the checkpoint to rebuild byte-identical state, tolerating the torn
  tail a crash can leave (and only that).
* :func:`open_durable_database` — create-or-recover convenience entry point.

A crash can interrupt this machinery at any byte offset; the invariants that
make recovery sound:

1. appends go to exactly one (the newest) segment, so a torn write can only
   damage the final line of the final segment;
2. the snapshot and the manifest are each installed with ``os.replace``, so
   readers see either the old or the new checkpoint, never a torn one;
3. segments are deleted only *after* the manifest records the checkpoint
   that supersedes them, so a crash mid-checkpoint leaves a recoverable
   (old-checkpoint + longer-WAL) state.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import RecoveryError, WalCorruptionError
from repro.chaos import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER
from repro.relational.database import Database
from repro.relational.diff import TableDiff
from repro.relational.persistence import (
    atomic_write_text,
    load_database,
    save_database,
)
from repro.relational.predicates import Predicate
from repro.relational.query import Query
from repro.relational.schema import Schema
from repro.relational.wal import WalEntry, WriteAheadLog

PathLike = Union[str, pathlib.Path]

#: fsync once per appended entry — maximal durability, maximal latency.
FSYNC_ALWAYS = "always"
#: fsync on explicit :meth:`JsonlWalBackend.sync` calls (commit boundaries).
FSYNC_BATCH = "batch"
#: never fsync explicitly; flush to the OS and let it schedule the write.
FSYNC_NEVER = "never"

FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)

#: Manifest file name inside a state directory.
MANIFEST_NAME = "checkpoint.json"
#: Sub-directory holding the WAL segments.
WAL_DIR_NAME = "wal"
#: Segment file pattern: ``wal-<first sequence, 16 digits>.jsonl``.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

MANIFEST_VERSION = 1

#: One shared encoder for the append hot path — ``json.dumps`` with custom
#: keyword arguments builds a fresh ``JSONEncoder`` per call, a measurable
#: tax on a path that rides every logged mutation.
_ENTRY_ENCODER = json.JSONEncoder(separators=(",", ":"), default=str)

#: JSON-escaped-and-encoded operation/table names, cached — both repeat
#: endlessly (a handful of operations, a few table names per database), so
#: the envelope of each WAL line can be assembled from pre-encoded pieces
#: and only the payload goes through the JSON encoder.
_NAME_CACHE: Dict[str, bytes] = {}


def _encoded_name(name: str) -> bytes:
    cached = _NAME_CACHE.get(name)
    if cached is None:
        if len(_NAME_CACHE) > 4096:  # defensive bound; names are few
            _NAME_CACHE.clear()
        cached = _NAME_CACHE[name] = json.dumps(name).encode("utf-8")
    return cached


def _framed_prefix_length(data: bytes) -> int:
    """The byte length of the complete-frame prefix of ``data``.

    Binary segments are a concatenation of ``4-byte big-endian length +
    payload`` frames; anything past the returned offset is a torn tail.
    """
    offset = 0
    size = len(data)
    while offset + 4 <= size:
        length = int.from_bytes(data[offset:offset + 4], "big")
        if offset + 4 + length > size:
            break
        offset += 4 + length
    return offset


def _split_frames(data: bytes) -> Tuple[List[bytes], bool]:
    """Split a binary segment into frame payloads.

    Returns ``(payloads, torn)`` where ``torn`` reports a trailing partial
    frame (bytes past the last complete frame).
    """
    payloads: List[bytes] = []
    offset = 0
    size = len(data)
    while offset + 4 <= size:
        length = int.from_bytes(data[offset:offset + 4], "big")
        if offset + 4 + length > size:
            break
        payloads.append(data[offset + 4:offset + 4 + length])
        offset += 4 + length
    return payloads, offset != size


def _validate_policy(fsync_policy: str) -> str:
    if fsync_policy not in FSYNC_POLICIES:
        raise ValueError(
            f"unknown fsync policy {fsync_policy!r}; use one of {FSYNC_POLICIES}")
    return fsync_policy


class JsonlWalBackend:
    """Append-only JSONL mirror of a WAL, segmented and crash-tolerant.

    Thread-safe: the gateway journals terminal responses from both the event
    loop and executor threads.
    """

    def __init__(self, directory: PathLike, fsync_policy: str = FSYNC_BATCH,
                 segment_max_bytes: int = 1_000_000, codec=None):
        if segment_max_bytes <= 0:
            raise ValueError("segment_max_bytes must be positive")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = _validate_policy(fsync_policy)
        self.segment_max_bytes = segment_max_bytes
        # ``codec`` plugs a :mod:`repro.runtime` wire codec under the same
        # API.  ``None`` and ``canonical-json`` keep the proven JSONL line
        # format byte-for-byte (the hand-assembled fast path below);
        # ``binary`` switches segments to length-prefixed frames of the
        # codec's bytes (``wal-<seq>.walb``).  A directory written in one
        # format refuses to reopen in the other — mixing them would make
        # half the log invisible to reads.
        self.codec = None
        self._suffix = SEGMENT_SUFFIX
        if codec is not None:
            from repro.runtime.codec import get_codec
            resolved = get_codec(codec)
            if resolved.segment_suffix != SEGMENT_SUFFIX:
                self.codec = resolved
                self._suffix = resolved.segment_suffix
        foreign = [
            path.name
            for suffix in {SEGMENT_SUFFIX, ".walb"} - {self._suffix}
            for path in self.directory.glob(f"{SEGMENT_PREFIX}*{suffix}")
        ]
        if foreign:
            raise WalCorruptionError(
                f"WAL directory {self.directory} holds segments in another "
                f"codec's format ({', '.join(sorted(foreign))}); reopen it "
                f"with the codec that wrote them")
        self._lock = threading.Lock()
        self._handle = None
        self._current: Optional[pathlib.Path] = None
        self._current_bytes = 0
        self.appends = 0
        self.syncs = 0
        self.rotations = 0
        #: Swapped for a real tracer by the gateway / system; ``wal.append``
        #: and ``wal.fsync`` spans account the durability stage's time.
        self.tracer = NULL_TRACER
        #: Chaos hooks (no-ops by default): ``wal.append`` / ``wal.fsync``
        #: faults are probed *before* any bytes are written, so a retry
        #: never duplicates an entry; the optional retrier absorbs injected
        #: (and real) transient ``OSError``s with deterministic backoff.
        self.injector = NULL_INJECTOR
        self.retrier = None
        self.fault_target = self.directory.name
        #: Torn final lines amputated when this backend (re)opened the
        #: directory — a restarted writer must never append onto a partial
        #: line, or the concatenated garbage swallows the new entry (or
        #: poisons the stream with mid-file corruption).
        self.torn_lines_repaired = 0
        segments = self.segment_paths()
        if segments:
            self._current = segments[-1]
            self._repair_torn_tail(self._current)
            self._current_bytes = self._current.stat().st_size

    def _repair_torn_tail(self, segment: pathlib.Path) -> None:
        """Truncate ``segment`` back to its last complete record.

        JSONL: lines contain no raw newlines (the encoder escapes them), so
        a file not ending in ``\\n`` ends in a torn write; everything after
        the last newline is the torn tail a crash left.  Binary: frames are
        length-prefixed, so the tail is torn exactly when the last prefix
        promises more bytes than the file holds.
        """
        data = segment.read_bytes()
        if self.codec is not None:
            keep = _framed_prefix_length(data)
            if keep == len(data):
                return
        else:
            if not data or data.endswith(b"\n"):
                return
            keep = data.rfind(b"\n") + 1  # 0 when the segment is one torn line
        with open(segment, "r+b") as handle:
            handle.truncate(keep)
        self.torn_lines_repaired += 1

    # ------------------------------------------------------------------ layout

    def _segment_name(self, first_sequence: int) -> str:
        return f"{SEGMENT_PREFIX}{first_sequence:016d}{self._suffix}"

    def segment_paths(self) -> List[pathlib.Path]:
        """All segment files, ordered by their first sequence number."""
        return sorted(self.directory.glob(f"{SEGMENT_PREFIX}*{self._suffix}"))

    def wal_bytes(self) -> int:
        """Total size of all segment files on disk."""
        return sum(path.stat().st_size for path in self.segment_paths())

    def statistics(self) -> Dict[str, Any]:
        stats = {
            "directory": str(self.directory),
            "fsync_policy": self.fsync_policy,
            "segments": len(self.segment_paths()),
            "wal_bytes": self.wal_bytes(),
            "appends": self.appends,
            "syncs": self.syncs,
            "rotations": self.rotations,
        }
        if self.codec is not None:
            stats["codec"] = self.codec.name
        return stats

    # ----------------------------------------------------------------- appends

    def append(self, entry: WalEntry) -> Tuple[pathlib.Path, int, int]:
        """Append one entry as a JSON line (rotating segments as needed).

        Returns the entry's location ``(segment_path, offset, length)`` so
        callers that need random access later (the gateway's response
        journal) can index it instead of rescanning the log.
        """
        if self.codec is not None:
            # Binary mode: one length-prefixed frame per entry.
            payload = self.codec.encode(entry.to_dict())
            data = len(payload).to_bytes(4, "big") + payload
        else:
            # The line's envelope is assembled from pre-encoded pieces and
            # only the payload runs through the JSON encoder (null
            # transaction ids omitted): this path rides every logged
            # database mutation, so each avoidable microsecond shows up
            # directly in the fsync-policy overhead bench.  The result is a
            # plain JSON object line, identical to what
            # ``json.dumps(entry.to_dict())`` would produce.
            tail = (b"}\n" if entry.transaction_id is None
                    else b',"transaction_id":%d}\n' % entry.transaction_id)
            data = (b'{"sequence":%d,"operation":%s,"table":%s,"payload":%s'
                    % (entry.sequence, _encoded_name(entry.operation),
                       _encoded_name(entry.table),
                       _ENTRY_ENCODER.encode(entry.payload).encode("utf-8"))) + tail
        with self.tracer.span("wal.append", table=entry.table,
                              bytes=len(data)), self._lock:
            if self.retrier is not None:
                return self.retrier.call(
                    lambda: self._append_locked(entry, data),
                    label="wal.append")
            return self._append_locked(entry, data)

    def _append_locked(self, entry: WalEntry,
                       data: bytes) -> Tuple[pathlib.Path, int, int]:
        # Fault probes come first: an injected disk error leaves no bytes
        # behind, so the retrier can safely re-run this whole body.
        self.injector.maybe_fail("wal.append", self.fault_target)
        if self.fsync_policy == FSYNC_ALWAYS:
            self.injector.maybe_fail("wal.fsync", self.fault_target)
        if (self._current is not None
                and self._current_bytes >= self.segment_max_bytes):
            self._close_handle()
            self._current = None
            self.rotations += 1
        if self._handle is None:
            if self._current is None:
                self._current = self.directory / self._segment_name(entry.sequence)
            self._handle = open(self._current, "ab")
            self._current_bytes = self._current.stat().st_size
        location = (self._current, self._current_bytes, len(data))
        self._handle.write(data)
        # Only the per-append policy pays a syscall here; ``batch`` and
        # ``never`` leave the line in the userspace buffer until the next
        # commit boundary (sync/rotation/close) or read flushes it.
        if self.fsync_policy == FSYNC_ALWAYS:
            with self.tracer.span("wal.fsync", policy=self.fsync_policy):
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self.syncs += 1
        self._current_bytes += len(data)
        self.appends += 1
        return location

    def flush(self) -> None:
        """Push buffered appends to the OS (no fsync) so readers see them."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def sync(self) -> None:
        """Flush and fsync the active segment (a commit boundary).

        Under ``never`` the buffer is still flushed to the OS (so other
        readers observe the entries) but the fsync is skipped.
        """
        with self.tracer.span("wal.fsync", policy=self.fsync_policy), self._lock:
            if self._handle is None:
                return
            if self.retrier is not None:
                self.retrier.call(self._sync_locked, label="wal.fsync")
            else:
                self._sync_locked()

    def _sync_locked(self) -> None:
        # Probe-then-act keeps the body idempotent under retries: re-running
        # the flush/fsync pair after an injected failure is harmless.
        self.injector.maybe_fail("wal.fsync", self.fault_target)
        self._handle.flush()
        if self.fsync_policy != FSYNC_NEVER:
            os.fsync(self._handle.fileno())
            self.syncs += 1

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_policy != FSYNC_NEVER:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    # ------------------------------------------------------------------- reads

    def _segment_first_sequence(self, segment: pathlib.Path) -> int:
        """The first sequence a segment holds, read from its file name."""
        return int(segment.name[len(SEGMENT_PREFIX):-len(self._suffix)])

    def first_sequence(self) -> Optional[int]:
        """The first sequence still retained on disk (``None`` when empty)."""
        with self._lock:
            segments = self.segment_paths()
            if not segments:
                return None
            return self._segment_first_sequence(segments[0])

    def covers(self, since: int) -> bool:
        """Whether ``read_entries(since=since)`` would see *every* entry
        past ``since`` that was ever appended.

        ``False`` means a checkpoint truncated segments the cursor still
        needed: entries in ``(since, checkpoint]`` are gone from the WAL,
        so a tail read from ``since`` would be silently incomplete.  A
        shipping reader (replica cursor) must then re-bootstrap from the
        checkpoint manifest instead of replaying the tail.  An empty WAL
        trivially covers any cursor — there is nothing retained to miss;
        whether the *checkpoint* superseded the cursor is the manifest's
        call, not the backend's.
        """
        with self._lock:
            segments = self.segment_paths()
            if not segments:
                return True
            return self._segment_first_sequence(segments[0]) <= since + 1

    def read_entries(self, since: int = 0) -> Tuple[List[WalEntry], int]:
        """All decodable entries with sequence > ``since``, in order.

        Returns ``(entries, torn_lines_dropped)``.  A crash can tear at most
        the final line of the final segment, so exactly that line may fail to
        decode and is dropped; an undecodable or out-of-order line anywhere
        else raises :class:`~repro.errors.WalCorruptionError`.

        Callers resuming from a cursor (``since > 0``) must check
        :meth:`covers` first: if truncation already removed entries past the
        cursor, the tail returned here is *incomplete*, not erroneous.
        """
        entries: List[WalEntry] = []
        torn = 0
        # Buffered appends (batch/never policies) must be visible to the
        # read — a journaled-then-evicted response is answerable even
        # before the next fsync boundary.
        self.flush()
        segments = self.segment_paths()
        # Skip whole segments that cannot hold entries past ``since``: every
        # entry in a non-final segment precedes its successor's first
        # sequence (same covering rule as truncation), so continuous
        # shipping stays O(new data) instead of re-decoding the full WAL.
        start = 0
        for index in range(len(segments) - 1):
            if self._segment_first_sequence(segments[index + 1]) - 1 <= since:
                start = index + 1
            else:
                break
        last_sequence = since
        final_segment = len(segments) - 1
        for segment_index, segment in enumerate(segments[start:], start):
            if self.codec is not None:
                records, framing_torn = _split_frames(segment.read_bytes())
                if framing_torn:
                    # A length prefix promising bytes the file lacks: a
                    # crash artefact on the final segment, corruption
                    # anywhere else (appends only ever go to the newest).
                    if segment_index != final_segment:
                        raise WalCorruptionError(
                            f"torn frame inside non-final WAL segment "
                            f"{segment.name}")
                    torn += 1
            else:
                records = segment.read_bytes().split(b"\n")
                if records and records[-1] == b"":
                    records.pop()
            for record_index, raw in enumerate(records):
                is_final_record = (segment_index == final_segment
                                   and record_index == len(records) - 1)
                try:
                    if self.codec is not None:
                        entry = WalEntry.from_dict(self.codec.decode(raw))
                    else:
                        entry = WalEntry.from_dict(json.loads(raw.decode("utf-8")))
                except Exception as exc:
                    # A complete binary frame holds exactly the bytes its
                    # writer framed, so decode failure there is always
                    # corruption; only a JSONL final line can legitimately
                    # tear mid-record.
                    if is_final_record and self.codec is None:
                        torn += 1
                        break
                    raise WalCorruptionError(
                        f"undecodable WAL entry at {segment.name}:{record_index + 1}"
                    ) from exc
                if entries and entry.sequence <= last_sequence:
                    raise WalCorruptionError(
                        f"out-of-order WAL entry {entry.sequence} after "
                        f"{last_sequence} at {segment.name}:{record_index + 1}"
                    )
                last_sequence = entry.sequence
                if entry.sequence > since:
                    entries.append(entry)
        return entries, torn

    # --------------------------------------------------------------- truncation

    def truncate(self, checkpoint_sequence: int) -> int:
        """Delete segments holding only entries ≤ ``checkpoint_sequence``.

        Returns the number of segments removed.  Called after the manifest
        already records the checkpoint, so losing these files is safe; a
        segment straddling the boundary is kept whole (recovery skips the
        already-checkpointed prefix by sequence).
        """
        removed = 0
        with self._lock:
            self._close_handle()
            segments = self.segment_paths()
            for index, segment in enumerate(segments):
                if index + 1 < len(segments):
                    # All entries here precede the next segment's first
                    # sequence, readable from its file name.  Sequences are
                    # contiguous, so this segment's last entry *is*
                    # ``next_first - 1``: a checkpoint landing exactly on a
                    # segment's last entry covers it exactly (deleted), and
                    # the surviving successor starts at checkpoint + 1 — a
                    # replayer resuming from ``since == checkpoint`` still
                    # sees every later entry.  Cursors *behind* the
                    # checkpoint lose their tail here; they must detect that
                    # via ``covers()`` and re-bootstrap from the manifest.
                    next_first = self._segment_first_sequence(segments[index + 1])
                    fully_covered = next_first - 1 <= checkpoint_sequence
                else:
                    last = self._last_sequence_in(segment)
                    fully_covered = last is not None and last <= checkpoint_sequence
                if fully_covered:
                    segment.unlink()
                    removed += 1
                else:
                    break
            remaining = self.segment_paths()
            self._current = remaining[-1] if remaining else None
            self._current_bytes = (self._current.stat().st_size
                                   if self._current is not None else 0)
        return removed

    def replace_segments(self, lines: List[bytes],
                         first_sequence: int) -> pathlib.Path:
        """Atomically replace every segment with one new segment holding
        ``lines`` (already encoded, newline-terminated).

        The compaction primitive of the gateway's response journal.
        Crash-safe ordering: the new segment lands complete (temp file +
        ``os.replace``) *before* the old segments are unlinked, so a crash
        anywhere in between leaves either the old segments or the old
        segments plus the finished new one — never a torn rewrite.
        ``first_sequence`` must exceed every sequence already on disk so the
        new segment sorts (and reads) after the survivors of a partial
        crash.
        """
        with self._lock:
            self._close_handle()
            old = self.segment_paths()
            target = self.directory / self._segment_name(first_sequence)
            tmp = target.with_suffix(target.suffix + ".tmp")
            with open(tmp, "wb") as handle:
                for line in lines:
                    handle.write(line)
                handle.flush()
                if self.fsync_policy != FSYNC_NEVER:
                    os.fsync(handle.fileno())
                    self.syncs += 1
            os.replace(tmp, target)
            for segment in old:
                if segment != target:
                    segment.unlink()
            self.rotations += 1
            self._current = target
            self._current_bytes = target.stat().st_size
            return target

    def _last_sequence_in(self, segment: pathlib.Path) -> Optional[int]:
        last: Optional[int] = None
        if self.codec is not None:
            records, _torn = _split_frames(segment.read_bytes())
            for raw in records:
                try:
                    last = int(self.codec.decode(raw)["sequence"])
                except Exception:
                    break  # torn tail; entries before it still count
            return last
        for raw in segment.read_bytes().split(b"\n"):
            if not raw:
                continue
            try:
                last = int(json.loads(raw.decode("utf-8"))["sequence"])
            except (ValueError, KeyError, UnicodeDecodeError):
                break  # torn tail; entries before it still count
        return last


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


def _manifest_path(state_dir: pathlib.Path) -> pathlib.Path:
    return state_dir / MANIFEST_NAME


def read_manifest(state_dir: PathLike) -> Optional[Dict[str, Any]]:
    """The checkpoint manifest of a state directory, or None when absent."""
    path = _manifest_path(pathlib.Path(state_dir))
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise RecoveryError(f"unreadable manifest at {path}") from exc
    if payload.get("manifest_version") != MANIFEST_VERSION:
        raise RecoveryError(
            f"unsupported manifest version {payload.get('manifest_version')!r}")
    return payload


def _write_manifest(state_dir: pathlib.Path, payload: Dict[str, Any]) -> None:
    payload = dict(payload, manifest_version=MANIFEST_VERSION)
    atomic_write_text(_manifest_path(state_dir),
                      json.dumps(payload, indent=2, sort_keys=True))


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointResult:
    """What one checkpoint did."""

    checkpoint_sequence: int
    snapshot_path: pathlib.Path
    segments_removed: int
    checkpoint_count: int
    wal_bytes: int

    def to_dict(self) -> dict:
        return {
            "checkpoint_sequence": self.checkpoint_sequence,
            "snapshot_path": str(self.snapshot_path),
            "segments_removed": self.segments_removed,
            "checkpoint_count": self.checkpoint_count,
            "wal_bytes": self.wal_bytes,
        }


def checkpoint_database(database: Database, state_dir: PathLike) -> CheckpointResult:
    """Atomically snapshot ``database`` into ``state_dir`` and truncate its WAL.

    The snapshot lands via temp-file + ``os.replace`` (a crash mid-write
    never corrupts the previous snapshot), the manifest records the
    checkpoint sequence, and only then are fully-covered WAL segments
    deleted.  Recovery = the manifest's snapshot + the WAL entries past its
    ``checkpoint_sequence``.
    """
    state_path = pathlib.Path(state_dir)
    state_path.mkdir(parents=True, exist_ok=True)
    sequence = database.wal.last_sequence
    previous = read_manifest(state_path) or {}
    database.wal.sync()  # entries being truncated must be durable first
    snapshot_name = f"snapshot-{sequence:016d}.json"
    save_database(database, state_path / snapshot_name)
    _write_manifest(state_path, {
        "name": database.name,
        "checkpoint_sequence": sequence,
        "snapshot": snapshot_name,
        "checkpoints": int(previous.get("checkpoints", 0)) + 1,
    })
    # The manifest now supersedes older snapshots and covered segments.
    for stale in state_path.glob("snapshot-*.json"):
        if stale.name != snapshot_name:
            stale.unlink()
    backend = database.wal.backend
    segments_before = len(backend.segment_paths()) if backend is not None else 0
    database.wal.truncate(sequence)  # a backend also drops covered segments
    segments_after = len(backend.segment_paths()) if backend is not None else 0
    return CheckpointResult(
        checkpoint_sequence=sequence,
        snapshot_path=state_path / snapshot_name,
        segments_removed=segments_before - segments_after,
        checkpoint_count=int(previous.get("checkpoints", 0)) + 1,
        wal_bytes=backend.wal_bytes() if backend is not None else 0,
    )


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryResult:
    """A recovered database plus how the recovery went."""

    database: Database
    checkpoint_sequence: int
    snapshot_loaded: bool
    entries_replayed: int
    torn_entries_dropped: int
    recovery_seconds: float
    wal_bytes: int
    checkpoint_count: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.database.name,
            "tables": {name: len(self.database.table(name))
                       for name in sorted(self.database.table_names)},
            "views": sorted(self.database.view_names),
            "checkpoint_sequence": self.checkpoint_sequence,
            "snapshot_loaded": self.snapshot_loaded,
            "entries_replayed": self.entries_replayed,
            "torn_entries_dropped": self.torn_entries_dropped,
            "recovery_seconds": self.recovery_seconds,
            "wal_bytes": self.wal_bytes,
            "checkpoint_count": self.checkpoint_count,
        }


def replay_entry(database: Database, entry: WalEntry) -> None:
    """Re-apply one logged operation to ``database`` (without re-logging it)."""
    payload = entry.payload
    operation = entry.operation
    if operation == "create_table":
        database.create_table(entry.table, Schema.from_dict(payload["schema"]),
                              payload.get("row_data", ()))
    elif operation == "drop_table":
        database.drop_table(entry.table)
    elif operation == "insert":
        database.insert(entry.table, payload["row"])
    elif operation == "update":
        if "key" in payload:
            database.update_by_key(entry.table, payload["key"], payload["updates"])
        else:
            database.update_where(entry.table,
                                  Predicate.from_dict(payload["predicate"]),
                                  payload["updates"])
    elif operation == "delete":
        if "key" in payload:
            database.delete_by_key(entry.table, payload["key"])
        else:
            database.delete_where(entry.table,
                                  Predicate.from_dict(payload["predicate"]))
    elif operation == "replace":
        if "row_data" not in payload:
            raise RecoveryError(
                f"replace entry {entry.sequence} for table {entry.table!r} "
                f"carries no row data (written by a pre-durability build?)")
        database.replace_table(entry.table, payload["row_data"])
    elif operation == "apply_diff":
        if "diff" not in payload:
            raise RecoveryError(
                f"apply_diff entry {entry.sequence} for table {entry.table!r} "
                f"carries no diff payload")
        database.apply_table_diff(entry.table, TableDiff.from_dict(payload["diff"]))
    elif operation == "create_index":
        database.create_index(entry.table, payload["columns"])
    elif operation == "register_view":
        database.register_view(entry.table, Query.from_dict(payload["query"]))
    else:
        raise RecoveryError(
            f"cannot replay unknown WAL operation {operation!r} "
            f"(sequence {entry.sequence})")


def recover(state_dir: PathLike, fsync_policy: str = FSYNC_BATCH,
            segment_max_bytes: int = 1_000_000, codec=None) -> RecoveryResult:
    """Rebuild a database from a durable state directory.

    Loads the manifest's snapshot (if any), replays every WAL entry past the
    checkpoint sequence, and re-attaches a live backend so the recovered
    database keeps journaling where the crashed process stopped.  The torn
    tail a crash can leave (one partial final line) is dropped; real
    corruption raises.
    """
    started = time.perf_counter()
    state_path = pathlib.Path(state_dir)
    if not state_path.exists():
        raise RecoveryError(f"no state directory at {state_path}")
    manifest = read_manifest(state_path)
    if manifest is None:
        raise RecoveryError(
            f"no manifest at {_manifest_path(state_path)}; not a durable "
            f"state directory")
    checkpoint_sequence = int(manifest.get("checkpoint_sequence", 0))
    snapshot_name = manifest.get("snapshot")
    snapshot_loaded = False
    if snapshot_name:
        snapshot_path = state_path / snapshot_name
        if not snapshot_path.exists():
            raise RecoveryError(f"manifest names missing snapshot {snapshot_path}")
        database = load_database(snapshot_path)
        snapshot_loaded = True
    else:
        database = Database(manifest.get("name", state_path.name))
    backend = JsonlWalBackend(state_path / WAL_DIR_NAME, fsync_policy=fsync_policy,
                              segment_max_bytes=segment_max_bytes, codec=codec)
    entries, torn = backend.read_entries(since=checkpoint_sequence)
    torn += backend.torn_lines_repaired  # amputated at open, before the read
    with database.wal.suspended():
        for entry in entries:
            try:
                replay_entry(database, entry)
            except RecoveryError:
                raise
            except Exception as exc:
                raise RecoveryError(
                    f"replaying WAL entry {entry.sequence} "
                    f"({entry.operation} on {entry.table!r}) failed: {exc}"
                ) from exc
    database.wal.restore(entries, checkpoint_sequence)
    database.wal.attach_backend(backend)
    return RecoveryResult(
        database=database,
        checkpoint_sequence=checkpoint_sequence,
        snapshot_loaded=snapshot_loaded,
        entries_replayed=len(entries),
        torn_entries_dropped=torn,
        recovery_seconds=time.perf_counter() - started,
        wal_bytes=backend.wal_bytes(),
        checkpoint_count=int(manifest.get("checkpoints", 0)),
    )


def open_durable_database(name: str, state_dir: PathLike,
                          fsync_policy: str = FSYNC_BATCH,
                          segment_max_bytes: int = 1_000_000,
                          codec=None) -> Database:
    """Create a new durable database in ``state_dir``, or recover the one
    already there (matching names enforced)."""
    state_path = pathlib.Path(state_dir)
    if read_manifest(state_path) is not None:
        result = recover(state_path, fsync_policy=fsync_policy,
                         segment_max_bytes=segment_max_bytes, codec=codec)
        if result.database.name != name:
            raise RecoveryError(
                f"state directory {state_path} holds database "
                f"{result.database.name!r}, not {name!r}")
        return result.database
    state_path.mkdir(parents=True, exist_ok=True)
    backend = JsonlWalBackend(state_path / WAL_DIR_NAME, fsync_policy=fsync_policy,
                              segment_max_bytes=segment_max_bytes, codec=codec)
    database = Database(name, wal_backend=backend)
    _write_manifest(state_path, {
        "name": name,
        "checkpoint_sequence": 0,
        "snapshot": None,
        "checkpoints": 0,
    })
    return database
