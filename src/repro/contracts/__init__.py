"""Smart contracts and their runtime.

The paper stores shared-data *metadata* in smart contracts (Fig. 3): which
peers share each table, which attributes each peer may write, when the
metadata last changed, and who has authority to change permissions.  The
contracts also enforce the protocol of Fig. 4 — verify permission, notify
sharing peers, and require every peer to fetch the newest shared data before
further operations are accepted.

* :mod:`repro.contracts.base` — the contract programming model
  (require/revert, events, storage snapshots).
* :mod:`repro.contracts.runtime` — deterministic execution of deploy/call
  transactions; plugs into the ledger as its transaction executor.
* :mod:`repro.contracts.sharing_contract` — the metadata-collection contract
  of Fig. 3 plus the CRUD request protocol of Fig. 4.
* :mod:`repro.contracts.registry_contract` — discovery of sharing agreements.
* :mod:`repro.contracts.verification` — executable specification checks
  standing in for the Coq verification suggested in §IV.2.
"""

from repro.contracts.base import Contract, ContractEvent
from repro.contracts.runtime import ContractRuntime
from repro.contracts.sharing_contract import (
    MetadataEntry,
    SharedDataContract,
    UpdateRecord,
)
from repro.contracts.registry_contract import SharingRegistryContract
from repro.contracts.verification import ContractSpecChecker, SpecCheckResult

__all__ = [
    "Contract",
    "ContractEvent",
    "ContractRuntime",
    "MetadataEntry",
    "SharedDataContract",
    "UpdateRecord",
    "SharingRegistryContract",
    "ContractSpecChecker",
    "SpecCheckResult",
]
