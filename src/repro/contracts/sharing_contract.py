"""The metadata-collection contract of Fig. 3 and the request protocol of Fig. 4.

One deployed :class:`SharedDataContract` manages many *metadata entries*, one
per shared table pair (``D13 & D31``, ``D23 & D32``, ...).  Each entry stores:

* the sharing peers (address → role),
* per-attribute write permission (attribute → set of roles),
* the last update time,
* the role with authority to change permission,
* the agreed view structure (a serialised :class:`~repro.bx.dsl.ViewSpec`),
* the update history and pending acknowledgements.

The contract enforces the paper's rules:

* only sharing peers may operate on the shared data (Fig. 4 step 2/3);
* an update touching an attribute the caller may not write reverts;
* only the authority role may change write permissions;
* after an accepted update, *all other sharing peers must acknowledge* that
  they fetched the newest data before any further update on the same entry is
  accepted (§III-B: "only when all sharing peers have had the newest shared
  data can they execute further operations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.contracts.base import Contract
from repro.crypto.keys import address_from_public_key
from repro.crypto.signatures import Signature, verify


def fold_attestation_payload(metadata_id: str, diff_hash: str,
                             changed_attributes: Sequence[str]) -> dict:
    """The payload a folded-update contributor signs.

    Binding the attributes *and* the merged diff hash means a requester can
    neither attribute foreign attributes to a peer nor reuse a peer's
    attestation for a different change.
    """
    return {
        "metadata_id": str(metadata_id),
        "diff_hash": str(diff_hash),
        "changed_attributes": [str(attribute) for attribute in changed_attributes],
    }


@dataclass
class UpdateRecord:
    """One accepted operation on a shared table (kept on-chain for audit).

    ``contributions`` is non-empty only for *folded* updates: several sharing
    peers' edits on disjoint attribute sets committed as one operation.  Each
    entry is ``{"peer": address, "changed_attributes": [...]}`` — the audit
    trail and the specification checker verify permissions per contributor,
    not against the requester alone.
    """

    update_id: int
    metadata_id: str
    operation: str
    requester: str
    requester_role: str
    changed_attributes: Tuple[str, ...]
    diff_hash: str
    block_number: int
    timestamp: float
    acknowledged_by: List[str] = field(default_factory=list)
    contributions: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "update_id": self.update_id,
            "metadata_id": self.metadata_id,
            "operation": self.operation,
            "requester": self.requester,
            "requester_role": self.requester_role,
            "changed_attributes": list(self.changed_attributes),
            "diff_hash": self.diff_hash,
            "block_number": self.block_number,
            "timestamp": self.timestamp,
            "acknowledged_by": list(self.acknowledged_by),
            "contributions": [dict(entry) for entry in self.contributions],
        }


@dataclass
class MetadataEntry:
    """One row of the Fig. 3 metadata collection table."""

    metadata_id: str
    sharing_peers: Dict[str, str]              # address -> role ("Doctor", "Patient", ...)
    write_permission: Dict[str, List[str]]     # attribute -> roles allowed to write
    authority_role: str                        # "Authority to change permission"
    view_spec: Dict[str, Any]                  # agreed shared-table structure
    created_by: str
    last_update_time: float
    pending_acks: List[str] = field(default_factory=list)

    def role_of(self, address: str) -> Optional[str]:
        return self.sharing_peers.get(address)

    def peers_other_than(self, address: str) -> List[str]:
        return [peer for peer in self.sharing_peers if peer != address]

    def can_write(self, role: str, attribute: str) -> bool:
        return role in self.write_permission.get(attribute, [])

    def to_dict(self) -> dict:
        return {
            "metadata_id": self.metadata_id,
            "sharing_peers": dict(self.sharing_peers),
            "write_permission": {k: list(v) for k, v in self.write_permission.items()},
            "authority_role": self.authority_role,
            "view_spec": dict(self.view_spec),
            "created_by": self.created_by,
            "last_update_time": self.last_update_time,
            "pending_acks": list(self.pending_acks),
        }


class SharedDataContract(Contract):
    """Permission metadata and the shared-data operation protocol."""

    def __init__(self) -> None:
        super().__init__()
        self.entries: Dict[str, MetadataEntry] = {}
        self.history: List[UpdateRecord] = []
        self.permission_changes: List[dict] = []
        self._next_update_id = 1

    # ------------------------------------------------------------- registration

    def register_shared_table(
        self,
        metadata_id: str,
        sharing_peers: Mapping[str, str],
        write_permission: Mapping[str, Sequence[str]],
        authority_role: str,
        view_spec: Optional[Mapping[str, Any]] = None,
    ) -> dict:
        """Register the metadata entry for a new shared table (Fig. 3 row).

        The caller must be one of the sharing peers, and the authority role
        must be a role held by at least one peer.
        """
        self.require(metadata_id not in self.entries,
                     f"metadata entry {metadata_id!r} already registered")
        self.require(bool(sharing_peers), "a shared table needs at least one sharing peer")
        peers = {str(address): str(role) for address, role in sharing_peers.items()}
        self.require_permission(
            self.ctx.caller in peers,
            f"caller {self.ctx.caller} is not one of the sharing peers",
        )
        roles = set(peers.values())
        self.require(authority_role in roles,
                     f"authority role {authority_role!r} is not held by any sharing peer")
        permission = {str(attr): [str(role) for role in allowed]
                      for attr, allowed in write_permission.items()}
        for attribute, allowed in permission.items():
            unknown = [role for role in allowed if role not in roles]
            self.require(not unknown,
                         f"attribute {attribute!r} grants write to unknown roles {unknown}")
        entry = MetadataEntry(
            metadata_id=metadata_id,
            sharing_peers=peers,
            write_permission=permission,
            authority_role=authority_role,
            view_spec=dict(view_spec or {}),
            created_by=self.ctx.caller,
            last_update_time=self.ctx.timestamp,
        )
        self.entries[metadata_id] = entry
        self.emit(
            "SharedTableRegistered",
            metadata_id=metadata_id,
            sharing_peers=peers,
            authority_role=authority_role,
        )
        return entry.to_dict()

    # ----------------------------------------------------------------- queries

    def get_metadata(self, metadata_id: str) -> dict:
        """The Fig. 3 row for ``metadata_id``."""
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        return self.entries[metadata_id].to_dict()

    def list_metadata_ids(self) -> List[str]:
        return sorted(self.entries)

    def entries_for_peer(self, address: str) -> List[str]:
        """All metadata ids a given peer participates in."""
        return sorted(
            metadata_id for metadata_id, entry in self.entries.items()
            if address in entry.sharing_peers
        )

    def update_history(self, metadata_id: Optional[str] = None) -> List[dict]:
        """The accepted operations, optionally filtered to one shared table."""
        return [
            record.to_dict() for record in self.history
            if metadata_id is None or record.metadata_id == metadata_id
        ]

    def pending_acknowledgements(self, metadata_id: str) -> List[str]:
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        return list(self.entries[metadata_id].pending_acks)

    def can_peer_write(self, metadata_id: str, address: str, attribute: str) -> bool:
        """Read-only permission probe used by clients before attempting updates."""
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        role = entry.role_of(address)
        return role is not None and entry.can_write(role, attribute)

    # ------------------------------------------------------------ the protocol

    def _authorize_operation(self, metadata_id: str, changed_attributes: Sequence[str],
                             table_level: bool) -> MetadataEntry:
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        role = entry.role_of(self.ctx.caller)
        self.require_permission(
            role is not None,
            f"caller {self.ctx.caller} is not a sharing peer of {metadata_id!r}",
        )
        self.require(
            not entry.pending_acks,
            f"shared data {metadata_id!r} has peers that have not fetched the newest data: "
            f"{sorted(entry.pending_acks)}",
        )
        if table_level:
            # Table-level operations (create/delete the whole shared table)
            # require write permission on every attribute of the agreement.
            attributes = list(entry.write_permission)
        else:
            attributes = list(changed_attributes)
            self.require(bool(attributes), "an entry-level operation must name the changed attributes")
        for attribute in attributes:
            self.require(attribute in entry.write_permission,
                         f"attribute {attribute!r} is not part of shared table {metadata_id!r}")
            self.require_permission(
                entry.can_write(role, attribute),
                f"role {role!r} may not write attribute {attribute!r} of {metadata_id!r}",
            )
        return entry

    def _record_operation(self, entry: MetadataEntry, operation: str,
                          changed_attributes: Sequence[str], diff_hash: str,
                          contributions: Sequence[Mapping[str, Any]] = ()) -> dict:
        role = entry.role_of(self.ctx.caller) or ""
        record = UpdateRecord(
            update_id=self._next_update_id,
            metadata_id=entry.metadata_id,
            operation=operation,
            requester=self.ctx.caller,
            requester_role=role,
            changed_attributes=tuple(changed_attributes),
            diff_hash=diff_hash,
            block_number=self.ctx.block_number,
            timestamp=self.ctx.timestamp,
            contributions=[dict(entry_) for entry_ in contributions],
        )
        self._next_update_id += 1
        self.history.append(record)
        entry.last_update_time = self.ctx.timestamp
        entry.pending_acks = entry.peers_other_than(self.ctx.caller)
        self.emit(
            "SharedDataChanged",
            metadata_id=entry.metadata_id,
            operation=operation,
            update_id=record.update_id,
            requester=self.ctx.caller,
            requester_role=role,
            changed_attributes=list(changed_attributes),
            diff_hash=diff_hash,
            notify_peers=entry.pending_acks,
            contributions=[dict(entry_) for entry_ in contributions],
        )
        return record.to_dict()

    def request_update(self, metadata_id: str, changed_attributes: Sequence[str],
                       diff_hash: str = "") -> dict:
        """Entry-level update request (Fig. 4 / Fig. 5 steps 2-3 and 8-9)."""
        entry = self._authorize_operation(metadata_id, changed_attributes, table_level=False)
        return self._record_operation(entry, "update", changed_attributes, diff_hash)

    def request_folded_update(self, metadata_id: str,
                              contributions: Sequence[Mapping[str, Any]],
                              diff_hash: str = "") -> dict:
        """A cross-peer *folded* update: several sharing peers' edits on
        disjoint attribute sets commit as one operation (one consensus round
        pair instead of one per peer).

        ``contributions`` is a sequence of ``{"peer": address,
        "changed_attributes": [...]}``; every contribution by a peer *other
        than the caller* must additionally carry that peer's attestation —
        ``"public_key"`` (hex) and ``"attestation"`` (a signature over
        :func:`fold_attestation_payload`) — so a requester cannot launder its
        own edits through another peer's write permission.  Write permission
        is checked **per contributor** — each peer's role must be allowed to
        write its own attributes, and the attribute sets of different peers
        must be pairwise disjoint so no contributor's change can mask
        another's.  The caller (who submits the merged diff) must itself be
        a sharing peer; every *other* sharing peer still has to acknowledge
        before the next operation on this table.
        """
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        caller_role = entry.role_of(self.ctx.caller)
        self.require_permission(
            caller_role is not None,
            f"caller {self.ctx.caller} is not a sharing peer of {metadata_id!r}",
        )
        self.require(
            not entry.pending_acks,
            f"shared data {metadata_id!r} has peers that have not fetched the newest data: "
            f"{sorted(entry.pending_acks)}",
        )
        self.require(bool(contributions), "a folded update needs at least one contribution")
        seen_attributes: Dict[str, str] = {}
        union: List[str] = []
        for contribution in contributions:
            peer = str(contribution.get("peer", ""))
            attributes = [str(a) for a in contribution.get("changed_attributes", ())]
            role = entry.role_of(peer)
            self.require_permission(
                role is not None,
                f"contributor {peer} is not a sharing peer of {metadata_id!r}",
            )
            self.require(bool(attributes),
                         f"contribution by {peer} must name its changed attributes")
            if peer != self.ctx.caller:
                # The caller's own authorship is covered by the transaction
                # signature; every other contribution must be attested by
                # its author or the caller could write through that peer's
                # permissions.
                self.require_permission(
                    self._attestation_valid(contribution, metadata_id, diff_hash),
                    f"contribution by {peer} lacks a valid attestation "
                    f"(folded updates need each non-calling contributor's "
                    f"signature over its attributes and the diff hash)",
                )
            for attribute in attributes:
                self.require(attribute in entry.write_permission,
                             f"attribute {attribute!r} is not part of shared table "
                             f"{metadata_id!r}")
                previous = seen_attributes.get(attribute)
                self.require(
                    previous is None or previous == peer,
                    f"attribute {attribute!r} is claimed by two contributors of the "
                    f"folded update (attribute sets must be disjoint)",
                )
                seen_attributes[attribute] = peer
                self.require_permission(
                    entry.can_write(role, attribute),
                    f"role {role!r} may not write attribute {attribute!r} of {metadata_id!r}",
                )
                if attribute not in union:
                    union.append(attribute)
        return self._record_operation(entry, "update", union, diff_hash,
                                      contributions=contributions)

    @staticmethod
    def _attestation_valid(contribution: Mapping[str, Any], metadata_id: str,
                           diff_hash: str) -> bool:
        """True when a contribution carries its author's valid signature."""
        public_key = contribution.get("public_key")
        attestation = contribution.get("attestation")
        if not public_key or not attestation:
            return False
        try:
            key = int(str(public_key), 16)
            signature = Signature.from_dict(dict(attestation))
        except (TypeError, ValueError, KeyError):
            return False
        if address_from_public_key(key) != str(contribution.get("peer", "")):
            return False
        payload = fold_attestation_payload(
            metadata_id, diff_hash, contribution.get("changed_attributes", ()))
        return verify(key, payload, signature)

    def request_create(self, metadata_id: str, changed_attributes: Sequence[str] = (),
                       diff_hash: str = "") -> dict:
        """Entry-level create request (adding rows to the shared table).

        With no ``changed_attributes`` the request is table-level: the caller
        needs write permission on every attribute of the agreement.
        """
        entry = self._authorize_operation(
            metadata_id, changed_attributes, table_level=not changed_attributes
        )
        return self._record_operation(
            entry, "create", changed_attributes or tuple(entry.write_permission), diff_hash
        )

    def request_delete(self, metadata_id: str, changed_attributes: Sequence[str] = (),
                       diff_hash: str = "") -> dict:
        """Entry- or table-level delete request."""
        entry = self._authorize_operation(
            metadata_id, changed_attributes, table_level=not changed_attributes
        )
        return self._record_operation(
            entry, "delete", changed_attributes or tuple(entry.write_permission), diff_hash
        )

    def acknowledge_update(self, metadata_id: str, update_id: int) -> dict:
        """A sharing peer confirms it fetched the newest shared data (Fig. 4 step 5)."""
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        self.require_permission(
            self.ctx.caller in entry.sharing_peers,
            f"caller {self.ctx.caller} is not a sharing peer of {metadata_id!r}",
        )
        record = next((r for r in self.history if r.update_id == update_id), None)
        self.require(record is not None, f"unknown update id {update_id}")
        self.require(record.metadata_id == metadata_id,
                     f"update {update_id} does not belong to {metadata_id!r}")
        if self.ctx.caller in entry.pending_acks:
            entry.pending_acks.remove(self.ctx.caller)
        if self.ctx.caller not in record.acknowledged_by:
            record.acknowledged_by.append(self.ctx.caller)
        self.emit(
            "UpdateAcknowledged",
            metadata_id=metadata_id,
            update_id=update_id,
            peer=self.ctx.caller,
            remaining=list(entry.pending_acks),
        )
        return {"metadata_id": metadata_id, "update_id": update_id,
                "remaining": list(entry.pending_acks)}

    # -------------------------------------------------------- permission admin

    def change_permission(self, metadata_id: str, attribute: str,
                          new_writers: Sequence[str]) -> dict:
        """Change which roles may write ``attribute`` (only the authority role may).

        The paper's example: the Doctor changes the "Dosage" permission from
        ``["Doctor"]`` to ``["Doctor", "Patient"]`` so the Patient may update
        the dosage later.
        """
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        role = entry.role_of(self.ctx.caller)
        self.require_permission(role is not None,
                                f"caller {self.ctx.caller} is not a sharing peer")
        self.require_permission(
            role == entry.authority_role,
            f"role {role!r} lacks authority to change permission "
            f"(authority role is {entry.authority_role!r})",
        )
        self.require(attribute in entry.write_permission,
                     f"attribute {attribute!r} is not part of shared table {metadata_id!r}")
        roles = set(entry.sharing_peers.values())
        unknown = [writer for writer in new_writers if writer not in roles]
        self.require(not unknown, f"cannot grant write to unknown roles {unknown}")
        previous = list(entry.write_permission[attribute])
        entry.write_permission[attribute] = [str(writer) for writer in new_writers]
        entry.last_update_time = self.ctx.timestamp
        change = {
            "metadata_id": metadata_id,
            "attribute": attribute,
            "previous": previous,
            "new": list(new_writers),
            "changed_by": self.ctx.caller,
            "changed_by_role": role,
            "block_number": self.ctx.block_number,
            "timestamp": self.ctx.timestamp,
        }
        self.permission_changes.append(change)
        self.emit("PermissionChanged", **change)
        return change

    def transfer_authority(self, metadata_id: str, new_authority_role: str) -> dict:
        """Hand the authority-to-change-permission to another sharing role."""
        self.require(metadata_id in self.entries, f"unknown metadata entry {metadata_id!r}")
        entry = self.entries[metadata_id]
        role = entry.role_of(self.ctx.caller)
        self.require_permission(role == entry.authority_role,
                                "only the current authority may transfer authority")
        self.require(new_authority_role in set(entry.sharing_peers.values()),
                     f"role {new_authority_role!r} is not held by any sharing peer")
        previous = entry.authority_role
        entry.authority_role = new_authority_role
        entry.last_update_time = self.ctx.timestamp
        self.emit("AuthorityTransferred", metadata_id=metadata_id,
                  previous=previous, new=new_authority_role)
        return {"metadata_id": metadata_id, "previous": previous, "new": new_authority_role}
