"""A discovery registry of sharing agreements.

When a provider deploys a :class:`~repro.contracts.sharing_contract.SharedDataContract`
(or registers a new metadata entry in an existing one), peers need a way to
discover the contract address that governs a given shared table.  The
registry contract records that mapping on-chain, so a client that only knows
the shared-table identifier can find the governing contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.contracts.base import Contract


class SharingRegistryContract(Contract):
    """Maps shared-table identifiers to the contract that governs them."""

    def __init__(self) -> None:
        super().__init__()
        self.agreements: Dict[str, dict] = {}

    def register_agreement(self, metadata_id: str, contract_address: str,
                           description: str = "") -> dict:
        """Record that ``metadata_id`` is governed by ``contract_address``."""
        self.require(metadata_id not in self.agreements,
                     f"agreement {metadata_id!r} is already registered")
        record = {
            "metadata_id": metadata_id,
            "contract_address": contract_address,
            "registered_by": self.ctx.caller,
            "description": description,
            "block_number": self.ctx.block_number,
        }
        self.agreements[metadata_id] = record
        self.emit("AgreementRegistered", **record)
        return record

    def lookup(self, metadata_id: str) -> dict:
        """The registration record for ``metadata_id``."""
        self.require(metadata_id in self.agreements, f"unknown agreement {metadata_id!r}")
        return dict(self.agreements[metadata_id])

    def contract_for(self, metadata_id: str) -> str:
        """Just the governing contract address for ``metadata_id``."""
        return self.lookup(metadata_id)["contract_address"]

    def list_agreements(self) -> List[str]:
        return sorted(self.agreements)

    def agreements_registered_by(self, address: str) -> List[str]:
        return sorted(
            metadata_id for metadata_id, record in self.agreements.items()
            if record["registered_by"] == address
        )
