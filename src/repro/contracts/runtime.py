"""Deterministic contract execution.

:class:`ContractRuntime` implements the ledger's
:class:`~repro.ledger.chain.TransactionExecutor` interface:

* ``deploy`` transactions instantiate a registered contract class at a
  deterministic address derived from (sender, nonce);
* ``call`` transactions invoke a public method of a deployed contract with
  the transaction's keyword arguments;
* a reverted call rolls the contract's storage back and produces a failed
  receipt — exactly what Fig. 4 step 3 needs ("if permission denied, then
  this request failed").
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

from repro.crypto.hashing import hash_payload
from repro.errors import ContractError, ContractNotFoundError, ContractRevert
from repro.contracts.base import CallContext, Contract
from repro.ledger.chain import TransactionExecutor
from repro.ledger.gas import GasSchedule
from repro.ledger.state import WorldState
from repro.ledger.transaction import Transaction, TransactionReceipt


def contract_address_for(sender: str, nonce: int) -> str:
    """The deterministic address of a contract deployed by (sender, nonce)."""
    return "0xc" + hash_payload({"deployer": sender, "nonce": nonce})[:39]


class ContractRuntime(TransactionExecutor):
    """Executes deploy/call transactions against a world state."""

    def __init__(self, gas_schedule: GasSchedule = GasSchedule()):
        self.gas_schedule = gas_schedule
        self._contract_classes: Dict[str, Type[Contract]] = {}
        self._call_count = 0
        self._revert_count = 0

    # ------------------------------------------------------------- registration

    def register_contract_class(self, contract_class: Type[Contract],
                                name: Optional[str] = None) -> None:
        """Make a contract class deployable under ``name`` (default: class name)."""
        self._contract_classes[name or contract_class.__name__] = contract_class

    def registered_classes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._contract_classes))

    # ---------------------------------------------------------------- execution

    @property
    def statistics(self) -> Dict[str, int]:
        return {"calls": self._call_count, "reverts": self._revert_count}

    def execute(self, tx: Transaction, state: WorldState, block_number: int,
                timestamp: float) -> TransactionReceipt:
        # Contract execution mutates shared replica state (and even reverted
        # or read-only calls snapshot/restore storage), so every execution on
        # one world state is serialised with that state's other executions
        # and static calls — an admission-time permission probe must never
        # observe a contract mid-restore.
        with state.execution_lock:
            gas = self.gas_schedule.intrinsic_gas(tx)
            if tx.kind == "deploy":
                return self._execute_deploy(tx, state, block_number, gas)
            if tx.kind == "call":
                return self._execute_call(tx, state, block_number, timestamp, gas)
            # Plain transfers carry no contract semantics.
            state.increment_nonce(tx.sender)
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=True, gas_used=gas
            )

    def _execute_deploy(self, tx: Transaction, state: WorldState, block_number: int,
                        gas: int) -> TransactionReceipt:
        class_name = tx.method or ""
        if class_name not in self._contract_classes:
            state.increment_nonce(tx.sender)
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=False, gas_used=gas,
                error=f"unknown contract class {class_name!r}",
            )
        nonce = state.nonce_of(tx.sender)
        address = contract_address_for(tx.sender, nonce)
        try:
            contract = self._contract_classes[class_name](**tx.args)
        except TypeError as exc:
            state.increment_nonce(tx.sender)
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=False, gas_used=gas,
                error=f"constructor error: {exc}",
            )
        state.deploy_contract(address, contract)
        state.increment_nonce(tx.sender)
        return TransactionReceipt(
            tx_hash=tx.tx_hash, block_number=block_number, success=True, gas_used=gas,
            contract_address=address,
        )

    def _execute_call(self, tx: Transaction, state: WorldState, block_number: int,
                      timestamp: float, gas: int) -> TransactionReceipt:
        self._call_count += 1
        state.increment_nonce(tx.sender)
        contract = state.contract_at(tx.contract or "")
        if contract is None:
            self._revert_count += 1
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=False, gas_used=gas,
                error=f"no contract at address {tx.contract!r}",
            )
        method_name = tx.method or ""
        method = getattr(contract, method_name, None)
        if method is None or method_name.startswith("_") or not callable(method):
            self._revert_count += 1
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=False, gas_used=gas,
                error=f"contract has no method {method_name!r}",
            )
        snapshot = contract.storage_snapshot()
        context = CallContext(
            caller=tx.sender,
            block_number=block_number,
            timestamp=timestamp,
            contract_address=tx.contract or "",
        )
        contract._begin_call(context)
        try:
            return_value = method(**tx.args)
        except ContractRevert as exc:
            contract.restore_storage(snapshot)
            contract._end_call()  # reverted calls emit no events
            self._revert_count += 1
            return TransactionReceipt(
                tx_hash=tx.tx_hash, block_number=block_number, success=False, gas_used=gas,
                error=str(exc), contract_address=tx.contract, events=(),
            )
        except Exception as exc:  # non-revert failure is a bug in the contract
            contract.restore_storage(snapshot)
            contract._end_call()
            self._revert_count += 1
            raise ContractError(
                f"contract {tx.contract} method {method_name!r} raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        events = contract._end_call()
        return TransactionReceipt(
            tx_hash=tx.tx_hash, block_number=block_number, success=True, gas_used=gas,
            return_value=return_value, contract_address=tx.contract,
            events=tuple(event.to_dict() for event in events),
        )

    # ------------------------------------------------------------- read helpers

    def static_call(self, state: WorldState, contract_address: str, method: str,
                    caller: str = "0xreadonly", **args: Any) -> Any:
        """Execute a read-only call without a transaction.

        Any storage mutation performed by the method is rolled back, so this
        is safe to use for queries such as ``get_metadata``.
        """
        with state.execution_lock:
            contract = state.contract_at(contract_address)
            if contract is None:
                raise ContractNotFoundError(f"no contract at address {contract_address!r}")
            bound = getattr(contract, method, None)
            if bound is None or not callable(bound):
                raise ContractError(f"contract has no method {method!r}")
            snapshot = contract.storage_snapshot()
            contract._begin_call(CallContext(caller=caller, block_number=-1, timestamp=0.0,
                                             contract_address=contract_address))
            try:
                return bound(**args)
            finally:
                contract._end_call()
                contract.restore_storage(snapshot)
