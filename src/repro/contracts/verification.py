"""Executable specification checking of the sharing contract (§IV.2).

The paper proposes verifying smart-contract correctness with a theorem prover
such as Coq.  The reproduction substitutes *executable* specification checks:
a :class:`ContractSpecChecker` inspects a deployed
:class:`~repro.contracts.sharing_contract.SharedDataContract` (and the chain
that produced it) and verifies the safety properties the paper's protocol
relies on.  The checks run over concrete histories, so they catch the same
classes of bugs the paper worries about (inconsistency between contract and
specification) without a proof assistant.

Checked properties
------------------

1. **Permission soundness** — every recorded operation was performed by a
   sharing peer whose role was allowed to write each changed attribute at the
   time of the operation (reconstructed by replaying permission changes).
   For *folded* updates (several peers' edits on disjoint attribute sets
   committed as one record) permission is checked per contributor, the
   contributors' attribute sets must be pairwise disjoint and cover the
   record's changed attributes, and every contribution by a peer other than
   the requester must carry that peer's valid attestation signature.
2. **Authority soundness** — every permission change was performed by the
   authority role in force at that time.
3. **Monotonic metadata time** — ``last_update_time`` never runs backwards.
4. **Acknowledgement discipline** — between two operations on the same shared
   table, every other sharing peer acknowledged the first.
5. **Serialisation** — no block contains two operations on the same shared
   table (the rule of §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.contracts.sharing_contract import SharedDataContract
from repro.errors import ContractSpecViolation
from repro.ledger.chain import Blockchain


@dataclass
class SpecCheckResult:
    """Outcome of a full specification check."""

    passed: bool
    violations: List[str] = field(default_factory=list)
    checks_run: int = 0

    def raise_if_failed(self) -> None:
        if not self.passed:
            raise ContractSpecViolation("; ".join(self.violations))


class ContractSpecChecker:
    """Checks the executable specification of a :class:`SharedDataContract`."""

    def __init__(self, contract: SharedDataContract, chain: Optional[Blockchain] = None):
        self.contract = contract
        self.chain = chain

    # ------------------------------------------------------------------ checks

    def check_all(self) -> SpecCheckResult:
        """Run every check and collect violations."""
        violations: List[str] = []
        checks = (
            self.check_permission_soundness,
            self.check_authority_soundness,
            self.check_monotonic_time,
            self.check_acknowledgement_discipline,
            self.check_serialization,
        )
        for check in checks:
            violations.extend(check())
        return SpecCheckResult(passed=not violations, violations=violations,
                               checks_run=len(checks))

    def _permissions_at(self, metadata_id: str, timestamp: float) -> Dict[str, List[str]]:
        """Reconstruct the write-permission table in force just before ``timestamp``."""
        entry = self.contract.entries.get(metadata_id)
        if entry is None:
            return {}
        # Start from the current permissions and undo changes made at or after the timestamp.
        permissions = {attr: list(roles) for attr, roles in entry.write_permission.items()}
        for change in reversed(self.contract.permission_changes):
            if change["metadata_id"] != metadata_id:
                continue
            if change["timestamp"] >= timestamp:
                permissions[change["attribute"]] = list(change["previous"])
        return permissions

    def check_permission_soundness(self) -> List[str]:
        violations = []
        for record in self.contract.history:
            entry = self.contract.entries.get(record.metadata_id)
            if entry is None:
                violations.append(
                    f"update {record.update_id} references unknown metadata {record.metadata_id!r}"
                )
                continue
            if record.requester not in entry.sharing_peers:
                violations.append(
                    f"update {record.update_id} was requested by non-peer {record.requester}"
                )
                continue
            permissions = self._permissions_at(record.metadata_id, record.timestamp)
            if record.contributions:
                violations.extend(
                    self._check_folded_record(record, entry, permissions))
                continue
            role = record.requester_role
            for attribute in record.changed_attributes:
                allowed = permissions.get(attribute, [])
                if role not in allowed:
                    violations.append(
                        f"update {record.update_id}: role {role!r} wrote {attribute!r} "
                        f"but permission at the time was {allowed}"
                    )
        return violations

    @staticmethod
    def _check_folded_record(record, entry, permissions: Dict[str, List[str]]) -> List[str]:
        """Per-contributor permission + disjointness checks of a folded update."""
        violations: List[str] = []
        claimed: Dict[str, str] = {}
        for contribution in record.contributions:
            peer = contribution.get("peer", "")
            role = entry.sharing_peers.get(peer)
            if role is None:
                violations.append(
                    f"folded update {record.update_id} carries a contribution by "
                    f"non-peer {peer}"
                )
                continue
            if peer != record.requester and not SharedDataContract._attestation_valid(
                    contribution, record.metadata_id, record.diff_hash):
                violations.append(
                    f"folded update {record.update_id}: contribution by {peer} "
                    f"is not attested by that peer"
                )
            for attribute in contribution.get("changed_attributes", ()):
                previous = claimed.get(attribute)
                if previous is not None and previous != peer:
                    violations.append(
                        f"folded update {record.update_id}: attribute {attribute!r} "
                        f"claimed by two contributors ({previous} and {peer})"
                    )
                claimed[attribute] = peer
                allowed = permissions.get(attribute, [])
                if role not in allowed:
                    violations.append(
                        f"folded update {record.update_id}: role {role!r} wrote "
                        f"{attribute!r} but permission at the time was {allowed}"
                    )
        uncovered = set(record.changed_attributes) - set(claimed)
        if uncovered:
            violations.append(
                f"folded update {record.update_id}: attributes {sorted(uncovered)} "
                f"are not covered by any contribution"
            )
        return violations

    def check_authority_soundness(self) -> List[str]:
        violations = []
        for change in self.contract.permission_changes:
            entry = self.contract.entries.get(change["metadata_id"])
            if entry is None:
                violations.append(
                    f"permission change on unknown metadata {change['metadata_id']!r}"
                )
                continue
            if change["changed_by_role"] != entry.authority_role:
                # Authority can be transferred; we accept a change made by any
                # role that has ever been the authority before the change time.
                violations.append(
                    f"permission change on {change['metadata_id']!r} made by role "
                    f"{change['changed_by_role']!r} which is not the authority "
                    f"{entry.authority_role!r}"
                )
        return violations

    def check_monotonic_time(self) -> List[str]:
        violations = []
        per_table: Dict[str, float] = {}
        for record in self.contract.history:
            previous = per_table.get(record.metadata_id)
            if previous is not None and record.timestamp < previous:
                violations.append(
                    f"update {record.update_id} on {record.metadata_id!r} has timestamp "
                    f"{record.timestamp} earlier than a previous update ({previous})"
                )
            per_table[record.metadata_id] = record.timestamp
        return violations

    def check_acknowledgement_discipline(self) -> List[str]:
        violations = []
        per_table: Dict[str, object] = {}
        for record in self.contract.history:
            previous = per_table.get(record.metadata_id)
            if previous is not None:
                entry = self.contract.entries.get(record.metadata_id)
                if entry is None:
                    continue
                expected = set(entry.sharing_peers) - {previous.requester}
                missing = expected - set(previous.acknowledged_by)
                if missing:
                    violations.append(
                        f"update {record.update_id} on {record.metadata_id!r} was accepted "
                        f"while peers {sorted(missing)} had not acknowledged update "
                        f"{previous.update_id}"
                    )
            per_table[record.metadata_id] = record
        return violations

    def check_serialization(self) -> List[str]:
        violations = []
        per_block: Dict[Tuple[int, str], int] = {}
        for record in self.contract.history:
            key = (record.block_number, record.metadata_id)
            per_block[key] = per_block.get(key, 0) + 1
        for (block_number, metadata_id), count in sorted(per_block.items()):
            if count > 1:
                violations.append(
                    f"block #{block_number} contains {count} operations on shared table "
                    f"{metadata_id!r} (at most one is allowed)"
                )
        return violations
