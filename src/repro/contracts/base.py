"""The contract programming model.

Contracts are plain Python classes whose public methods are invoked by
``call`` transactions.  Execution is deterministic: every node re-runs the
same calls in block order and must reach the same storage, which the state
root check in tests verifies.

A contract method can:

* read ``self.ctx`` — the caller address, block number and block timestamp;
* mutate its own attributes (its "storage");
* call :meth:`Contract.require` to revert with a reason;
* call :meth:`Contract.emit` to produce an event delivered to subscribers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ContractRevert, PermissionDenied


@dataclass(frozen=True)
class CallContext:
    """Execution context available to a contract method."""

    caller: str
    block_number: int
    timestamp: float
    contract_address: str


@dataclass(frozen=True)
class ContractEvent:
    """An event emitted during one contract call."""

    contract: str
    name: str
    data: Mapping[str, Any]

    def to_dict(self) -> dict:
        return {"contract": self.contract, "name": self.name, "data": dict(self.data)}


class Contract:
    """Base class for deployable contracts."""

    def __init__(self) -> None:
        self._ctx: Optional[CallContext] = None
        self._pending_events: List[ContractEvent] = []

    # -- runtime integration ----------------------------------------------------

    @property
    def ctx(self) -> CallContext:
        """The current call context (only valid during a call)."""
        if self._ctx is None:
            raise ContractRevert("contract accessed its context outside of a call")
        return self._ctx

    def _begin_call(self, ctx: CallContext) -> None:
        self._ctx = ctx
        self._pending_events = []

    def _end_call(self) -> Tuple[ContractEvent, ...]:
        events = tuple(self._pending_events)
        self._ctx = None
        self._pending_events = []
        return events

    def storage_snapshot(self) -> Dict[str, Any]:
        """A deep copy of the contract storage (everything except call state)."""
        storage = {
            key: value
            for key, value in self.__dict__.items()
            if key not in ("_ctx", "_pending_events")
        }
        return copy.deepcopy(storage)

    def restore_storage(self, snapshot: Mapping[str, Any]) -> None:
        """Restore storage from a snapshot (used to roll back reverted calls)."""
        for key in list(self.__dict__.keys()):
            if key not in ("_ctx", "_pending_events"):
                del self.__dict__[key]
        for key, value in copy.deepcopy(dict(snapshot)).items():
            self.__dict__[key] = value

    # -- helpers for contract authors ------------------------------------------

    def require(self, condition: bool, message: str = "requirement failed") -> None:
        """Revert the call unless ``condition`` holds."""
        if not condition:
            raise ContractRevert(message)

    def require_permission(self, condition: bool, message: str = "permission denied") -> None:
        """Revert with a :class:`PermissionDenied` unless ``condition`` holds."""
        if not condition:
            raise PermissionDenied(message)

    def emit(self, name: str, **data: Any) -> None:
        """Emit an event from the current call."""
        self._pending_events.append(
            ContractEvent(contract=self.ctx.contract_address, name=name, data=dict(data))
        )

    # -- reflection -------------------------------------------------------------

    @classmethod
    def abi(cls) -> Tuple[str, ...]:
        """The callable public methods of the contract."""
        methods = []
        for name in dir(cls):
            if name.startswith("_"):
                continue
            attribute = getattr(cls, name)
            if callable(attribute) and name not in (
                "abi", "require", "require_permission", "emit",
                "storage_snapshot", "restore_storage",
            ):
                methods.append(name)
        return tuple(sorted(methods))
