"""Deterministic chaos engineering for the sharing pipeline.

* :mod:`repro.chaos.faults` — seeded fault plans + the injector threaded
  through transport, WAL, consensus and contract execution;
* :mod:`repro.chaos.retry` — typed retries with deterministic backoff on
  the sim clock;
* :mod:`repro.chaos.breaker` — per-peer / per-lane circuit breakers.

Attach a plan to a running system with
:meth:`repro.core.system.MedicalDataSharingSystem.attach_chaos`.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_INJECTOR,
    NullFaultInjector,
)
from repro.chaos.retry import Retrier, RetryPolicy
from repro.chaos.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "Retrier",
    "RetryPolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]
