"""Typed retries with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is pure data: which exception types are retryable,
how many attempts, and the backoff curve.  A :class:`Retrier` binds a policy
to the shared :class:`~repro.ledger.clock.SimClock` and a seeded RNG — each
backoff *advances simulated time* instead of sleeping, so retry schedules
are deterministic, visible in traces, and costless in wall-clock terms.

Retryable by default: :class:`~repro.errors.TransientFault` (injected
transient consensus failures) and :class:`OSError` (disk faults, including
:class:`~repro.errors.InjectedDiskError`).  Everything else is terminal and
re-raised on first occurrence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import TransientFault
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff curve + the typed retryable/terminal split.

    ``backoff(attempt)`` for attempt ``n`` (1-based) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a
    deterministic jitter factor in ``[1, 1+jitter]`` drawn from the caller's
    seeded RNG.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    retryable: Tuple[Type[BaseException], ...] = (TransientFault, OSError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def from_config(cls, resilience) -> "RetryPolicy":
        """Build from a :class:`repro.config.ResilienceConfig`."""
        return cls(max_attempts=resilience.retry_max_attempts,
                   base_delay=resilience.retry_base_delay,
                   multiplier=resilience.retry_multiplier,
                   max_delay=resilience.retry_max_delay,
                   jitter=resilience.retry_jitter)

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def backoff(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class Retrier:
    """A policy bound to the sim clock: ``call(fn)`` with deterministic
    backoff between attempts.

    The retry timeline (``(time, label, attempt, backoff)`` tuples) is kept
    for determinism assertions, every backoff is emitted as a
    ``chaos.retry`` span, and counters land in the registry when one is
    attached.
    """

    def __init__(self, policy: RetryPolicy, clock, seed: int = 11,
                 name: str = "retry", tracer=NULL_TRACER,
                 registry=None) -> None:
        self.policy = policy
        self.clock = clock
        self.name = name
        self.tracer = tracer
        self._rng = random.Random(seed)
        self.attempts = 0
        self.retries = 0
        self.exhausted = 0
        self.timeline: List[Tuple[float, str, int, float]] = []
        self._retry_counter = None
        self._exhausted_counter = None
        if registry is not None:
            self._retry_counter = registry.counter("chaos_retries", scope=name)
            self._exhausted_counter = registry.counter(
                "chaos_retries_exhausted", scope=name)

    def call(self, fn: Callable[[], Any], label: str = "") -> Any:
        """Run ``fn`` under the policy; re-raise terminal (or exhausted)
        failures unchanged."""
        attempt = 1
        while True:
            self.attempts += 1
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 — typed filter below
                if not self.policy.is_retryable(exc):
                    raise
                if attempt >= self.policy.max_attempts:
                    self.exhausted += 1
                    if self._exhausted_counter is not None:
                        self._exhausted_counter.inc()
                    raise
                backoff = self.policy.backoff(attempt, self._rng)
                with self.tracer.span("chaos.retry", scope=self.name,
                                      label=label, attempt=attempt,
                                      backoff=round(backoff, 9),
                                      error=str(exc)):
                    pass
                self.clock.advance(backoff)
                self.retries += 1
                if self._retry_counter is not None:
                    self._retry_counter.inc()
                self.timeline.append(
                    (round(self.clock.now(), 9), label, attempt,
                     round(backoff, 9)))
                attempt += 1

    def statistics(self) -> Dict[str, Any]:
        return {"name": self.name, "attempts": self.attempts,
                "retries": self.retries, "exhausted": self.exhausted}
