"""Deterministic fault injection: fault plans and the injector.

A :class:`FaultPlan` is a serialisable schedule of :class:`FaultSpec`\\ s —
each one a *kind* of fault (``transport.drop``, ``wal.fsync``,
``peer.crash``, ...) scoped to an optional target, a ``[start, end)`` window
of simulated time, a firing probability and an optional fire budget.  A
:class:`FaultInjector` evaluates the plan against the shared
:class:`~repro.ledger.clock.SimClock` and a seeded RNG, so the same plan,
seed and workload always inject the same faults at the same simulated
instants — chaos runs are replayable bit for bit.

Injection points call one of three probes:

* :meth:`FaultInjector.should` — boolean faults (drop this message?);
* :meth:`FaultInjector.delay` — added latency (slow consensus round);
* :meth:`FaultInjector.maybe_fail` — raise the fault kind's typed exception
  (:class:`~repro.errors.InjectedDiskError` for WAL faults,
  :class:`~repro.errors.TransientFault` for retryable consensus failures,
  :class:`~repro.errors.InjectedFault` otherwise);
* :meth:`FaultInjector.active` — pure window test, consuming no randomness
  (peer crash/restart windows).

Every fired fault is appended to :attr:`FaultInjector.events` (exportable as
JSONL for CI artifacts), emitted as a ``chaos.fault`` span event on the
attached tracer, and counted in the metrics registry.  The module-level
:data:`NULL_INJECTOR` is a no-op used as the default everywhere, so the
production path pays nothing when chaos is not attached.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    ChaosError,
    InjectedDiskError,
    InjectedFault,
    TransientFault,
)
from repro.obs.tracer import NULL_TRACER

#: Every fault kind the pipeline exposes an injection point for.
FAULT_KINDS: Tuple[str, ...] = (
    "transport.drop",    # drop a message in flight (bool probe, per recipient)
    "transport.delay",   # add `param` seconds of delivery latency
    "peer.crash",        # window: the target peer's replica is offline;
                         # inbound messages park and replay in order on restart
    "wal.append",        # raise InjectedDiskError before a WAL append
    "wal.fsync",         # raise InjectedDiskError before a WAL fsync
    "consensus.fail",    # raise TransientFault before a mining round
    "consensus.slow",    # add `param` seconds before a mining round
    "commit.fail",       # raise InjectedFault at the top of a commit batch
    "contract.fail",     # raise InjectedFault inside one group's contract step
)

#: Exception type raised by :meth:`FaultInjector.maybe_fail` per kind.
_RAISE_AS = {
    "wal.append": InjectedDiskError,
    "wal.fsync": InjectedDiskError,
    "consensus.fail": TransientFault,
    "commit.fail": InjectedFault,
    "contract.fail": InjectedFault,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start / end:
        Simulated-time window ``[start, end)`` in which the spec is armed;
        ``end=None`` leaves it armed forever.
    probability:
        Chance of firing per probe while armed (1.0 = always).  Draws come
        from the injector's seeded RNG, so they are replayable.
    target:
        Restrict the spec to one target (a peer name for transport faults,
        a metadata id for ``contract.fail``); ``None`` matches any target.
    param:
        Kind-specific magnitude — added seconds for ``transport.delay`` /
        ``consensus.slow``, unused otherwise.
    max_fires:
        Fire budget; once spent the spec disarms.  ``None`` is unbounded.
    """

    kind: str
    start: float = 0.0
    end: Optional[float] = None
    probability: float = 1.0
    target: Optional[str] = None
    param: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ChaosError(
                f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}")
        if self.start < 0:
            raise ChaosError("fault window start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ChaosError("fault window end must be after start")
        if not 0.0 < self.probability <= 1.0:
            raise ChaosError("fault probability must be in (0, 1]")
        if self.param < 0:
            raise ChaosError("fault param must be non-negative")
        if self.max_fires is not None and self.max_fires < 1:
            raise ChaosError("max_fires must be at least 1 (or None)")

    def in_window(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def matches(self, kind: str, target: Optional[str], now: float) -> bool:
        return (self.kind == kind and self.in_window(now)
                and (self.target is None or self.target == target))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.start:
            data["start"] = self.start
        if self.end is not None:
            data["end"] = self.end
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.target is not None:
            data["target"] = self.target
        if self.param:
            data["param"] = self.param
        if self.max_fires is not None:
            data["max_fires"] = self.max_fires
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict) or "kind" not in data:
            raise ChaosError(f"fault spec must be a dict with a 'kind': {data!r}")
        known = {"kind", "start", "end", "probability", "target", "param",
                 "max_fires"}
        unknown = set(data) - known
        if unknown:
            raise ChaosError(f"unknown fault spec fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable schedule of faults."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 7

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ChaosError(f"fault plan must be a dict: {data!r}")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ChaosError(f"unknown fault plan fields: {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ChaosError("fault plan 'faults' must be a list")
        return cls(specs=tuple(FaultSpec.from_dict(spec) for spec in faults),
                   seed=int(data.get("seed", 7)))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"malformed fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.loads(Path(path).read_text(encoding="utf-8"))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the sim clock and a seeded RNG.

    Probes are thread-safe (the async gateway commits from executor
    threads); under one thread of probes the injected schedule is fully
    deterministic in (plan, seed, workload).
    """

    def __init__(self, plan: FaultPlan, clock, tracer=NULL_TRACER,
                 registry=None) -> None:
        self.plan = plan
        self.clock = clock
        self.tracer = tracer
        self.registry = registry
        self.seed = plan.seed
        self._rng = random.Random(plan.seed)
        self._fires = [0] * len(plan.specs)
        self._windows_open: set = set()
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------- matching

    def _match_locked(self, kind: str, target: Optional[str]):
        """First armed spec for ``kind``/``target`` that fires, or None.

        Caller holds the lock.  A probabilistic spec consumes exactly one
        RNG draw per probe whether or not it fires, keeping the stream
        deterministic in the probe sequence.
        """
        now = self.clock.now()
        for index, spec in enumerate(self.plan.specs):
            if not spec.matches(kind, target, now):
                continue
            if spec.max_fires is not None and self._fires[index] >= spec.max_fires:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            return index, spec
        return None, None

    def _record_locked(self, index: Optional[int], spec: FaultSpec,
                       target: Optional[str], outcome: str) -> None:
        if index is not None:
            self._fires[index] += 1
        shown = target if target is not None else (spec.target or "")
        event = {
            "seq": len(self.events) + 1,
            "time": round(self.clock.now(), 9),
            "kind": spec.kind,
            "target": shown,
            "param": spec.param,
            "outcome": outcome,
        }
        self.events.append(event)
        with self.tracer.span("chaos.fault", kind=spec.kind, target=shown,
                              param=spec.param, outcome=outcome):
            pass
        if self.registry is not None:
            self.registry.counter("chaos_faults_injected",
                                  kind=spec.kind).inc()

    # --------------------------------------------------------------- probes

    def should(self, kind: str, target: Optional[str] = None) -> bool:
        """Boolean probe: does a ``kind`` fault fire here and now?"""
        with self._lock:
            index, spec = self._match_locked(kind, target)
            if spec is None:
                return False
            self._record_locked(index, spec, target, "fired")
            return True

    def delay(self, kind: str, target: Optional[str] = None) -> float:
        """Latency probe: extra simulated seconds to add (0.0 = no fault)."""
        with self._lock:
            index, spec = self._match_locked(kind, target)
            if spec is None:
                return 0.0
            self._record_locked(index, spec, target, "delayed")
            return spec.param

    def maybe_fail(self, kind: str, target: Optional[str] = None) -> None:
        """Raise the fault kind's typed exception if a spec fires."""
        with self._lock:
            index, spec = self._match_locked(kind, target)
            if spec is None:
                return
            self._record_locked(index, spec, target, "raised")
        exc_type = _RAISE_AS.get(kind, InjectedFault)
        suffix = f" on {target}" if target else ""
        raise exc_type(f"injected: {kind} fault{suffix}")

    def active(self, kind: str, target: Optional[str] = None) -> bool:
        """Pure window test: is a ``kind`` window open for ``target``?

        Consumes no randomness and no fire budget (probability and
        ``max_fires`` are ignored), so crash windows are stable however many
        times they are polled.  The window-open edge is logged once.
        """
        now = self.clock.now()
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.matches(kind, target, now):
                    if index not in self._windows_open:
                        self._windows_open.add(index)
                        self._record_locked(None, spec, target, "window-open")
                    return True
        return False

    # --------------------------------------------------------------- export

    def events_by_kind(self) -> Dict[str, int]:
        summary: Dict[str, int] = {}
        for event in self.events:
            summary[event["kind"]] = summary.get(event["kind"], 0) + 1
        return dict(sorted(summary.items()))

    def write_events(self, path) -> int:
        """Export the fault-event log as JSONL; returns the event count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


class NullFaultInjector:
    """The no-op injector: every probe says "no fault"."""

    plan = FaultPlan()
    seed = 7
    events: Tuple = ()

    def should(self, kind: str, target: Optional[str] = None) -> bool:
        return False

    def delay(self, kind: str, target: Optional[str] = None) -> float:
        return 0.0

    def maybe_fail(self, kind: str, target: Optional[str] = None) -> None:
        return None

    def active(self, kind: str, target: Optional[str] = None) -> bool:
        return False

    def events_by_kind(self) -> Dict[str, int]:
        return {}

    def write_events(self, path) -> int:
        return 0


#: Shared no-op injector — the default at every injection point.
NULL_INJECTOR = NullFaultInjector()
