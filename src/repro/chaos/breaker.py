"""Circuit breakers: closed → open → half-open, on the sim clock.

A :class:`CircuitBreaker` trips after ``failure_threshold`` *consecutive*
failures, rejects while open, and after ``reset_timeout`` simulated seconds
admits ``half_open_probes`` trial calls; one success closes it, one failure
re-opens it.  All transitions are timestamped on the sim clock and kept in
:attr:`CircuitBreaker.transitions`, so identical seeds and workloads yield
identical breaker timelines.

A :class:`BreakerBoard` lazily creates breakers by name (``tenant:<peer>``,
``lane:<n>``, ``commit``), registering each one's state as a registry gauge
(0 = closed, 1 = open, 2 = half-open).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CircuitOpenError
from repro.obs.tracer import NULL_TRACER

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: Gauge encoding of breaker states.
STATE_CODES = {STATE_CLOSED: 0, STATE_OPEN: 1, STATE_HALF_OPEN: 2}


class CircuitBreaker:
    """One breaker protecting one dependency (a peer, a lane, the commit
    path).  Thread-safe; time comes from the shared sim clock."""

    def __init__(self, name: str, clock, failure_threshold: int = 3,
                 reset_timeout: float = 10.0, half_open_probes: int = 1,
                 tracer=NULL_TRACER) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.tracer = tracer
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        self._lock = threading.RLock()
        self.rejections = 0
        self.transitions: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------- internals

    def _transition_locked(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        now = round(self.clock.now(), 9)
        self.transitions.append((now, old_state, new_state))
        with self.tracer.span("chaos.breaker", breaker=self.name,
                              from_state=old_state, to_state=new_state):
            pass
        if new_state == STATE_OPEN:
            self._opened_at = self.clock.now()
        elif new_state == STATE_HALF_OPEN:
            self._probes_left = self.half_open_probes
        elif new_state == STATE_CLOSED:
            self._consecutive_failures = 0

    # ------------------------------------------------------------------ API

    def allow(self) -> bool:
        """May a call proceed?  In half-open, each ``True`` consumes one
        probe slot; further calls are rejected until a probe reports back."""
        with self._lock:
            if self._state == STATE_OPEN:
                if self.clock.now() - self._opened_at >= self.reset_timeout:
                    self._transition_locked(STATE_HALF_OPEN)
                else:
                    self.rejections += 1
                    return False
            if self._state == STATE_HALF_OPEN:
                if self._probes_left <= 0:
                    self.rejections += 1
                    return False
                self._probes_left -= 1
                return True
            return True

    def guard(self) -> None:
        """:meth:`allow`, but rejections raise the typed
        :class:`~repro.errors.CircuitOpenError` instead of returning False —
        for callers on exception-based paths (retriers treat it as
        terminal, never retryable)."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self.state}; call rejected")

    def record_success(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._transition_locked(STATE_CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._transition_locked(STATE_OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == STATE_CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._transition_locked(STATE_OPEN)

    def record(self, ok: bool) -> None:
        if ok:
            self.record_success()
        else:
            self.record_failure()

    @property
    def state(self) -> str:
        with self._lock:
            # An expired open window reads as half-open: the next allow()
            # would admit a probe, and gauges should say so.
            if (self._state == STATE_OPEN
                    and self.clock.now() - self._opened_at >= self.reset_timeout):
                return STATE_HALF_OPEN
            return self._state

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def statistics(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self._consecutive_failures,
                "rejections": self.rejections,
                "transitions": len(self.transitions),
            }


class BreakerBoard:
    """Get-or-create breakers by name, with registry gauges per breaker."""

    def __init__(self, clock, failure_threshold: int = 3,
                 reset_timeout: float = 10.0, half_open_probes: int = 1,
                 tracer=NULL_TRACER, registry=None) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.tracer = tracer
        self.registry = registry
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    name, self.clock,
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_probes=self.half_open_probes,
                    tracer=self.tracer)
                self._breakers[name] = breaker
                if self.registry is not None:
                    self.registry.gauge("circuit_breaker_state",
                                        fn=lambda b=breaker: b.state_code,
                                        breaker=name)
            return breaker

    def peek(self, name: str) -> Optional[CircuitBreaker]:
        with self._lock:
            return self._breakers.get(name)

    def allow(self, name: str) -> bool:
        return self.get(name).allow()

    def record(self, name: str, ok: bool) -> None:
        self.get(name).record(ok)

    def states(self) -> Dict[str, str]:
        with self._lock:
            items = sorted(self._breakers.items())
        return {name: breaker.state for name, breaker in items}

    def statistics(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._breakers.items())
        return {name: breaker.statistics() for name, breaker in items}
